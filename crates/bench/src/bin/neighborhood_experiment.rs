//! Neighborhood-collectives experiment: sparse `O(degree)` exchange
//! over a declared topology against the topology-blind dense
//! `O(p)` alltoallv idiom it replaces.
//!
//! Three scenarios on low-degree chord-ring graphs (neighbors at
//! offsets `±1..=h`, so degree `2h`) at p in {8, 16}:
//!
//! - **envelopes** — the algorithmic claim, measured exactly: the same
//!   deterministic exchange program runs twice (K rounds and 0 rounds)
//!   and each rank reads `MailboxStats::envelopes_posted` at closure
//!   end, where every envelope ever destined to it has arrived; the
//!   per-round delta is pinned to `in_degree` for the sparse path and
//!   `>= p-1` for the forced-dense path. Mid-run snapshots would race
//!   with run-ahead peers — a barrier only fences messages *to* a rank
//!   — which is why the measurement is differential across runs.
//! - **exchange** — wall clock for the frontier-exchange idiom: dense
//!   posts the count transpose (`alltoall`) plus the data exchange
//!   (`alltoallv`) with zeroed non-neighbor counts every round; sparse
//!   posts one `ineighbor_alltoallv` whose block sizes are discovered
//!   from the messages — no count exchange at all. One op = one round.
//! - **bfs** — end to end: `bfs_with_exchange` with the dense kamping
//!   alltoallv vs the kamping `NeighborhoodCommunicator`, distances
//!   asserted identical against the sequential reference.
//!
//! The binary enforces the PR's acceptance bounds — exact sparse
//! envelope counts (degree, not p), >= 2x round rate for the sparse
//! exchange at p in {8, 16}, and unchanged BFS results — and, with
//! `--check PATH`, that the sparse rates have not collapsed relative to
//! a committed baseline (envelope counts are compared exactly: they are
//! deterministic).
//!
//! Usage: `neighborhood_experiment [--smoke] [--out PATH] [--check PATH]`;
//! writes `BENCH_neighborhood.json`.

use kmp_apps::bfs::{bfs_sequential, bfs_with_exchange, Exchange, UNDEF};
use kmp_bench::harness::{baseline_lines, json_field, write_json, BenchArgs};
use kmp_graphgen::{rgg2d, DistGraph};
use kmp_mpi::{CollTuning, NeighborhoodAlgo, NeighborhoodColl, Universe};

/// Chord-ring neighbor lists: offsets `±1..=h` around the ring,
/// deduplicated and sorted — a symmetric graph of degree `2h` (less
/// when offsets alias at small p).
fn chord_neighbors(rank: usize, p: usize, h: usize) -> Vec<usize> {
    let mut nbrs: Vec<usize> = (1..=h)
        .flat_map(|k| [(rank + k) % p, (rank + p - k) % p])
        .filter(|&r| r != rank)
        .collect();
    nbrs.sort_unstable();
    nbrs.dedup();
    nbrs
}

/// Runs `rounds` sparse or forced-dense neighborhood exchanges on the
/// chord ring and returns each rank's total `envelopes_posted` at
/// closure end (the differential-measurement primitive).
fn chord_envelopes(
    p: usize,
    h: usize,
    rounds: usize,
    algo: NeighborhoodAlgo,
    elems: usize,
) -> Vec<u64> {
    Universe::run(p, move |comm| {
        let nbrs = chord_neighbors(comm.rank(), p, h);
        let g = comm.create_dist_graph_adjacent(&nbrs, &nbrs).unwrap();
        let _t = g
            .comm()
            .tuning_guard(Some(CollTuning::default().neighborhood(algo)));
        let sends: Vec<Vec<u64>> = nbrs
            .iter()
            .map(|_| vec![comm.rank() as u64; elems])
            .collect();
        for _ in 0..rounds {
            g.neighbor_alltoall_vecs(&sends).unwrap();
        }
        comm.mailbox_stats().envelopes_posted
    })
}

/// Per-rank envelopes per round, exact: K-round run minus 0-round run,
/// divided by K. Construction cost is identical in both runs and
/// cancels.
fn envelopes_per_round(p: usize, h: usize, rounds: usize, algo: NeighborhoodAlgo) -> Vec<f64> {
    let base = chord_envelopes(p, h, 0, algo, 8);
    let run = chord_envelopes(p, h, rounds, algo, 8);
    base.iter()
        .zip(&run)
        .map(|(b, r)| (r - b) as f64 / rounds as f64)
        .collect()
}

const WARMUP: usize = 16;

/// Steady-state seconds for `iters` rounds of `cycle`, barriers fencing
/// the timed region; slowest rank wins.
fn timed_loop(
    comm: &kmp_mpi::Comm,
    iters: usize,
    mut cycle: impl FnMut() -> kmp_mpi::Result<()>,
) -> f64 {
    for _ in 0..WARMUP {
        cycle().unwrap();
    }
    comm.barrier().unwrap();
    let started = std::time::Instant::now();
    for _ in 0..iters {
        cycle().unwrap();
    }
    comm.barrier().unwrap();
    started.elapsed().as_secs_f64()
}

/// One frontier-exchange round per op: dense pays the O(p) count
/// transpose plus the O(p)-envelope alltoallv; sparse posts one
/// self-sizing `ineighbor_alltoallv` — degree envelopes, no count
/// exchange.
fn exchange_rate(p: usize, h: usize, iters: usize, elems: usize, sparse: bool) -> (usize, f64) {
    let secs = Universe::run(p, move |comm| {
        let nbrs = chord_neighbors(comm.rank(), p, h);
        let data = vec![comm.rank() as u64; elems * nbrs.len()];
        let counts = vec![elems; nbrs.len()];
        if sparse {
            let g = comm.create_dist_graph_adjacent(&nbrs, &nbrs).unwrap();
            timed_loop(&comm, iters, || {
                let blocks = g
                    .ineighbor_alltoallv(&data, &counts)?
                    .wait()?
                    .into_blocks()
                    .expect("blocks completion");
                assert_eq!(blocks.len(), nbrs.len());
                Ok(())
            })
        } else {
            let mut dense_counts = vec![0usize; p];
            for &r in &nbrs {
                dense_counts[r] = elems;
            }
            let dense_data = vec![comm.rank() as u64; elems * p];
            let displs: Vec<usize> = (0..p).map(|r| r * elems).collect();
            let mut rcounts = vec![0usize; p];
            let mut recv = vec![0u64; elems * p];
            timed_loop(&comm, iters, || {
                comm.alltoall_into(&dense_counts, &mut rcounts)?;
                let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
                comm.alltoallv_into(
                    &dense_data,
                    &dense_counts,
                    &displs,
                    &mut recv,
                    &rcounts,
                    &rdispls,
                )?;
                Ok(())
            })
        }
    })
    .into_iter()
    .fold(0f64, f64::max);
    (iters, secs)
}

/// End-to-end BFS over an rgg2d instance: seconds for `reps` full
/// traversals, distances checked against the sequential reference.
fn bfs_run(parts: &[DistGraph], reference: &[u64], exchange: Exchange, reps: usize) -> f64 {
    let p = parts.len();
    let started = std::time::Instant::now();
    for _ in 0..reps {
        let out = Universe::run(p, |comm| {
            let c = kamping::Communicator::new(comm);
            bfs_with_exchange(&parts[c.rank()], 0, &c, exchange).unwrap()
        });
        let mut got = vec![UNDEF; reference.len()];
        for (r, dists) in out.iter().enumerate() {
            let lo = parts[r].vertex_ranges[r];
            got[lo..lo + dists.len()].copy_from_slice(dists);
        }
        assert_eq!(got, reference, "{exchange:?} BFS diverged from sequential");
    }
    started.elapsed().as_secs_f64()
}

#[derive(Clone, Debug)]
struct Row {
    scenario: &'static str,
    algo: &'static str,
    ranks: usize,
    degree: usize,
    ops: usize,
    elapsed_ms: f64,
    ops_per_sec: f64,
    envelopes_per_round: f64,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "    {{\"scenario\": \"{}\", \"algo\": \"{}\", \"ranks\": {}, \"degree\": {}, \
             \"ops\": {}, \"elapsed_ms\": {:.3}, \"ops_per_sec\": {:.0}, \
             \"envelopes_per_round\": {:.2}}}",
            self.scenario,
            self.algo,
            self.ranks,
            self.degree,
            self.ops,
            self.elapsed_ms,
            self.ops_per_sec,
            self.envelopes_per_round,
        )
    }
}

fn rate(rows: &[Row], scenario: &str, algo: &str, p: usize) -> f64 {
    rows.iter()
        .find(|r| r.scenario == scenario && r.algo == algo && r.ranks == p)
        .unwrap_or_else(|| panic!("missing row {scenario}/{algo}/p{p}"))
        .ops_per_sec
}

fn main() {
    let args = BenchArgs::parse("BENCH_neighborhood.json");
    let smoke = args.smoke;
    let baseline = args.baseline.as_deref().map(|json| {
        baseline_lines(json, "scenario")
            .iter()
            .filter_map(|l| {
                Some((
                    json_field(l, "scenario")?,
                    json_field(l, "algo")?,
                    json_field(l, "ranks")?.parse::<usize>().ok()?,
                    json_field(l, "ops_per_sec")?.parse::<f64>().ok()?,
                    json_field(l, "envelopes_per_round")?.parse::<f64>().ok()?,
                ))
            })
            .collect::<Vec<_>>()
    });

    // Low-degree graphs: degree 4 at p = 8, degree 8 at p = 16 — the
    // regime where a frozen edge list beats all-pairs.
    let configs = [(8usize, 2usize), (16, 4)];
    let elems = 64usize;
    let (rounds, iters, bfs_reps) = if smoke { (5, 60, 1) } else { (8, 250, 3) };

    let mut rows: Vec<Row> = Vec::new();

    // --- envelopes: the O(degree)-vs-O(p) claim, counted exactly --------
    for &(p, h) in &configs {
        let degree = 2 * h;
        for (algo, name) in [
            (NeighborhoodAlgo::Sparse, "sparse"),
            (NeighborhoodAlgo::Dense, "dense"),
        ] {
            let per_rank = envelopes_per_round(p, h, rounds, algo);
            let max = per_rank.iter().cloned().fold(0f64, f64::max);
            for (rank, &e) in per_rank.iter().enumerate() {
                match algo {
                    // Every chord-ring rank has in-degree 2h; the sparse
                    // engine must post exactly that many envelopes.
                    NeighborhoodAlgo::Sparse => assert!(
                        (e - degree as f64).abs() < 1e-9,
                        "sparse p={p} rank {rank}: {e} envelopes/round, expected exactly {degree}"
                    ),
                    _ => assert!(
                        e >= (p - 1) as f64,
                        "dense p={p} rank {rank}: {e} envelopes/round, expected >= {}",
                        p - 1
                    ),
                }
            }
            rows.push(Row {
                scenario: "envelopes",
                algo: name,
                ranks: p,
                degree,
                ops: rounds,
                elapsed_ms: 0.0,
                ops_per_sec: 0.0,
                envelopes_per_round: max,
            });
        }
        println!(
            "envelopes p={p} degree={degree}: sparse posts {degree}/round, dense {}/round \
             ({:.1}x reduction)",
            p,
            p as f64 / degree as f64
        );
    }

    // --- exchange: wall clock for the per-round idiom -------------------
    for &(p, h) in &configs {
        let degree = 2 * h;
        for sparse in [true, false] {
            // Warm-up run, then best-of-N against scheduler noise on an
            // oversubscribed host (same treatment for both sides).
            let reps = if smoke { 2 } else { 4 };
            let _ = exchange_rate(p, h, iters, elems, sparse);
            let mut best: Option<(usize, f64)> = None;
            for _ in 0..reps {
                let (ops, secs) = exchange_rate(p, h, iters, elems, sparse);
                if best.is_none_or(|(bo, bs)| (ops as f64) / secs > bo as f64 / bs) {
                    best = Some((ops, secs));
                }
            }
            let (ops, secs) = best.expect("at least one rep");
            rows.push(Row {
                scenario: "exchange",
                algo: if sparse { "sparse" } else { "dense" },
                ranks: p,
                degree,
                ops,
                elapsed_ms: secs * 1e3,
                ops_per_sec: ops as f64 / secs,
                envelopes_per_round: 0.0,
            });
        }
    }

    // --- bfs: end to end on the generator's actual adjacency ------------
    for &(p, _) in &configs {
        let parts: Vec<DistGraph> = (0..p).map(|r| rgg2d(600, 0.06, 11, r, p)).collect();
        let reference = bfs_sequential(&parts, 0);
        for (exchange, name) in [
            (Exchange::Kamping, "dense"),
            (Exchange::KampingNeighbor, "sparse"),
        ] {
            let secs = bfs_run(&parts, &reference, exchange, bfs_reps);
            rows.push(Row {
                scenario: "bfs",
                algo: name,
                ranks: p,
                degree: 0,
                ops: bfs_reps,
                elapsed_ms: secs * 1e3,
                ops_per_sec: bfs_reps as f64 / secs,
                envelopes_per_round: 0.0,
            });
        }
        println!("bfs p={p}: neighborhood exchange matches the sequential reference");
    }

    println!(
        "\n{:<10} {:<7} {:>3} {:>6} {:>7} {:>11} {:>11} {:>10}",
        "scenario", "algo", "p", "degree", "ops", "elapsed ms", "ops/sec", "env/round"
    );
    for r in &rows {
        println!(
            "{:<10} {:<7} {:>3} {:>6} {:>7} {:>11.2} {:>11.0} {:>10.2}",
            r.scenario,
            r.algo,
            r.ranks,
            r.degree,
            r.ops,
            r.elapsed_ms,
            r.ops_per_sec,
            r.envelopes_per_round
        );
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    write_json(
        &args.out,
        "neighborhood",
        args.mode(),
        &[("payload_elems", elems.to_string())],
        &body,
    );

    // --- acceptance: the sparse exchange's win is pinned ----------------

    for &(p, _) in &configs {
        let sparse = rate(&rows, "exchange", "sparse", p);
        let dense = rate(&rows, "exchange", "dense", p);
        println!(
            "exchange p={p}: sparse/dense round rate = {:.2}x",
            sparse / dense
        );
        assert!(
            sparse >= dense * 2.0,
            "the acceptance bound — >= 2x round rate for the sparse exchange \
             at p = {p} — failed: sparse {sparse:.0} vs dense {dense:.0} rounds/sec"
        );
    }
    println!(
        "neighborhood contract holds: exact degree envelopes, >= 2x round rate at p in {{8, 16}}"
    );

    if let Some(baseline) = baseline {
        // CI drift guard: envelope counts are deterministic and compared
        // exactly; sparse rates must stay within a generous factor of
        // the committed full-run baseline.
        const TOLERANCE: f64 = 4.0;
        for (scenario, algo, p, base_rate, base_env) in baseline {
            let Some(now) = rows
                .iter()
                .find(|r| r.scenario == scenario && r.algo == algo && r.ranks == p)
            else {
                continue;
            };
            if scenario == "envelopes" {
                assert!(
                    (now.envelopes_per_round - base_env).abs() < 1e-9,
                    "{scenario}/{algo} p={p}: envelopes/round changed from {base_env} \
                     to {} — the posting schedule is deterministic, this is a bug",
                    now.envelopes_per_round
                );
            } else if algo == "sparse" {
                assert!(
                    now.ops_per_sec * TOLERANCE >= base_rate,
                    "{scenario}/{algo} p={p}: rate {:.0} fell below 1/{TOLERANCE} x \
                     committed baseline ({base_rate:.0})",
                    now.ops_per_sec
                );
            }
        }
        println!(
            "baseline check passed (exact envelope counts, >= 1/{TOLERANCE:.0} x committed rates)"
        );
    }
}
