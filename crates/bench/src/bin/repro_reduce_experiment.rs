//! §V-C / Fig. 13: reproducible reduce. Verifies bit-identical results
//! across rank counts and compares the binary-tree scheme's cost against
//! the naive "gather + local reduction + broadcast" the paper says it
//! beats, plus the (non-reproducible) builtin allreduce as the floor.

use kamping::plugins::repro_reduce::ReproducibleReduce;
use kamping::prelude::*;
use kmp_bench::{arg_usize, calibrate_ns, measure_virtual_kamping_ms, scaling_ranks};
use rand::prelude::*;

fn values(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(1234);
    (0..n)
        .map(|_| {
            let mag = rng.random_range(-10..10);
            rng.random::<f64>() * 10f64.powi(mag) * if rng.random() { 1.0 } else { -1.0 }
        })
        .collect()
}

fn block(all: &[f64], rank: usize, p: usize) -> Vec<f64> {
    let lo = rank * all.len() / p;
    let hi = (rank + 1) * all.len() / p;
    all[lo..hi].to_vec()
}

fn main() {
    let n = arg_usize("--n", 100_000);
    let max_p = arg_usize("--max-p", 32);
    let reps = arg_usize("--reps", 3);
    let all = values(n);
    let all_ref = &all;

    println!("REPRODUCIBLE REDUCE — §V-C / Fig. 13 ({n} f64 elements)");
    println!("reproducibility across rank counts:");
    let mut results: Vec<u64> = Vec::new();
    for p in scaling_ranks(max_p) {
        let out = kmp_mpi::Universe::run(p, move |comm| {
            let c = Communicator::new(comm);
            c.reproducible_reduce(&block(all_ref, c.rank(), p), ops::Sum)
                .unwrap()
        });
        let bits = out[0].to_bits();
        assert!(out.iter().all(|r| r.to_bits() == bits));
        results.push(bits);
        println!("  p={p:<4} sum = {:+.17e}", f64::from_bits(bits));
    }
    let first = results[0];
    assert!(
        results.iter().all(|&b| b == first),
        "results must be bit-identical for every p"
    );
    println!("  => bit-identical for every p OK");

    // Naive allreduce results (expected to drift with p).
    println!("naive allreduce (for contrast; order depends on p):");
    for p in scaling_ranks(max_p.min(8)) {
        let out = kmp_mpi::Universe::run(p, move |comm| {
            let c = Communicator::new(comm);
            let local: f64 = block(all_ref, c.rank(), p).iter().sum();
            c.allreduce_single((send_buf(&[local]), op(ops::Sum)))
                .unwrap()
        });
        println!("  p={p:<4} sum = {:+.17e}", out[0]);
    }

    // Calibrated per-element fold cost (charged where the fold runs; see
    // kmp_mpi::clock for why compute is charged explicitly).
    let fold_ns = calibrate_ns(5, || {
        std::hint::black_box(all_ref.iter().sum::<f64>());
    });
    let per_elem = (fold_ns as f64 / n as f64).max(0.5);
    println!(
        "cost comparison (virtual time; calibrated fold {:.2} ns/element):",
        per_elem
    );
    for p in scaling_ranks(max_p) {
        let tree = measure_virtual_kamping_ms(p, reps, move |c| {
            let mine = block(all_ref, c.rank(), p);
            let _ = c.reproducible_reduce(&mine, ops::Sum).unwrap();
            // Each element is folded once locally, in parallel.
            c.raw().clock_add_ns((mine.len() as f64 * per_elem) as u64);
        });
        let gather_all = measure_virtual_kamping_ms(p, reps, move |c| {
            // The baseline the paper beats: gather everything to rank 0,
            // reduce locally in index order, broadcast.
            let mine = block(all_ref, c.rank(), p);
            let gathered = c.raw().gatherv_vec(&mine, 0).unwrap();
            let local = gathered.map(|(data, _)| data.iter().sum::<f64>());
            if local.is_some() {
                // Rank 0 folds the entire array sequentially.
                c.raw().clock_add_ns((n as f64 * per_elem) as u64);
            }
            let _ = c.raw().bcast_one(local.unwrap_or(0.0), 0).unwrap();
        });
        let naive = measure_virtual_kamping_ms(p, reps, move |c| {
            let mine = block(all_ref, c.rank(), p);
            let local: f64 = mine.iter().sum();
            c.raw().clock_add_ns((mine.len() as f64 * per_elem) as u64);
            let _ = c
                .allreduce_single((send_buf(&[local]), op(ops::Sum)))
                .unwrap();
        });
        println!(
            "  p={p:<4} repro-tree {tree:>9.3} ms | gather+reduce+bcast {gather_all:>9.3} ms | builtin allreduce {naive:>9.3} ms"
        );
    }
}
