//! §IV-C RAxML-NG integration experiment: the kamping-based broadcast
//! layer must not cost measurable runtime against the hand-written
//! abstraction layer at RAxML-NG's call rate (~700 MPI calls/s), and
//! both must produce bit-identical likelihoods.

use kmp_apps::phylo::*;
use kmp_bench::{arg_usize, measure_virtual_kamping_ms, measure_virtual_ms};

fn main() {
    let p = arg_usize("--p", 8);
    let sites = arg_usize("--sites-per-rank", 2_000) as u64;
    let iters = arg_usize("--iterations", 200) as u64;
    let reps = arg_usize("--reps", 3);

    println!("RAXML-NG PROXY — §IV-C (custom abstraction layer vs kamping)");
    let t_custom = measure_virtual_ms(p, reps, move |comm| {
        let _ = run_custom_layer(sites, iters, comm).unwrap();
    });
    let t_kamping = measure_virtual_kamping_ms(p, reps, move |c| {
        let _ = run_kamping(sites, iters, c).unwrap();
    });
    println!("virtual time ({iters} iterations, {sites} sites/rank, p={p}):");
    println!("  custom layer {t_custom:.3} ms | kamping {t_kamping:.3} ms");
    println!(
        "  overhead kamping vs custom: {:+.2}% (paper: below one standard deviation)",
        (t_kamping / t_custom - 1.0) * 100.0
    );

    // Likelihood parity (bit-exact).
    let outs = kmp_mpi::Universe::run(p, move |comm| {
        let a = run_custom_layer(sites, iters, &comm).unwrap();
        let kc = kamping::Communicator::new(comm);
        let b = run_kamping(sites, iters, &kc).unwrap();
        (a.to_bits(), b.to_bits())
    });
    for (a, b) in outs {
        assert_eq!(a, b, "likelihoods must be bit-identical");
    }
    println!("correctness: final log-likelihoods bit-identical across layers OK");
}
