//! Communication/computation overlap: blocking `allgatherv` + local work
//! vs `iallgatherv` with the same work performed *while the collective is
//! in flight*.
//!
//! Virtual-time model (see `kmp_mpi::clock`): a message posted at `t`
//! arrives at `t + alpha + beta * bytes`. The blocking path completes the
//! exchange first (the clock jumps to the arrival time) and then charges
//! the local work on top; the non-blocking path charges the work first,
//! so completion costs only `max(now, arrival)` — the textbook
//! `max(T_comm, T_comp)` vs `T_comm + T_comp`. Wall-clock rows for the
//! same pair are printed alongside as a sanity check (thread-parallel
//! ranks on one host, so wall time mostly shows the overlap is not
//! *slower*).
//!
//! Run with: `cargo run --release -p kmp_bench --bin overlap_experiment`

use kmp_bench::{arg_usize, measure_virtual_kamping_ms, row};

use kamping::prelude::*;

const REPS: usize = 5;

/// Per-rank payload elements (u64) for each scenario.
const PAYLOAD: usize = 64 * 1024;

fn main() {
    let max_p = arg_usize("--max-p", 8);

    println!("overlap experiment: allgatherv({PAYLOAD} x u64/rank) + local work");
    println!("virtual time (alpha-beta cluster model), median of {REPS} reps, max over ranks\n");

    for p in [4, max_p] {
        for work_us in [0u64, 100, 500, 2_000] {
            let work_ns = work_us * 1_000;

            let blocking = measure_virtual_kamping_ms(p, REPS, |comm| {
                let mine = vec![comm.rank() as u64; PAYLOAD];
                let all: Vec<u64> = comm.allgatherv(send_buf(&mine)).unwrap();
                std::hint::black_box(&all);
                comm.raw().clock_add_ns(work_ns); // local work after the exchange
            });

            let nonblocking = measure_virtual_kamping_ms(p, REPS, |comm| {
                let mine = vec![comm.rank() as u64; PAYLOAD];
                let fut = comm.iallgatherv(send_buf(mine)).unwrap();
                comm.raw().clock_add_ns(work_ns); // local work under the exchange
                let (all, _mine) = fut.wait().unwrap();
                std::hint::black_box(&all);
            });

            println!(
                "{}  |  {}  |  work {work_us:>5} us  speedup {:>5.2}x",
                row("allgatherv+work", p, blocking),
                row("iallgatherv||work", p, nonblocking),
                blocking / nonblocking.max(1e-9),
            );
        }
        println!();
    }

    // Wall-clock sanity check: the non-blocking path must not be slower
    // than blocking + the same serial work.
    println!("wall-clock sanity (p = 4, spin work, median of {REPS} reps)");
    for spin_iters in [0u64, 2_000_000] {
        let blocking = wall_ms(4, spin_iters, false);
        let nonblocking = wall_ms(4, spin_iters, true);
        println!(
            "spin {spin_iters:>9}: blocking {blocking:>8.3} ms   nonblocking {nonblocking:>8.3} ms   ratio {:>5.2}",
            blocking / nonblocking.max(1e-9)
        );
    }
}

fn spin(iters: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc.wrapping_add(i.wrapping_mul(i));
    }
    std::hint::black_box(acc)
}

fn wall_ms(p: usize, spin_iters: u64, nonblocking: bool) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let outs = kmp_mpi::Universe::run(p, |comm| {
                let comm = kamping::Communicator::new(comm);
                comm.barrier().unwrap();
                let t = std::time::Instant::now();
                let mine = vec![comm.rank() as u64; PAYLOAD];
                if nonblocking {
                    let fut = comm.iallgatherv(send_buf(mine)).unwrap();
                    spin(spin_iters);
                    let (all, _) = fut.wait().unwrap();
                    std::hint::black_box(&all);
                } else {
                    let all: Vec<u64> = comm.allgatherv(send_buf(&mine)).unwrap();
                    spin(spin_iters);
                    std::hint::black_box(&all);
                }
                t.elapsed().as_secs_f64() * 1e3
            });
            outs.into_iter().fold(0f64, f64::max)
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}
