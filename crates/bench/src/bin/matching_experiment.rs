//! Message-matching microbenchmark: the two-queue engine
//! (`kmp_mpi::mailbox::Mailbox`) against the seed's linear-scan matcher
//! (`kmp_mpi::mailbox::reference::ScanMailbox`) on the transport's
//! worst-case matching patterns:
//!
//! - **many_senders_one_receiver** — p-1 producer threads flood one
//!   mailbox while the receiver drains with *specific* `(source, tag)`
//!   receives in round-robin order. The backlog of not-yet-wanted
//!   messages makes every linear scan O(queue depth); the engine's
//!   `(source, tag)` index pops in O(1).
//! - **wildcard_heavy** — same flood, drained by alternating wildcard
//!   (`ANY/ANY`) and specific receives: wildcards scan per-key FIFO
//!   heads in the engine, the whole queue in the baseline.
//! - **alltoall_storm** — p mailboxes, p threads; every round each
//!   thread sends one message to every peer, then receives p-1 with
//!   specific selectors. Senders running ahead pile later rounds into
//!   the queues, the pattern every collective round produces.
//!
//! Each scenario runs both implementations at p in {4, 8, 16} and
//! reports message rate and per-message latency. The binary enforces
//! the PR's acceptance bound (the engine must beat the baseline by at
//! least 2x message rate in many_senders_one_receiver at p = 8), and
//! with `--check PATH` additionally asserts the engine rows are not
//! slower than a committed baseline JSON (with generous tolerance for
//! machine-to-machine variance).
//!
//! Usage: `matching_experiment [--smoke] [--out PATH] [--check PATH]`;
//! writes `BENCH_matching.json`.

use std::sync::Arc;

use bytes::Bytes;
use kmp_bench::harness::{baseline_lines, json_field, write_json, BenchArgs};
use kmp_mpi::error::{MpiError, Result};
use kmp_mpi::mailbox::{reference::ScanMailbox, Mailbox};
use kmp_mpi::message::{Envelope, Src, Status, TagSel};

/// The matching surface both implementations expose; the scenarios are
/// generic over it so engine and baseline run byte-identical workloads.
trait MatchQueue: Default + Sync + Send + 'static {
    const NAME: &'static str;
    fn push(&self, env: Envelope);
    fn wait_match(
        &self,
        context: u64,
        src: Src,
        tag: TagSel,
        interrupted: impl FnMut() -> Option<MpiError>,
    ) -> Result<Envelope>;
    fn try_peek(&self, context: u64, src: Src, tag: TagSel) -> Option<Status>;
}

impl MatchQueue for Mailbox {
    const NAME: &'static str = "engine";
    fn push(&self, env: Envelope) {
        Mailbox::push(self, env)
    }
    fn wait_match(
        &self,
        context: u64,
        src: Src,
        tag: TagSel,
        interrupted: impl FnMut() -> Option<MpiError>,
    ) -> Result<Envelope> {
        Mailbox::wait_match(self, context, src, tag, interrupted)
    }
    fn try_peek(&self, context: u64, src: Src, tag: TagSel) -> Option<Status> {
        Mailbox::try_peek(self, context, src, tag)
    }
}

impl MatchQueue for ScanMailbox {
    const NAME: &'static str = "legacy_scan";
    fn push(&self, env: Envelope) {
        ScanMailbox::push(self, env)
    }
    fn wait_match(
        &self,
        context: u64,
        src: Src,
        tag: TagSel,
        interrupted: impl FnMut() -> Option<MpiError>,
    ) -> Result<Envelope> {
        ScanMailbox::wait_match(self, context, src, tag, interrupted)
    }
    fn try_peek(&self, context: u64, src: Src, tag: TagSel) -> Option<Status> {
        ScanMailbox::try_peek(self, context, src, tag)
    }
}

fn env(src: usize, context: u64, tag: i32, payload: &Bytes) -> Envelope {
    Envelope {
        src,
        src_world: src,
        context,
        tag,
        payload: payload.clone(), // refcount clone: the bench measures matching, not memcpy
        arrival_ns: 0,
        ack: None,
    }
}

/// p-1 senders flood one receiver; the receiver drains with specific
/// (source, tag) receives, round-robin over the senders. Returns total
/// messages and elapsed seconds.
fn many_senders_one_receiver<Q: MatchQueue>(p: usize, per_sender: usize) -> (usize, f64) {
    let mb = Arc::new(Q::default());
    let payload = Bytes::from(vec![7u8; 64]);
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for s in 1..p {
            let mb = Arc::clone(&mb);
            let payload = payload.clone();
            scope.spawn(move || {
                for _ in 0..per_sender {
                    mb.push(env(s, 0, 100 + s as i32, &payload));
                }
            });
        }
        for _ in 0..per_sender {
            for s in 1..p {
                mb.wait_match(0, Src::Rank(s), TagSel::Is(100 + s as i32), || None)
                    .unwrap();
            }
        }
    });
    ((p - 1) * per_sender, start.elapsed().as_secs_f64())
}

/// Same flood, drained by interleaving ANY/ANY wildcard receives with
/// specific receives (plus an occasional probe, the iprobe pattern).
/// Senders alternate two traffic classes: user-tagged messages for the
/// wildcards, and negative-tagged ("internal protocol") messages the
/// wildcards cannot see — so a wildcard can never steal a message a
/// specific receive is counting on, the same reason the transport keeps
/// collective traffic on negative tags.
fn wildcard_heavy<Q: MatchQueue>(p: usize, per_sender: usize) -> (usize, f64) {
    let per_sender = per_sender & !1; // even: half per traffic class
    let mb = Arc::new(Q::default());
    let payload = Bytes::from(vec![7u8; 64]);
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for s in 1..p {
            let mb = Arc::clone(&mb);
            let payload = payload.clone();
            scope.spawn(move || {
                for i in 0..per_sender {
                    let tag = if i % 2 == 0 {
                        100 + s as i32
                    } else {
                        -(100 + s as i32)
                    };
                    mb.push(env(s, 0, tag, &payload));
                }
            });
        }
        for round in 0..per_sender / 2 {
            for _ in 1..p {
                mb.wait_match(0, Src::Any, TagSel::Any, || None).unwrap();
            }
            for s in 1..p {
                if round % 8 == 0 {
                    let _ = mb.try_peek(0, Src::Rank(s), TagSel::Any);
                }
                mb.wait_match(0, Src::Rank(s), TagSel::Is(-(100 + s as i32)), || None)
                    .unwrap();
            }
        }
    });
    ((p - 1) * per_sender, start.elapsed().as_secs_f64())
}

/// p mailboxes, p threads: every round each thread posts one message to
/// every peer, then drains its own mailbox with specific receives —
/// the traffic shape of a round-based collective, with senders running
/// ahead piling future rounds into the queues.
fn alltoall_storm<Q: MatchQueue>(p: usize, rounds: usize) -> (usize, f64) {
    let mbs: Arc<Vec<Q>> = Arc::new((0..p).map(|_| Q::default()).collect());
    let payload = Bytes::from(vec![7u8; 64]);
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for rank in 0..p {
            let mbs = Arc::clone(&mbs);
            let payload = payload.clone();
            scope.spawn(move || {
                for round in 0..rounds {
                    let tag = round as i32;
                    for peer in 0..p {
                        if peer != rank {
                            mbs[peer].push(env(rank, 0, tag, &payload));
                        }
                    }
                    for peer in 0..p {
                        if peer != rank {
                            mbs[rank]
                                .wait_match(0, Src::Rank(peer), TagSel::Is(tag), || None)
                                .unwrap();
                        }
                    }
                }
            });
        }
    });
    (p * (p - 1) * rounds, start.elapsed().as_secs_f64())
}

#[derive(Clone, Debug)]
struct Row {
    scenario: &'static str,
    implementation: &'static str,
    ranks: usize,
    messages: usize,
    elapsed_ms: f64,
    msgs_per_sec: f64,
    ns_per_msg: f64,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "    {{\"scenario\": \"{}\", \"impl\": \"{}\", \"ranks\": {}, \
             \"messages\": {}, \"elapsed_ms\": {:.3}, \"msgs_per_sec\": {:.0}, \
             \"ns_per_msg\": {:.1}}}",
            self.scenario,
            self.implementation,
            self.ranks,
            self.messages,
            self.elapsed_ms,
            self.msgs_per_sec,
            self.ns_per_msg
        )
    }
}

const SCENARIOS: [&str; 3] = [
    "many_senders_one_receiver",
    "wildcard_heavy",
    "alltoall_storm",
];

/// The scenario's workload instantiated for `Q` — the single place the
/// implementation is chosen, so a row's label can never disagree with
/// the code that produced its numbers.
fn scenario_fn<Q: MatchQueue>(scenario: &str) -> fn(usize, usize) -> (usize, f64) {
    match scenario {
        "many_senders_one_receiver" => many_senders_one_receiver::<Q>,
        "wildcard_heavy" => wildcard_heavy::<Q>,
        "alltoall_storm" => alltoall_storm::<Q>,
        other => panic!("unknown scenario {other}"),
    }
}

fn run_scenario<Q: MatchQueue>(
    scenario: &'static str,
    p: usize,
    work: usize,
    reps: usize,
    rows: &mut Vec<Row>,
) {
    let f = scenario_fn::<Q>(scenario);
    // Warm-up once, then keep the best of `reps` (the bench measures
    // the matching structure, not scheduler noise).
    let _ = f(p, work);
    let mut best: Option<(usize, f64)> = None;
    for _ in 0..reps {
        let (messages, secs) = f(p, work);
        if best.is_none_or(|(_, b)| secs < b) {
            best = Some((messages, secs));
        }
    }
    let (messages, secs) = best.unwrap();
    rows.push(Row {
        scenario,
        implementation: Q::NAME,
        ranks: p,
        messages,
        elapsed_ms: secs * 1e3,
        msgs_per_sec: messages as f64 / secs,
        ns_per_msg: secs * 1e9 / messages as f64,
    });
}

fn rate(rows: &[Row], scenario: &str, implementation: &str, p: usize) -> f64 {
    rows.iter()
        .find(|r| r.scenario == scenario && r.implementation == implementation && r.ranks == p)
        .unwrap_or_else(|| panic!("missing row {scenario}/{implementation}/p{p}"))
        .msgs_per_sec
}

/// Typed rows from a committed baseline, via the shared line-based
/// extraction (`kmp_bench::harness`).
fn baseline_rates(json: &str) -> Vec<(String, String, usize, f64)> {
    baseline_lines(json, "scenario")
        .into_iter()
        .filter_map(|l| {
            Some((
                json_field(l, "scenario")?,
                json_field(l, "impl")?,
                json_field(l, "ranks")?.parse().ok()?,
                json_field(l, "msgs_per_sec")?.parse().ok()?,
            ))
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse("BENCH_matching.json");
    let smoke = args.smoke;
    let baseline = args.baseline.as_deref().map(baseline_rates);

    let ps = [4usize, 8, 16];
    let (per_sender, storm_rounds, reps) = if smoke { (600, 150, 3) } else { (2000, 400, 5) };

    let mut rows: Vec<Row> = Vec::new();
    for &p in &ps {
        for scenario in SCENARIOS {
            let work = if scenario == "alltoall_storm" {
                storm_rounds
            } else {
                per_sender
            };
            run_scenario::<Mailbox>(scenario, p, work, reps, &mut rows);
            run_scenario::<ScanMailbox>(scenario, p, work, reps, &mut rows);
        }
    }

    println!(
        "{:<26} {:<12} {:>3} {:>9} {:>11} {:>14} {:>10}",
        "scenario", "impl", "p", "messages", "elapsed ms", "msgs/sec", "ns/msg"
    );
    for r in &rows {
        println!(
            "{:<26} {:<12} {:>3} {:>9} {:>11.2} {:>14.0} {:>10.1}",
            r.scenario,
            r.implementation,
            r.ranks,
            r.messages,
            r.elapsed_ms,
            r.msgs_per_sec,
            r.ns_per_msg
        );
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    write_json(
        &args.out,
        "matching",
        args.mode(),
        &[("payload_bytes", "64".to_string())],
        &body,
    );

    // --- acceptance: the engine's win is pinned, not asserted ----------

    for &p in &ps {
        for scenario in SCENARIOS {
            let e = rate(&rows, scenario, "engine", p);
            let l = rate(&rows, scenario, "legacy_scan", p);
            println!("{scenario} p={p}: engine/legacy = {:.2}x", e / l);
            // Sanity floor for every scenario: the storm keeps queues
            // shallow (each round drains before the next), so matching
            // cost is a small slice of its wall clock and on an
            // oversubscribed host (this container has a single core)
            // scheduler noise can put either implementation ahead at
            // small p. The floor catches real regressions — an O(n)
            // scan sneaking back in, a reintroduced poll floor — not
            // that noise.
            assert!(
                e >= l * 0.5,
                "{scenario} p={p}: engine fell past the sanity floor \
                 (engine {e:.0} vs legacy {l:.0} msgs/sec)"
            );
        }
        // The matching-pressure scenarios are where the index pays; the
        // PR's acceptance bound is >= 2x at p = 8, which the engine
        // clears several times over.
        let e = rate(&rows, "many_senders_one_receiver", "engine", p);
        let l = rate(&rows, "many_senders_one_receiver", "legacy_scan", p);
        assert!(
            e >= 2.0 * l,
            "p={p}: the acceptance bound — >= 2x message rate in \
             many_senders_one_receiver — failed: engine {e:.0} vs legacy {l:.0} msgs/sec"
        );
        let e = rate(&rows, "wildcard_heavy", "engine", p);
        let l = rate(&rows, "wildcard_heavy", "legacy_scan", p);
        assert!(
            e >= 1.2 * l,
            "p={p}: wildcard-heavy draining must beat the linear scan \
             (engine {e:.0} vs legacy {l:.0} msgs/sec)"
        );
    }
    println!(
        "matching-engine contract holds: >= 2x many-senders rate at every p, \
         wildcards ahead, storm within noise"
    );

    if let Some(baseline) = baseline {
        // CI drift guard: engine rows must stay within a generous factor
        // of the committed full-run baseline (CI machines differ from
        // the one that produced the committed numbers; this catches
        // order-of-magnitude regressions, e.g. an accidental O(n) scan
        // or a reintroduced poll floor, not percent-level noise).
        const TOLERANCE: f64 = 0.25;
        for (scenario, implementation, p, base_rate) in baseline {
            if implementation != "engine" || !ps.contains(&p) {
                continue;
            }
            let now = rate(&rows, &scenario, "engine", p);
            assert!(
                now >= base_rate * TOLERANCE,
                "{scenario} p={p}: engine rate {now:.0} msgs/sec fell below \
                 {TOLERANCE} x committed baseline ({base_rate:.0})"
            );
        }
        println!(
            "baseline check passed (>= {:.0}% of committed rates)",
            100.0 * TOLERANCE
        );
    }
}
