//! Completion-subsystem microbenchmark: the event-driven parked waits
//! (`RequestSet::wait_any` + `Request::wait`, see `kmp_mpi::completion`)
//! against the seed's sweep-and-yield strategy (preserved as
//! `kmp_mpi::completion::reference`) on the two wait shapes the
//! subsystem was built for:
//!
//! - **wait_any_fanin** — one waiter, N senders, a large standing
//!   request set: rank 0 posts every receive of the run upfront (one
//!   per sender per round — the many-outstanding-irecvs shape
//!   `MPI_Waitany` exists for) and drains them via `wait_any` as
//!   senders, pacing themselves with rank-staggered idle gaps and
//!   per-round flow control, deliver timestamped payloads. Payloads
//!   carry send timestamps, so the row reports true **wakeup latency**
//!   (push -> wait_any return, averaged over completions). The sweep
//!   baseline pays a full O(set) test pass per poll and still only
//!   notices an arrival on the pass after it lands; the parked waiter
//!   registers before the message exists, is woken by the push itself,
//!   and re-tests only the fired index — O(1) between completion and
//!   return. For this scenario `elapsed_ms` is the summed measured
//!   wait, not wall time.
//! - **bounded_pipeline** — a fixed in-flight window of synchronous-mode
//!   sends (the `BoundedRequestPool` shape, §III-E): rank 0 streams M
//!   `issend`s round-robin to p-1 receivers, completing the oldest when
//!   the window is full. The baseline completes with a test-and-yield
//!   spin on the ack; the parked path sleeps on the ack registration.
//!   Reported as throughput.
//!
//! Each scenario runs both strategies at p in {4, 8, 16}. The binary
//! enforces the PR's acceptance bound (>= 2x wait_any fan-in wakeup
//! latency improvement at p = 8) and, with `--check PATH`, asserts the
//! event rows have not collapsed relative to a committed baseline JSON
//! (generous tolerance for machine variance).
//!
//! Usage: `completion_experiment [--smoke] [--out PATH] [--check PATH]`;
//! writes `BENCH_completion.json`.

use kmp_bench::harness::{baseline_lines, json_field, write_json, BenchArgs};
use kmp_mpi::completion::reference;
use kmp_mpi::{Config, RequestSet, Universe};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// Parked waits: the completion subsystem.
    Event,
    /// The preserved sweep-and-yield baseline.
    Sweep,
}

impl Strategy {
    fn name(self) -> &'static str {
        match self {
            Strategy::Event => "event_driven",
            Strategy::Sweep => "reference_sweep",
        }
    }
}

/// Busy-spins for roughly `us` microseconds of real work (the
/// pipeline receivers' per-message compute; spinning — not sleeping —
/// is what makes CPU stolen by a polling waiter visible).
fn busy_work(us: u64) {
    let start = std::time::Instant::now();
    let mut acc = 0u64;
    while start.elapsed().as_micros() < us as u128 {
        for i in 0..64u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
    }
}

/// One waiter, p-1 senders, every receive posted upfront: rank 0
/// drains `total` timestamped messages from a standing request set of
/// the same size via wait_any; senders sleep rank-staggered idle gaps
/// and await a per-round ack. Returns (completions, summed wakeup
/// latency in seconds, rank-0 multi_wakeups).
fn wait_any_fanin(strategy: Strategy, p: usize, total: usize, work_us: u64) -> (usize, f64, u64) {
    const ACK_TAG: i32 = 1_000_000;
    let rounds = total / (p - 1);
    let epoch = std::time::Instant::now();
    let wait_one = move |set: &mut RequestSet<'_>| match strategy {
        Strategy::Event => set.wait_any(),
        Strategy::Sweep => reference::wait_any(set),
    };
    let (outcomes, stats) = Universe::run_stats(Config::new(p), move |world| {
        // Collectives and applications overwhelmingly run on derived
        // communicators; the fan-in does too (its receives resolve
        // their context through the shard map, like any dup'd-comm
        // traffic).
        let comm = world.dup().unwrap();
        if comm.rank() == 0 {
            let mut lat_ns = 0u64;
            // The whole fan-in is posted upfront: rounds x (p-1)
            // outstanding receives in one standing set.
            let mut set = RequestSet::new();
            for round in 0..rounds {
                for peer in 1..comm.size() {
                    set.push(comm.irecv(peer, round as i32));
                }
            }
            let mut round_left = vec![comm.size() - 1; rounds];
            while !set.is_empty() {
                let (_, c) = wait_one(&mut set).unwrap().expect("set non-empty");
                let now = epoch.elapsed().as_nanos() as u64;
                let (v, st) = c.into_vec::<u64>().unwrap();
                lat_ns += now.saturating_sub(v[0]);
                let round = st.tag as usize;
                round_left[round] -= 1;
                if round_left[round] == 0 {
                    // Round complete: release every sender at once.
                    for peer in 1..comm.size() {
                        comm.send(&[1u8], peer, ACK_TAG).unwrap();
                    }
                }
            }
            lat_ns
        } else {
            for round in 0..rounds {
                // Rank-staggered idle gaps spread the round's arrivals
                // out in time, so the waiter actually waits between
                // completions instead of draining a burst.
                std::thread::sleep(std::time::Duration::from_micros(
                    work_us * (1 + (comm.rank() as u64 - 1) % 8),
                ));
                let sent = epoch.elapsed().as_nanos() as u64;
                comm.send(&[sent], 0, round as i32).unwrap();
                // Fan-in flow control: the round's ack arrives only
                // once *every* sender delivered, and it is awaited
                // through the same wait strategy.
                let mut ack = RequestSet::new();
                ack.push(comm.irecv(0, ACK_TAG));
                wait_one(&mut ack).unwrap().expect("ack pending");
            }
            0
        }
    });
    let lat_ns = outcomes.into_iter().next().unwrap().unwrap();
    (
        (p - 1) * rounds,
        lat_ns as f64 / 1e9,
        stats[0].mailbox.multi_wakeups,
    )
}

/// Bounded in-flight window of synchronous-mode sends, round-robin over
/// p-1 computing receivers — the `BoundedRequestPool` pipeline shape.
/// Returns (messages, elapsed seconds, rank-0 multi_wakeups).
fn bounded_pipeline(
    strategy: Strategy,
    p: usize,
    messages: usize,
    work_us: u64,
) -> (usize, f64, u64) {
    let started = std::time::Instant::now();
    let (_, stats) = Universe::run_stats(Config::new(p), move |comm| {
        let peers = comm.size() - 1;
        if comm.rank() == 0 {
            let capacity = 2 * peers;
            let mut window: std::collections::VecDeque<kmp_mpi::Request<'_>> =
                std::collections::VecDeque::new();
            for m in 0..messages {
                while window.len() >= capacity {
                    let oldest = window.pop_front().expect("window non-empty");
                    match strategy {
                        Strategy::Event => {
                            oldest.wait().unwrap();
                        }
                        Strategy::Sweep => {
                            reference::wait(oldest).unwrap();
                        }
                    }
                }
                let dest = 1 + m % peers;
                window.push_back(comm.issend(&[m as u8], dest, 0).unwrap());
            }
            for req in window {
                match strategy {
                    Strategy::Event => {
                        req.wait().unwrap();
                    }
                    Strategy::Sweep => {
                        reference::wait(req).unwrap();
                    }
                }
            }
        } else {
            let mine = messages / peers + usize::from(comm.rank() <= messages % peers);
            for _ in 0..mine {
                busy_work(work_us);
                comm.recv_vec::<u8>(0, 0).unwrap();
            }
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    (messages, elapsed, stats[0].mailbox.multi_wakeups)
}

#[derive(Clone, Debug)]
struct Row {
    scenario: &'static str,
    implementation: &'static str,
    ranks: usize,
    completions: usize,
    elapsed_ms: f64,
    us_per_completion: f64,
    completions_per_sec: f64,
    multi_wakeups: u64,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "    {{\"scenario\": \"{}\", \"impl\": \"{}\", \"ranks\": {}, \
             \"completions\": {}, \"elapsed_ms\": {:.3}, \"us_per_completion\": {:.2}, \
             \"completions_per_sec\": {:.0}, \"multi_wakeups\": {}}}",
            self.scenario,
            self.implementation,
            self.ranks,
            self.completions,
            self.elapsed_ms,
            self.us_per_completion,
            self.completions_per_sec,
            self.multi_wakeups
        )
    }
}

fn run_scenario(
    scenario: &'static str,
    strategy: Strategy,
    p: usize,
    work: usize,
    work_us: u64,
    reps: usize,
    rows: &mut Vec<Row>,
) {
    let f = match scenario {
        "wait_any_fanin" => wait_any_fanin,
        "bounded_pipeline" => bounded_pipeline,
        other => panic!("unknown scenario {other}"),
    };
    // Warm-up once, then average over `reps`: latency distributions on
    // an oversubscribed host are tail-heavy in both directions, so the
    // mean over several runs is steadier than a best-of pick.
    let _ = f(strategy, p, work, work_us);
    let mut completions = 0usize;
    let mut secs = 0f64;
    let mut multi_wakeups = 0u64;
    for _ in 0..reps {
        let r = f(strategy, p, work, work_us);
        completions += r.0;
        secs += r.1;
        multi_wakeups += r.2;
    }
    rows.push(Row {
        scenario,
        implementation: strategy.name(),
        ranks: p,
        completions,
        elapsed_ms: secs * 1e3,
        us_per_completion: secs * 1e6 / completions as f64,
        completions_per_sec: completions as f64 / secs,
        multi_wakeups,
    });
}

fn latency(rows: &[Row], scenario: &str, implementation: &str, p: usize) -> f64 {
    rows.iter()
        .find(|r| r.scenario == scenario && r.implementation == implementation && r.ranks == p)
        .unwrap_or_else(|| panic!("missing row {scenario}/{implementation}/p{p}"))
        .us_per_completion
}

/// Typed rows from a committed baseline, via the shared line-based
/// extraction (`kmp_bench::harness`).
fn baseline_latencies(json: &str) -> Vec<(String, String, usize, f64)> {
    baseline_lines(json, "scenario")
        .into_iter()
        .filter_map(|l| {
            Some((
                json_field(l, "scenario")?,
                json_field(l, "impl")?,
                json_field(l, "ranks")?.parse().ok()?,
                json_field(l, "us_per_completion")?.parse().ok()?,
            ))
        })
        .collect()
}

const SCENARIOS: [&str; 2] = ["wait_any_fanin", "bounded_pipeline"];

fn main() {
    let args = BenchArgs::parse("BENCH_completion.json");
    let smoke = args.smoke;
    let baseline = args.baseline.as_deref().map(baseline_latencies);

    let ps = [4usize, 8, 16];
    let (fanin_total, messages, reps) = if smoke {
        (4800, 300, 3)
    } else {
        (4800, 1000, 5)
    };
    // Sender-side idle-gap unit per message (rank-staggered in the
    // fan-in): arrivals must be sparse enough that the waiter really
    // waits between completions — that waiting is what the two
    // strategies price differently.
    let work_us = 200u64;

    let mut rows: Vec<Row> = Vec::new();
    for &p in &ps {
        for scenario in SCENARIOS {
            // The pipeline's receivers get a lighter compute so the
            // bounded window actually turns over between completions.
            let (work, us) = if scenario == "wait_any_fanin" {
                (fanin_total, work_us)
            } else {
                (messages, work_us / 8)
            };
            for strategy in [Strategy::Event, Strategy::Sweep] {
                run_scenario(scenario, strategy, p, work, us, reps, &mut rows);
            }
        }
    }

    println!(
        "{:<18} {:<16} {:>3} {:>12} {:>11} {:>10} {:>12} {:>8}",
        "scenario", "impl", "p", "completions", "elapsed ms", "us/compl", "compl/sec", "wakeups"
    );
    for r in &rows {
        println!(
            "{:<18} {:<16} {:>3} {:>12} {:>11.2} {:>10.2} {:>12.0} {:>8}",
            r.scenario,
            r.implementation,
            r.ranks,
            r.completions,
            r.elapsed_ms,
            r.us_per_completion,
            r.completions_per_sec,
            r.multi_wakeups
        );
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    write_json(
        &args.out,
        "completion",
        args.mode(),
        &[("work_us", work_us.to_string())],
        &body,
    );

    // --- acceptance: the parked path's win is pinned, not asserted ------

    for &p in &ps {
        for scenario in SCENARIOS {
            let e = latency(&rows, scenario, "event_driven", p);
            let s = latency(&rows, scenario, "reference_sweep", p);
            println!("{scenario} p={p}: sweep/event latency = {:.2}x", s / e);
            // Sanity floor everywhere: parking must never make a wait
            // dramatically slower than spinning.
            assert!(
                e <= s * 2.0,
                "{scenario} p={p}: the parked path fell past the sanity floor \
                 (event {e:.1} vs sweep {s:.1} us/completion)"
            );
        }
        // The parked waiter frees the core the yield-spinning sweep
        // burns; the event rows must also show real claims (the wait
        // actually parked instead of completing via its sweeps).
        let fanin_event = rows
            .iter()
            .find(|r| {
                r.scenario == "wait_any_fanin" && r.implementation == "event_driven" && r.ranks == p
            })
            .unwrap();
        assert!(
            fanin_event.multi_wakeups > 0,
            "p={p}: the event-driven fan-in never parked — the bench is not \
             exercising the completion subsystem"
        );
    }
    // The PR's acceptance bound: >= 2x fan-in wakeup latency at p = 8.
    let e = latency(&rows, "wait_any_fanin", "event_driven", 8);
    let s = latency(&rows, "wait_any_fanin", "reference_sweep", 8);
    assert!(
        e * 2.0 <= s,
        "the acceptance bound — >= 2x wait_any fan-in wakeup latency \
         improvement at p = 8 — failed: event {e:.1} vs sweep {s:.1} us/completion"
    );
    println!(
        "completion contract holds: >= 2x fan-in latency at p = 8 \
         ({:.2}x), parked path never past the sanity floor",
        s / e
    );

    if let Some(baseline) = baseline {
        // CI drift guard: event rows must stay within a generous factor
        // of the committed full-run baseline (catches order-of-magnitude
        // regressions — a reintroduced poll loop — not percent noise).
        const TOLERANCE: f64 = 4.0;
        for (scenario, implementation, p, base_latency) in baseline {
            if implementation != "event_driven" || !ps.contains(&p) {
                continue;
            }
            let now = latency(&rows, &scenario, "event_driven", p);
            assert!(
                now <= base_latency * TOLERANCE,
                "{scenario} p={p}: event latency {now:.1} us rose above \
                 {TOLERANCE} x committed baseline ({base_latency:.1} us)"
            );
        }
        println!("baseline check passed (<= {TOLERANCE:.0} x committed latencies)");
    }
}
