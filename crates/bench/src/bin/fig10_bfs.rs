//! Regenerates **Fig. 10** of the paper: BFS weak scaling on three graph
//! families (GNM / RGG-2D / RHG) under different frontier-exchange
//! strategies: dense alltoallv (mpi, kamping), neighborhood collectives,
//! kamping sparse (NBX), kamping grid — plus the topology-rebuild
//! configuration the paper notes does not scale.
//!
//! Paper shapes to reproduce: grid strongest on RHG (and GNM at scale);
//! sparse ~ neighbor and best on RGG; rebuild-per-level degrades.

use kmp_apps::bfs::{bfs_sequential, bfs_with_exchange, Exchange};
use kmp_bench::{arg_usize, calibrate_ns, measure_virtual_kamping_ms, row, scaling_ranks};
use kmp_graphgen::{gnm, rgg2d, rhg, DistGraph};

fn main() {
    let max_p = arg_usize("--max-p", 32);
    let n_per_rank = arg_usize("--n-per-rank", 512);
    let reps = arg_usize("--reps", 3);
    println!("FIG. 10 — BFS WEAK SCALING ({n_per_rank} vertices/rank, ~8x edges, virtual time)");

    let strategies = [
        ("mpi", Exchange::MpiDense),
        ("mpi_neighbor", Exchange::MpiNeighbor),
        ("kamping", Exchange::Kamping),
        ("kamping_sparse", Exchange::KampingSparse),
        ("kamping_grid", Exchange::KampingGrid),
        ("neighbor_rebuild", Exchange::MpiNeighborRebuild),
    ];

    for (family, gen) in [("GNM", 0usize), ("RGG-2D", 1), ("RHG", 2)] {
        println!("== {family} ==");
        for p in scaling_ranks(max_p) {
            let n = n_per_rank * p;
            let parts: Vec<DistGraph> = (0..p)
                .map(|r| match gen {
                    0 => gnm(n, 8 * n, 7, r, p),
                    1 => rgg2d(
                        n,
                        (16.0 / (std::f64::consts::PI * n as f64)).sqrt(),
                        7,
                        r,
                        p,
                    ),
                    _ => rhg(n, 8.0, 0.75, 7, r, p),
                })
                .collect();
            // Calibrated per-edge traversal cost (identical across
            // strategies, so it cancels in the comparison but keeps the
            // absolute numbers meaningful).
            let total_m: usize = parts.iter().map(|g| g.local_m()).sum();
            let bfs_ns = calibrate_ns(3, || {
                std::hint::black_box(bfs_sequential(&parts, 0));
            });
            let ns_per_edge = (bfs_ns as f64 / total_m.max(1) as f64).max(1.0);
            for (label, ex) in strategies {
                let parts = &parts;
                let ms = measure_virtual_kamping_ms(p, reps, move |c| {
                    let _ = bfs_with_exchange(&parts[c.rank()], 0, c, ex).unwrap();
                    let local_work = (parts[c.rank()].local_m() as f64 * ns_per_edge) as u64;
                    c.raw().clock_add_ns(local_work);
                });
                println!("{}", row(label, p, ms));
            }
        }
    }
}
