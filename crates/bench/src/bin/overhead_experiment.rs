//! Overhead trajectory harness: proves the "(near) zero overhead" claim
//! (§IV, Fig. 7) on the shared-`Bytes` datapath and records it as
//! `BENCH_overhead.json` so every PR can be compared against the last.
//!
//! For each workload the harness runs the **raw substrate** path and the
//! **kamping binding** path on identical payloads and reports
//!
//! - wall-clock time per operation (median of repetitions),
//! - the binding/substrate overhead ratio (the paper's figure of merit),
//! - per-rank payload bytes copied per operation (from
//!   `kmp_mpi::metrics`), the datapath's copy bill.
//!
//! Usage: `overhead_experiment [--smoke] [--out PATH]`. `--smoke` runs a
//! reduced matrix for CI; the default writes `BENCH_overhead.json` into
//! the current directory.

use kmp_bench::harness::{write_json, BenchArgs};
use kmp_mpi::{metrics, Universe};

#[derive(Clone, Debug)]
struct Row {
    name: String,
    ranks: usize,
    payload_bytes: usize,
    reps: usize,
    raw_us: f64,
    kamping_us: f64,
    raw_copied_per_op: u64,
    kamping_copied_per_op: u64,
}

impl Row {
    fn overhead_ratio(&self) -> f64 {
        if self.raw_us > 0.0 {
            self.kamping_us / self.raw_us
        } else {
            1.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"ranks\": {}, \"payload_bytes\": {}, \"reps\": {}, \
             \"raw_us_per_op\": {:.3}, \"kamping_us_per_op\": {:.3}, \
             \"overhead_ratio\": {:.4}, \"raw_bytes_copied_per_op\": {}, \
             \"kamping_bytes_copied_per_op\": {}, \"copies_per_payload_byte\": {:.3}}}",
            self.name,
            self.ranks,
            self.payload_bytes,
            self.reps,
            self.raw_us,
            self.kamping_us,
            self.overhead_ratio(),
            self.raw_copied_per_op,
            self.kamping_copied_per_op,
            self.kamping_copied_per_op as f64 / self.payload_bytes.max(1) as f64,
        )
    }
}

/// Reduces per-rank `(times, copied/op)` samples to (max-over-ranks
/// median wall-clock microseconds per op, max-over-ranks copied bytes
/// per op).
fn reduce_samples(per_rank: Vec<(Vec<u64>, u64)>) -> (f64, u64) {
    let median_us_max = per_rank
        .iter()
        .map(|(times, _)| {
            let mut t = times.clone();
            t.sort_unstable();
            t[t.len() / 2] as f64 / 1e3
        })
        .fold(0.0f64, f64::max);
    let copied_max = per_rank.iter().map(|&(_, c)| c).max().unwrap_or(0);
    (median_us_max, copied_max)
}

/// Times `reps` barrier-aligned runs of `f` on this rank, tracking the
/// per-op copy bill (warm-up rep excluded).
fn sample<C>(comm: &kmp_mpi::Comm, reps: usize, mut f: impl FnMut(&C), ctx: &C) -> (Vec<u64>, u64) {
    comm.barrier().unwrap();
    f(ctx);
    let mut times = Vec::with_capacity(reps);
    let copy_before = metrics::snapshot();
    for _ in 0..reps {
        comm.barrier().unwrap();
        let t = std::time::Instant::now();
        f(ctx);
        times.push(t.elapsed().as_nanos() as u64);
    }
    let copied = metrics::snapshot().since(&copy_before).bytes_copied;
    (times, copied / reps as u64)
}

/// Runs `f` on `p` ranks against the raw substrate.
fn measure<F>(p: usize, reps: usize, f: F) -> (f64, u64)
where
    F: Fn(&kmp_mpi::Comm) + Sync,
{
    reduce_samples(Universe::run(p, |comm| sample(&comm, reps, &f, &comm)))
}

/// Runs `f` on `p` ranks against the kamping binding (the communicator
/// wrap happens once per rank, outside the timed region, exactly as an
/// application would hold it).
fn measure_kamping<F>(p: usize, reps: usize, f: F) -> (f64, u64)
where
    F: Fn(&kamping::Communicator) + Sync,
{
    reduce_samples(Universe::run(p, |comm| {
        let kc = kamping::Communicator::new(comm);
        sample(kc.raw(), reps, &f, &kc)
    }))
}

fn pingpong(bytes: usize, reps: usize) -> Row {
    let n = bytes / 8;
    let (raw_us, raw_copied) = measure(2, reps, |comm| {
        if comm.rank() == 0 {
            let data = vec![1u64; n];
            comm.send(&data, 1, 0).unwrap();
            let (_back, _) = comm.recv_vec::<u64>(1, 1).unwrap();
        } else {
            let (back, _) = comm.recv_vec::<u64>(0, 0).unwrap();
            comm.send_vec(back, 0, 1).unwrap();
        }
    });
    let (kamping_us, kamping_copied) = measure_kamping(2, reps, |comm| {
        use kamping::prelude::*;
        if comm.rank() == 0 {
            let data = vec![1u64; n];
            comm.send((send_buf(data), destination(1), tag(0))).unwrap();
            let _back: Vec<u64> = comm.recv((source(1), tag(1))).unwrap();
        } else {
            let back: Vec<u64> = comm.recv((source(0), tag(0))).unwrap();
            comm.send((send_buf(back), destination(0), tag(1))).unwrap();
        }
    });
    Row {
        name: format!("p2p_pingpong_{}KiB", bytes / 1024),
        ranks: 2,
        payload_bytes: bytes,
        reps,
        raw_us,
        kamping_us,
        raw_copied_per_op: raw_copied,
        kamping_copied_per_op: kamping_copied,
    }
}

fn bcast(bytes: usize, p: usize, reps: usize) -> Row {
    let (raw_us, raw_copied) = measure(p, reps, |comm| {
        let mut buf = vec![comm.rank() as u8; bytes];
        comm.bcast_into(&mut buf, 0).unwrap();
    });
    let (kamping_us, kamping_copied) = measure_kamping(p, reps, |comm| {
        use kamping::prelude::*;
        let mut buf = if comm.rank() == 0 {
            vec![1u8; bytes]
        } else {
            Vec::new()
        };
        comm.bcast((send_recv_buf(&mut buf),)).unwrap();
    });
    Row {
        name: format!("bcast_{}KiB_p{p}", bytes / 1024),
        ranks: p,
        payload_bytes: bytes,
        reps,
        raw_us,
        kamping_us,
        raw_copied_per_op: raw_copied,
        kamping_copied_per_op: kamping_copied,
    }
}

fn allgatherv(bytes_per_rank: usize, p: usize, reps: usize) -> Row {
    let n = bytes_per_rank / 8;
    let (raw_us, raw_copied) = measure(p, reps, |comm| {
        let mine = vec![comm.rank() as u64; n];
        let _all = comm.allgather_vec(&mine).unwrap();
    });
    let (kamping_us, kamping_copied) = measure_kamping(p, reps, |comm| {
        use kamping::prelude::*;
        let mine = vec![comm.rank() as u64; n];
        // Counts provided: identical semantics to the raw path (omitted
        // counts would add the Fig. 2 count-discovery round, a feature,
        // not datapath overhead).
        let counts = vec![n; comm.size()];
        let _all: Vec<u64> = comm
            .allgatherv((send_buf(&mine), recv_counts(&counts)))
            .unwrap();
    });
    Row {
        name: format!("allgatherv_{}KiB_p{p}", bytes_per_rank / 1024),
        ranks: p,
        payload_bytes: bytes_per_rank,
        reps,
        raw_us,
        kamping_us,
        raw_copied_per_op: raw_copied,
        kamping_copied_per_op: kamping_copied,
    }
}

/// Runtime probe: true when the substrate was built with copy counters.
fn copy_metrics_enabled() -> bool {
    let before = metrics::snapshot();
    let _ = kmp_mpi::bytes_from_slice(&[0u8; 8]);
    metrics::snapshot().since(&before).bytes_copied > 0
}

fn main() {
    let args = BenchArgs::parse("BENCH_overhead.json");
    let smoke = args.smoke;

    let (sizes, reps, p) = if smoke {
        (vec![64 * 1024], 5, 4)
    } else {
        (vec![64 * 1024, 1 << 20, 4 << 20], 15, 8)
    };

    let mut rows: Vec<Row> = Vec::new();
    for &bytes in &sizes {
        rows.push(pingpong(bytes, reps));
        rows.push(bcast(bytes, p, reps));
        rows.push(allgatherv(bytes, p.min(4), reps));
    }

    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "experiment", "bytes", "raw us/op", "kmp us/op", "ratio", "raw cp/op", "kmp cp/op"
    );
    for r in &rows {
        println!(
            "{:<26} {:>10} {:>12.1} {:>12.1} {:>9.3} {:>14} {:>14}",
            r.name,
            r.payload_bytes,
            r.raw_us,
            r.kamping_us,
            r.overhead_ratio(),
            r.raw_copied_per_op,
            r.kamping_copied_per_op
        );
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    write_json(
        &args.out,
        "overhead",
        args.mode(),
        &[("copy_metrics", copy_metrics_enabled().to_string())],
        &body,
    );

    // The claim this harness guards: the binding adds no copies beyond
    // the substrate (equal copy bills) and stays within a small factor
    // on wall-clock for large messages.
    for r in &rows {
        // Tiny slack for per-op metadata (e.g. a counts vector), which
        // is O(p) words, not O(payload).
        let slack = 64 * r.ranks as u64;
        assert!(
            r.kamping_copied_per_op <= r.raw_copied_per_op + slack,
            "{}: binding copies more than the substrate ({} > {} + {slack})",
            r.name,
            r.kamping_copied_per_op,
            r.raw_copied_per_op
        );
    }
}
