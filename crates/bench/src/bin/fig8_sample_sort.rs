//! Regenerates **Fig. 8** of the paper: sample sort weak scaling across
//! the five bindings. The paper sorts 1e6 64-bit integers per rank on up
//! to 256 ranks and finds all bindings indistinguishable except MPL.
//!
//! This harness sorts `--n-per-rank` (default 20000) integers per rank on
//! 1..=`--max-p` (default 32) ranks, reporting virtual time (DESIGN.md).

use kmp_apps::sample_sort::*;
use kmp_bench::{
    arg_usize, calibrate_ns, measure_virtual_kamping_ms, measure_virtual_ms, row, scaling_ranks,
};
use rand::prelude::*;

fn input(rank: usize, n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(42 + rank as u64);
    (0..n).map(|_| rng.random()).collect()
}

fn main() {
    let max_p = arg_usize("--max-p", 32);
    let n = arg_usize("--n-per-rank", 20_000);
    let reps = arg_usize("--reps", 3);
    // Compute charge per rank: two local sorts (bucket build + final),
    // calibrated single-threaded (see kmp_mpi::clock).
    let sort_ns = calibrate_ns(5, || {
        let mut v = input(0, n);
        v.sort_unstable();
        std::hint::black_box(&v);
    });
    let compute_ns = 2 * sort_ns + (n as u64) / 2;
    println!("FIG. 8 — SAMPLE SORT WEAK SCALING ({n} x u64 per rank, virtual time)");
    println!(
        "(calibrated local compute: {:.3} ms per rank)",
        compute_ns as f64 / 1e6
    );

    for p in scaling_ranks(max_p) {
        let mpi = measure_virtual_ms(p, reps, |comm| {
            let mut data = input(comm.rank(), n);
            sample_sort_mpi(&mut data, comm).unwrap();
            comm.clock_add_ns(compute_ns);
        });
        let boost = measure_virtual_ms(p, reps, |comm| {
            let mut data = input(comm.rank(), n);
            sample_sort_boost(&mut data, comm).unwrap();
            comm.clock_add_ns(compute_ns);
        });
        let rwth = measure_virtual_ms(p, reps, |comm| {
            let mut data = input(comm.rank(), n);
            sample_sort_rwth(&mut data, comm).unwrap();
            comm.clock_add_ns(compute_ns);
        });
        let mpl = measure_virtual_ms(p, reps, |comm| {
            let mut data = input(comm.rank(), n);
            sample_sort_mpl(&mut data, comm).unwrap();
            comm.clock_add_ns(compute_ns);
        });
        let kamping = measure_virtual_kamping_ms(p, reps, |comm| {
            let mut data = input(comm.rank(), n);
            sample_sort_kamping(&mut data, comm).unwrap();
            comm.raw().clock_add_ns(compute_ns);
        });
        println!("{}", row("mpi", p, mpi));
        println!("{}", row("boost", p, boost));
        println!("{}", row("rwth", p, rwth));
        println!("{}", row("mpl", p, mpl));
        println!("{}", row("kamping", p, kamping));
        let base = mpi.min(boost).min(rwth).min(kamping);
        println!(
            "  -> kamping overhead vs fastest baseline: {:+.1}%  |  mpl vs fastest: {:+.1}%",
            (kamping / base - 1.0) * 100.0,
            (mpl / base - 1.0) * 100.0
        );
    }
}
