//! Self-tuning adversarial matrix: proves the online cost model earns
//! its keep where the static thresholds cannot.
//!
//! The matrix is a message-size × communicator-size sweep constructed
//! so that **every static threshold picks the wall-clock loser in at
//! least one cell** (in-process, the thresholds were hand-set above a
//! *cluster* model's crossovers — the machine underneath disagrees):
//!
//! - `rabenseifner_min_bytes` (128 KiB) parks the 64 KiB allreduce on
//!   recursive doubling; Rabenseifner's reduce-scatter folds 1/p of the
//!   vector per rank and wins wall time at every p,
//! - `bcast_scatter_min_bytes` (256 KiB) fires early: the
//!   refcount-forwarding binomial tree still wins at 256 KiB
//!   (van de Geijn's chunk pipeline only breaks even near 512 KiB),
//! - `bruck_max_block_bytes` caps Bruck at 1 KiB blocks, but in-process
//!   its log(p) rounds beat pairwise's p-1 mailbox rendezvous well past
//!   the cap,
//! - the allgather RD/Bruck caps route small blocks to the packing
//!   algorithms where the refcount ring (or plain RD) wins.
//!
//! Per cell the harness measures every forced candidate, derives the
//! measured-best algorithm, then runs static `Auto` and model-driven
//! `Auto` through a warm-up + steady-state phase; each measurement is
//! the quietest of [`RUNS`] independent runs (min-based noise
//! rejection). Self-asserted contract:
//!
//! - every static threshold loses ≥ 1 cell (static pick ≠ measured best),
//! - the model's converged pick costs within 15% + 10 µs of the
//!   measured-best algorithm in **every** cell (regime winner, with a
//!   tie tolerance),
//! - aggregate steady-state wall time over the adversarial cells: model
//!   `Auto` is ≥ 1.3× faster than static `Auto`, and it never
//!   meaningfully regresses on the control cells where the static
//!   thresholds are already right.
//!
//! `--check PATH` additionally re-validates a committed baseline
//! structurally: per-collective adversarial cells present, converged
//! picks recorded, aggregate speedup ≥ 1.3.
//!
//! Usage: `tuning_experiment [--smoke] [--out PATH] [--check PATH]`;
//! writes `BENCH_tuning.json`.

use kmp_bench::harness::{baseline_lines, json_field, write_json, BenchArgs};
use kmp_mpi::{
    AlgoClass, AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, CollTuning, Comm, Config,
    CostModel, ModelConfig, Universe,
};

/// One forced candidate algorithm of a cell.
struct Candidate {
    name: &'static str,
    class: AlgoClass,
    tuning: CollTuning,
}

/// The model cadence used by every driven run: publish every 4th call,
/// two observations warm a class, a fast EWMA (50%) so steady-state
/// samples quickly displace the cold warm-up ones, and a periodic
/// re-measure of the stalest candidate every 16th call — converged well
/// inside the warm-up iteration budget below.
fn driven() -> CollTuning {
    CollTuning::default().model(
        ModelConfig::default()
            .drive(true)
            .epoch_len(4)
            .warmup_obs(2)
            .ewma_pct(50)
            .reexplore_every(16),
    )
}

fn candidates(collective: &str) -> Vec<Candidate> {
    match collective {
        "allreduce" => vec![
            Candidate {
                name: "recursive_doubling",
                class: AlgoClass::AllreduceRd,
                tuning: CollTuning::default().allreduce(AllreduceAlgo::RecursiveDoubling),
            },
            Candidate {
                name: "rabenseifner",
                class: AlgoClass::AllreduceRabenseifner,
                tuning: CollTuning::default().allreduce(AllreduceAlgo::Rabenseifner),
            },
        ],
        "bcast" => vec![
            Candidate {
                name: "binomial",
                class: AlgoClass::BcastBinomial,
                tuning: CollTuning::default().bcast(BcastAlgo::Binomial),
            },
            Candidate {
                name: "scatter_allgather",
                class: AlgoClass::BcastScatterAllgather,
                tuning: CollTuning::default().bcast(BcastAlgo::ScatterAllgather),
            },
        ],
        "alltoall" => vec![
            Candidate {
                name: "pairwise",
                class: AlgoClass::AlltoallPairwise,
                tuning: CollTuning::default().alltoall(AlltoallAlgo::Pairwise),
            },
            Candidate {
                name: "bruck",
                class: AlgoClass::AlltoallBruck,
                tuning: CollTuning::default().alltoall(AlltoallAlgo::Bruck),
            },
        ],
        "allgather" => vec![
            Candidate {
                name: "ring",
                class: AlgoClass::AllgatherRing,
                tuning: CollTuning::default().allgather(AllgatherAlgo::Ring),
            },
            Candidate {
                name: "recursive_doubling",
                class: AlgoClass::AllgatherRd,
                tuning: CollTuning::default().allgather(AllgatherAlgo::RecursiveDoubling),
            },
            Candidate {
                name: "bruck",
                class: AlgoClass::AllgatherBruck,
                tuning: CollTuning::default().allgather(AllgatherAlgo::Bruck),
            },
        ],
        other => panic!("unknown collective {other}"),
    }
}

/// What the static thresholds pick for this cell (the warm-up fallback
/// and the pre-model behavior of `Auto`).
fn static_pick(collective: &str, p: usize, bytes: usize) -> &'static str {
    let t = CollTuning::default();
    match collective {
        "allreduce" => match t.allreduce_algo(p, bytes) {
            AllreduceAlgo::RecursiveDoubling => "recursive_doubling",
            AllreduceAlgo::Rabenseifner => "rabenseifner",
        },
        "bcast" => match t.bcast_algo(p, bytes) {
            BcastAlgo::Binomial => "binomial",
            BcastAlgo::ScatterAllgather => "scatter_allgather",
        },
        "alltoall" => match t.alltoall_algo(p, bytes) {
            AlltoallAlgo::Pairwise => "pairwise",
            AlltoallAlgo::Bruck => "bruck",
        },
        "allgather" => match t.allgather_algo(p, bytes) {
            AllgatherAlgo::Ring => "ring",
            AllgatherAlgo::RecursiveDoubling => "recursive_doubling",
            AllgatherAlgo::Bruck => "bruck",
        },
        other => panic!("unknown collective {other}"),
    }
}

/// How many independent repetitions of each measurement run; the one
/// with the lowest median wall is reported (standard min-based noise
/// rejection — ranks run as threads, so a scheduler hiccup inflates a
/// whole run, never deflates it).
const RUNS: usize = 3;

/// Runs `op` on `p` ranks: `warm` unmeasured iterations under `tuning`
/// (model warm-up when the tuning drives), then `reps` barrier-aligned
/// measured iterations under `steady` — the converge-then-pin pattern:
/// driven runs warm up with periodic re-exploration on, then disable it
/// for the hot loop so the steady state pays zero re-measure overhead.
/// The whole run repeats [`RUNS`] times and the quietest run wins.
/// Returns (max-over-ranks median wall µs, rank 0's per-class
/// selection-count delta across that run's measured phase).
fn measure<F>(
    p: usize,
    warm: usize,
    reps: usize,
    tuning: CollTuning,
    steady: CollTuning,
    op: F,
) -> (f64, Vec<u64>)
where
    F: Fn(&Comm) + Sync,
{
    let mut best: Option<(f64, Vec<u64>)> = None;
    for _ in 0..RUNS {
        let outcomes = Universe::run_with(Config::new(p).cost(CostModel::cluster()), |comm| {
            comm.set_tuning(tuning);
            for _ in 0..warm {
                op(&comm);
            }
            // Every rank switches after the same matching call, so
            // selections stay symmetric.
            comm.set_tuning(steady);
            comm.barrier().unwrap();
            let before = comm.tuning_stats();
            let mut walls = Vec::with_capacity(reps);
            for _ in 0..reps {
                comm.barrier().unwrap();
                let t = std::time::Instant::now();
                op(&comm);
                walls.push(t.elapsed().as_nanos() as u64);
            }
            let after = comm.tuning_stats();
            walls.sort_unstable();
            let delta: Vec<u64> = after
                .selections
                .iter()
                .zip(before.selections.iter())
                .map(|(a, b)| a - b)
                .collect();
            (walls[walls.len() / 2], delta)
        });
        let per: Vec<(u64, Vec<u64>)> = outcomes.into_iter().map(|o| o.unwrap()).collect();
        let wall_us = per.iter().map(|(w, _)| *w).max().unwrap() as f64 / 1e3;
        if best.as_ref().is_none_or(|(w, _)| wall_us < *w) {
            best = Some((wall_us, per[0].1.clone()));
        }
    }
    best.unwrap()
}

/// The workload of one cell, dispatched by collective name. `bytes` is
/// the per-rank payload (allreduce/bcast/allgather own block) or the
/// per-peer block size (alltoall).
fn cell_op(collective: &'static str, bytes: usize) -> impl Fn(&Comm) + Sync + Copy {
    move |comm: &Comm| match collective {
        "allreduce" => {
            let mine = vec![comm.rank() as u64 + 1; bytes / 8];
            let _ = comm.allreduce_vec(&mine, kmp_mpi::op::Sum).unwrap();
        }
        "bcast" => {
            let mut buf = vec![comm.rank() as u8; bytes];
            comm.bcast_into(&mut buf, 0).unwrap();
        }
        "alltoall" => {
            let n = (bytes / 8).max(1);
            let send = vec![comm.rank() as u64; n * comm.size()];
            let mut recv = vec![0u64; n * comm.size()];
            comm.alltoall_into(&send, &mut recv).unwrap();
        }
        "allgather" => {
            let mine = vec![comm.rank() as u64; bytes / 8];
            let _ = comm.allgather_vec(&mine).unwrap();
        }
        other => panic!("unknown collective {other}"),
    }
}

struct CellResult {
    collective: &'static str,
    ranks: usize,
    payload_bytes: usize,
    static_pick: &'static str,
    best: &'static str,
    best_wall_us: f64,
    forced: Vec<(&'static str, f64)>,
    static_auto_wall_us: f64,
    model_pick: &'static str,
    model_wall_us: f64,
    /// Constructed-adversarial: the cell was placed on the wrong side of
    /// a static threshold by design, and belongs to the aggregate mix.
    /// (Near-crossover cells can still measure non-adversarial on a
    /// given run — `adversarial` records what this run saw.)
    designed: bool,
    adversarial: bool,
}

impl CellResult {
    fn to_json(&self) -> String {
        let forced: Vec<String> = self
            .forced
            .iter()
            .map(|(n, w)| format!("\"wall_{n}_us\": {w:.3}"))
            .collect();
        format!(
            "    {{\"collective\": \"{}\", \"ranks\": {}, \"payload_bytes\": {}, \
             \"static_pick\": \"{}\", \"best\": \"{}\", \"best_wall_us\": {:.3}, {}, \
             \"static_auto_wall_us\": {:.3}, \"model_pick\": \"{}\", \
             \"model_wall_us\": {:.3}, \"designed\": {}, \"adversarial\": {}}}",
            self.collective,
            self.ranks,
            self.payload_bytes,
            self.static_pick,
            self.best,
            self.best_wall_us,
            forced.join(", "),
            self.static_auto_wall_us,
            self.model_pick,
            self.model_wall_us,
            self.designed,
            self.adversarial
        )
    }
}

fn run_cell(
    collective: &'static str,
    p: usize,
    bytes: usize,
    designed: bool,
    warm: usize,
    reps: usize,
) -> CellResult {
    let op = cell_op(collective, bytes);
    let cands = candidates(collective);
    let forced: Vec<(&'static str, f64)> = cands
        .iter()
        .map(|c| (c.name, measure(p, 2, reps, c.tuning, c.tuning, op).0))
        .collect();
    let (best, best_wall_us) = forced
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    // Static Auto: the same warm-up + steady shape, model off.
    let t = CollTuning::default();
    let (static_auto_wall_us, _) = measure(p, warm, reps, t, t, op);
    // Model-driven Auto: warm-up iterations cover exploration + EWMA
    // convergence (re-exploration on), then the measured hot loop pins
    // re-exploration off — what a converged user loop sees.
    let steady = driven().model(driven().model.reexplore_every(0));
    let (model_wall_us, delta) = measure(p, warm, reps, driven(), steady, op);
    let model_pick = cands
        .iter()
        .max_by_key(|c| delta[c.class.index()])
        .unwrap()
        .name;
    let sp = static_pick(collective, p, bytes);
    CellResult {
        collective,
        ranks: p,
        payload_bytes: bytes,
        designed,
        static_pick: sp,
        best,
        best_wall_us,
        forced,
        static_auto_wall_us,
        model_pick,
        model_wall_us,
        adversarial: sp != best,
    }
}

/// Structural re-validation of a committed baseline: adversarial
/// coverage per collective, converged picks recorded, aggregate
/// speedup still ≥ 1.3.
fn check_baseline(json: &str) {
    let speedup: f64 = json
        .lines()
        .find_map(|l| json_field(l, "aggregate_speedup"))
        .expect("baseline lacks aggregate_speedup")
        .parse()
        .expect("aggregate_speedup not a number");
    assert!(
        speedup >= 1.3,
        "committed baseline's aggregate speedup fell below 1.3x: {speedup}"
    );
    for collective in ["allreduce", "bcast", "alltoall", "allgather"] {
        let rows: Vec<&str> = baseline_lines(json, "static_pick")
            .into_iter()
            .filter(|l| json_field(l, "collective").as_deref() == Some(collective))
            .collect();
        assert!(!rows.is_empty(), "baseline has no {collective} rows");
        let adversarial = rows
            .iter()
            .filter(|l| json_field(l, "adversarial").as_deref() == Some("true"))
            .count();
        assert!(
            adversarial >= 1,
            "baseline: no adversarial cell for {collective} — its static threshold never loses"
        );
        for l in &rows {
            let sp = json_field(l, "static_pick").unwrap();
            let best = json_field(l, "best").unwrap();
            let adv = json_field(l, "adversarial").as_deref() == Some("true");
            assert_eq!(adv, sp != best, "inconsistent adversarial flag: {l}");
        }
    }
    println!("baseline check passed: adversarial coverage + speedup >= 1.3x hold");
}

fn main() {
    let args = BenchArgs::parse("BENCH_tuning.json");
    if let Some(baseline) = &args.baseline {
        check_baseline(baseline);
    }

    // (collective, p, payload/block bytes, constructed-adversarial).
    // Designed cells sit on the wrong side of a static threshold for
    // this machine and form the aggregate mix; the control cells
    // confirm the model agrees with the thresholds where they are
    // right. (Near-crossover designed cells may still measure as ties
    // on a noisy run — the mix membership never moves with the noise.)
    let cells: Vec<(&'static str, usize, usize, bool)> = vec![
        // rabenseifner_min_bytes = 128 KiB: 64 KiB rides recursive
        // doubling, whose p*log(p) full-vector traffic loses to
        // Rabenseifner's fold-1/p-per-rank at every p (~2x at p = 16).
        ("allreduce", 4, 64 * 1024, true),
        ("allreduce", 8, 64 * 1024, true),
        ("allreduce", 16, 64 * 1024, true),
        ("allreduce", 4, 512 * 1024, false), // control: static already picks Rabenseifner
        // bcast_scatter_min_bytes = 256 KiB: the threshold fires
        // early — refcount-forwarding binomial still clearly wins at
        // 256 KiB; the crossover to van de Geijn sits near 512 KiB
        // (too close to a tie there to pin a cell).
        ("bcast", 4, 256 * 1024, true),
        ("bcast", 8, 256 * 1024, true),
        ("bcast", 4, 16 * 1024, false), // control: binomial, correctly
        // bruck_max_block_bytes = 1 KiB: 2-4 KiB blocks ride pairwise,
        // but in-process Bruck's log(p) rounds beat pairwise's p-1
        // mailbox rendezvous well past the cap.
        ("alltoall", 4, 2048, true),
        ("alltoall", 8, 2048, true),
        ("alltoall", 16, 2048, true),
        ("alltoall", 8, 4096, true),
        ("alltoall", 4, 16 * 1024, false), // control: pairwise, correctly
        // allgather_rd_max_bytes = 8 KiB routes small power-of-two
        // gathers to RD's packing copies (the ring wins in-process);
        // allgather_bruck_max_bytes does the same on non-power-of-two
        // communicators where RD/ring win.
        ("allgather", 4, 2 * 1024, true),
        ("allgather", 6, 4 * 1024, true),
        ("allgather", 6, 8 * 1024, true),
        ("allgather", 4, 64 * 1024, false), // control: ring, correctly
    ];
    let (warm, reps, cells) = if args.smoke {
        // The widest-gap adversarial cell(s) per threshold plus one
        // control per collective, so every assert still runs.
        let keep: &[(&str, usize, usize)] = &[
            ("allreduce", 4, 64 * 1024),
            ("allreduce", 8, 64 * 1024),
            ("allreduce", 16, 64 * 1024),
            ("allreduce", 4, 512 * 1024),
            ("bcast", 4, 256 * 1024),
            ("bcast", 4, 16 * 1024),
            ("alltoall", 4, 2048),
            ("alltoall", 8, 2048),
            ("alltoall", 16, 2048),
            ("alltoall", 4, 16 * 1024),
            ("allgather", 4, 2 * 1024),
            ("allgather", 6, 4 * 1024),
            ("allgather", 6, 8 * 1024),
            ("allgather", 4, 64 * 1024),
        ];
        let cells = cells
            .into_iter()
            .filter(|&(c, p, b, _)| keep.contains(&(c, p, b)))
            .collect::<Vec<_>>();
        (32usize, 7usize, cells)
    } else {
        (48usize, 15usize, cells)
    };

    let results: Vec<CellResult> = cells
        .iter()
        .map(|&(c, p, b, adv)| run_cell(c, p, b, adv, warm, reps))
        .collect();

    println!(
        "{:<10} {:>2} {:>9} {:<18} {:<18} {:<18} {:>11} {:>11} {:>11}",
        "cell", "p", "bytes", "static", "best", "model", "static us", "model us", "best us"
    );
    for r in &results {
        println!(
            "{:<10} {:>2} {:>9} {:<18} {:<18} {:<18} {:>11.1} {:>11.1} {:>11.1}{}",
            r.collective,
            r.ranks,
            r.payload_bytes,
            r.static_pick,
            r.best,
            r.model_pick,
            r.static_auto_wall_us,
            r.model_wall_us,
            r.best_wall_us,
            if r.adversarial {
                "  <- adversarial"
            } else {
                ""
            }
        );
    }

    // The adversarial mix is the *designed* cells — membership is fixed
    // by construction, so a near-crossover cell that measures as a tie
    // on a noisy run cannot move in or out of the aggregate. Control
    // cells guard the other direction (the model must not regress where
    // the thresholds are right).
    let static_total: f64 = results
        .iter()
        .filter(|r| r.designed)
        .map(|r| r.static_auto_wall_us)
        .sum();
    let model_total: f64 = results
        .iter()
        .filter(|r| r.designed)
        .map(|r| r.model_wall_us)
        .sum();
    let speedup = static_total / model_total;
    let control_static: f64 = results
        .iter()
        .filter(|r| !r.designed)
        .map(|r| r.static_auto_wall_us)
        .sum();
    let control_model: f64 = results
        .iter()
        .filter(|r| !r.designed)
        .map(|r| r.model_wall_us)
        .sum();
    println!(
        "\nadversarial mix steady-state wall: static-auto {static_total:.1} us, \
         model-auto {model_total:.1} us, speedup {speedup:.2}x"
    );
    println!(
        "control mix steady-state wall: static-auto {control_static:.1} us, \
         model-auto {control_model:.1} us"
    );

    let body: Vec<String> = results.iter().map(CellResult::to_json).collect();
    write_json(
        &args.out,
        "tuning",
        args.mode(),
        &[
            (
                "cost_model",
                "\"cluster(alpha=1.5us, beta=0.1ns/B)\"".to_string(),
            ),
            ("aggregate_speedup", format!("{speedup:.3}")),
        ],
        &body,
    );

    // --- the self-tuning contract --------------------------------------

    // 1. Every static threshold loses at least one of its designed
    //    cells on this run's measurements.
    for collective in ["allreduce", "bcast", "alltoall", "allgather"] {
        assert!(
            results
                .iter()
                .any(|r| r.collective == collective && r.designed && r.adversarial),
            "{collective}: static selection matched the measured best everywhere — \
             the matrix is not adversarial for its threshold"
        );
    }

    // 2. The model converges to the per-regime winner in every cell
    //    (tie tolerance: its pick must cost within 15% + 10 us of the
    //    measured best).
    for r in &results {
        let picked_wall = r
            .forced
            .iter()
            .find(|(n, _)| *n == r.model_pick)
            .map(|(_, w)| *w)
            .unwrap();
        assert!(
            picked_wall <= r.best_wall_us * 1.15 + 10.0,
            "{}@{} B p={}: model converged to {} ({picked_wall:.1} us) but {} measured {:.1} us",
            r.collective,
            r.payload_bytes,
            r.ranks,
            r.model_pick,
            r.best,
            r.best_wall_us
        );
    }

    // 3. Aggregate: the learned schedule beats the static thresholds by
    //    >= 1.3x on the adversarial mix, and never meaningfully regresses
    //    on the control cells where the thresholds are already right
    //    (tolerance covers re-exploration overhead + scheduler noise).
    assert!(
        speedup >= 1.3,
        "model-auto must be >= 1.3x faster than static-auto on the adversarial mix, got {speedup:.2}x"
    );
    assert!(
        control_model <= control_static * 1.35 + 25.0,
        "model-auto regressed on the control mix: {control_model:.1} us vs static {control_static:.1} us"
    );
    println!("self-tuning contract holds: every threshold loses a cell, model converges, >= 1.3x");
}
