//! Fault-injection / ULFM recovery benchmark (requires `--features
//! fault`). Three scenarios, each self-asserting:
//!
//! - **detection** — failure-detection latency, mark → last parked
//!   survivor woken. Every survivor parks in a blocking receive on the
//!   eventual victim; the victim records a timestamp and crashes
//!   ([`Comm::fail_here`]); each survivor records when its receive
//!   returned `ProcessFailed`. The row reports the median and worst
//!   over reps of the *slowest* survivor's wake delta — the quantity
//!   the wake-on-epoch protocol (see `kmp_mpi::ulfm`) bounds. The
//!   assertion is deliberately loose for CI containers (milliseconds);
//!   the real number is condvar-wakeup-scale (microseconds).
//! - **ft_bfs** — shrink-and-continue recovery time for the
//!   fault-tolerant BFS ([`kmp_apps::bfs::bfs_ft`]): a rank crashes at
//!   level 2, the survivors revoke → agree → shrink → re-partition →
//!   restart, and the stitched result must equal the sequential oracle
//!   of the survivors' partitioning. The row reports crash-to-finish
//!   recovery time next to the whole run's wall time.
//! - **hook_overhead** — the cost of the injection plane itself, in the
//!   `fault` build, on the hook-dense p2p ring (every message crosses
//!   `mailbox/push`, `mailbox/match` and the completion points). Runs
//!   interleave [`fault::set_enabled`] on/off under an *inert* plan
//!   (every rank armed with an unreachable crash count, so enabled
//!   hooks walk their arm lists and bail) and reduce by paired
//!   differencing of per-rank thread-CPU time — the `trace`
//!   methodology. The disabled-toggle path is one relaxed atomic load
//!   per hook, an upper bound on the default build, where the hooks are
//!   compiled out entirely (ZST twin module, pinned by the `fault`
//!   unit tests).
//!
//! Usage: `fault_experiment [--smoke] [--out PATH] [--check PATH]`;
//! writes `BENCH_fault.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use kmp_apps::bfs::{bfs_ft, bfs_sequential, UNDEF};
use kmp_bench::harness::{baseline_lines, json_field, write_json, BenchArgs};
use kmp_graphgen::{gnm, DistGraph};
use kmp_mpi::{fault, Comm, Config, FaultPlan, MpiError, RankOutcome, Universe};

/// CI-safe ceilings: a correct wake is microseconds and a recovery a
/// few milliseconds, but an oversubscribed container can preempt a
/// survivor for a scheduler quantum between the mark and its wake.
const DETECTION_CEILING_US: f64 = 250_000.0;
const RECOVERY_CEILING_MS: f64 = 10_000.0;

/// One detection rep: survivors park on the victim, the victim marks
/// and crashes, the slowest survivor's wake delta comes back in µs.
fn detection_rep(p: usize) -> f64 {
    let t0 = Instant::now();
    let mark = AtomicU64::new(0);
    let victim = p - 1;
    let out = Universe::run_with(Config::new(p), |comm: Comm| {
        if comm.rank() == victim {
            // Give the survivors time to actually park (a non-parked
            // survivor would measure the fast path instead).
            std::thread::sleep(std::time::Duration::from_millis(2));
            mark.store(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
            comm.fail_here();
        }
        let err = comm.recv_vec::<u8>(victim, 9).unwrap_err();
        let woke = t0.elapsed().as_nanos() as u64;
        assert!(
            matches!(err, MpiError::ProcessFailed { .. }),
            "survivor woke with the wrong error: {err:?}"
        );
        woke
    });
    let marked = mark.load(Ordering::SeqCst);
    assert!(marked > 0, "victim never marked");
    let mut slowest = 0u64;
    for (rank, o) in out.into_iter().enumerate() {
        match o {
            RankOutcome::Failed => assert_eq!(rank, victim),
            RankOutcome::Completed(woke) => slowest = slowest.max(woke),
            RankOutcome::Panicked(m) => panic!("rank {rank} panicked: {m}"),
        }
    }
    slowest.saturating_sub(marked) as f64 / 1e3
}

fn detection(p: usize, reps: usize) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..reps).map(|_| detection_rep(p)).collect();
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], samples[samples.len() - 1])
}

/// The ft_bfs scenario: crash at level 2, shrink-and-continue, verify
/// against the survivors' sequential oracle. Returns
/// `(recovery_ms, total_ms)`.
fn ft_bfs(p: usize, vertices: usize, edges: usize, seed: u64) -> (f64, f64) {
    let t0 = Instant::now();
    let crash = AtomicU64::new(0);
    let parts_after: Vec<DistGraph> = (0..p - 1)
        .map(|r| gnm(vertices, edges, seed, r, p - 1))
        .collect();
    let reference = bfs_sequential(&parts_after, 0);
    let out = Universe::run_with(Config::new(p), |comm: Comm| {
        let (dist, active) = bfs_ft(
            comm,
            0,
            |rank, size| gnm(vertices, edges, seed, rank, size),
            |level, c| {
                if level == 2 && c.size() == p && c.rank() == p - 1 {
                    crash.store(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
                    c.fail_here();
                }
            },
        )
        .expect("survivors recover");
        (
            t0.elapsed().as_nanos() as u64,
            dist,
            active.rank(),
            active.size(),
        )
    });
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    let crashed_at = crash.load(Ordering::SeqCst);
    assert!(crashed_at > 0, "the planned crash never fired");
    let mut got = vec![UNDEF; reference.len()];
    let mut slowest = 0u64;
    for (world_rank, o) in out.into_iter().enumerate() {
        match o {
            RankOutcome::Failed => assert_eq!(world_rank, p - 1),
            RankOutcome::Completed((finished, dist, new_rank, new_size)) => {
                assert_eq!(new_size, p - 1, "survivor {world_rank}");
                slowest = slowest.max(finished);
                let lo = parts_after[new_rank].vertex_ranges[new_rank];
                got[lo..lo + dist.len()].copy_from_slice(&dist);
            }
            RankOutcome::Panicked(m) => panic!("rank {world_rank} panicked: {m}"),
        }
    }
    assert_eq!(got, reference, "survivors diverged from the oracle");
    let recovery_ms = slowest.saturating_sub(crashed_at) as f64 / 1e6;
    (recovery_ms, total_ms)
}

/// Messages per rep per rank in the hook-overhead ring.
const RING_MSGS: usize = 48;
/// Payload sized so per-message copy work dominates and the hook cost
/// is measured against a realistic per-message bill (the `trace`
/// bench's reasoning).
const RING_PAYLOAD: usize = 128 * 1024;

/// A/B hook overhead on the p2p ring: one universe under an inert
/// plan, reps alternating the runtime toggle, per-rank thread-CPU
/// paired differencing. Returns summed CPU seconds `(disabled,
/// enabled)`.
fn hook_overhead(p: usize, reps: usize) -> (f64, f64) {
    // Inert: every rank armed, no arm can ever fire — enabled hooks do
    // their full counter-and-scan work on every injection point.
    let mut plan = FaultPlan::new();
    for r in 0..p {
        plan = plan.crash(r, u64::MAX);
    }
    let out = Universe::run_with_faults(Config::new(p), &plan, |comm: Comm| {
        let p = comm.size();
        let me = comm.rank();
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        let data = vec![me as u8; RING_PAYLOAD];
        let mut cpu = (Vec::new(), Vec::new()); // (disabled, enabled)
        for rep in 0..2 * (reps + 1) {
            // Alternate which half of a pair runs enabled so a monotone
            // CPU-speed drift cancels in the median pair-delta.
            let enabled = (rep % 2 == 1) ^ ((rep / 2) % 2 == 1);
            fault::set_enabled(enabled);
            comm.barrier().unwrap();
            let c0 = kmp_mpi::sys::thread_cpu_ns();
            let mut sink = 0u64;
            for m in 0..RING_MSGS {
                comm.send(&data, next, m as i32).unwrap();
                let (buf, _) = comm.recv_vec::<u8>(prev, m as i32).unwrap();
                sink = sink.wrapping_add(buf.iter().map(|&x| x as u64).sum::<u64>());
            }
            std::hint::black_box(sink);
            comm.barrier().unwrap();
            let spent = kmp_mpi::sys::thread_cpu_ns().saturating_sub(c0);
            if rep >= 2 {
                if enabled {
                    cpu.1.push(spent);
                } else {
                    cpu.0.push(spent);
                }
            }
        }
        fault::set_enabled(true);
        cpu
    });
    let per_rank: Vec<(Vec<u64>, Vec<u64>)> = out
        .into_iter()
        .map(|o| match o {
            RankOutcome::Completed(c) => c,
            o => panic!("hook-overhead rank did not complete: {o:?}"),
        })
        .collect();
    // Per-rank median pair-delta (robust to a preempted rep), summed
    // across ranks; the baseline is the summed per-rank median
    // disabled time.
    let mut delta = 0.0;
    let mut base = 0.0;
    for (dis, en) in &per_rank {
        let mut d: Vec<i64> = dis
            .iter()
            .zip(en)
            .map(|(&a, &b)| b as i64 - a as i64)
            .collect();
        d.sort_unstable();
        delta += d[d.len() / 2] as f64;
        let mut b0 = dis.clone();
        b0.sort_unstable();
        base += b0[b0.len() / 2] as f64;
    }
    (base / 1e9, (base + delta) / 1e9)
}

fn main() {
    let args = BenchArgs::parse("BENCH_fault.json");
    let smoke = args.smoke;
    let baseline = args.baseline.clone();

    let (p, det_reps, ab_reps, vertices, edges) = if smoke {
        (4usize, 7usize, 8usize, 200usize, 800usize)
    } else {
        (8usize, 15usize, 24usize, 600usize, 2400usize)
    };
    // The hook-overhead bound: ~0 means "inside paired-differencing
    // noise". The full run commits to the trace bench's 2%; smoke keeps
    // a looser bound for CI containers.
    let overhead_bound_pct = if smoke { 10.0 } else { 2.0 };

    let mut rows: Vec<String> = Vec::new();

    // --- detection latency ----------------------------------------------
    let (median_us, worst_us) = detection(p, det_reps);
    println!(
        "detection   p={p}: slowest-survivor wake, median {median_us:.1} us, worst {worst_us:.1} us"
    );
    rows.push(format!(
        "    {{\"scenario\": \"detection\", \"ranks\": {p}, \"reps\": {det_reps}, \
         \"median_max_wake_us\": {median_us:.1}, \"worst_max_wake_us\": {worst_us:.1}}}"
    ));
    assert!(
        median_us < DETECTION_CEILING_US,
        "failure-detection latency blew the ceiling: median slowest-survivor \
         wake {median_us:.1} us >= {DETECTION_CEILING_US} us"
    );

    // --- fault-tolerant BFS recovery -------------------------------------
    let (recovery_ms, total_ms) = ft_bfs(p, vertices, edges, 17);
    println!(
        "ft_bfs      p={p}: crash at level 2, recovery {recovery_ms:.2} ms, total {total_ms:.2} ms"
    );
    rows.push(format!(
        "    {{\"scenario\": \"ft_bfs\", \"ranks\": {p}, \"vertices\": {vertices}, \
         \"edges\": {edges}, \"recovery_ms\": {recovery_ms:.2}, \"total_ms\": {total_ms:.2}, \
         \"correct\": true}}"
    ));
    assert!(
        recovery_ms < RECOVERY_CEILING_MS,
        "shrink-and-continue recovery blew the ceiling: {recovery_ms:.2} ms"
    );

    // --- hook overhead ----------------------------------------------------
    let (disabled_s, enabled_s) = hook_overhead(p.min(4), ab_reps);
    let overhead_pct = (enabled_s - disabled_s) / disabled_s * 100.0;
    println!(
        "hook_overhead p={}: disabled {:.3} ms, enabled {:.3} ms CPU -> {overhead_pct:+.2}%",
        p.min(4),
        disabled_s * 1e3,
        enabled_s * 1e3
    );
    rows.push(format!(
        "    {{\"scenario\": \"hook_overhead\", \"ranks\": {}, \"reps\": {ab_reps}, \
         \"disabled_cpu_ms\": {:.3}, \"enabled_cpu_ms\": {:.3}, \"overhead_pct\": {overhead_pct:.2}}}",
        p.min(4),
        disabled_s * 1e3,
        enabled_s * 1e3
    ));
    assert!(
        overhead_pct <= overhead_bound_pct,
        "fault hooks cost {overhead_pct:.2}% CPU on the hook-dense ring \
         (bound {overhead_bound_pct}%)"
    );

    write_json(&args.out, "fault", args.mode(), &[], &rows);

    if let Some(baseline) = baseline {
        // The committed BENCH_fault.json must be self-asserting: a
        // full-run baseline has to satisfy the full-run bounds whatever
        // mode this process ran in.
        for line in baseline_lines(&baseline, "scenario") {
            match json_field(line, "scenario").as_deref() {
                Some("detection") => {
                    let med: f64 = json_field(line, "median_max_wake_us")
                        .and_then(|v| v.parse().ok())
                        .expect("detection row median");
                    assert!(
                        med < DETECTION_CEILING_US,
                        "committed detection median {med} us blew the ceiling"
                    );
                }
                Some("ft_bfs") => {
                    assert_eq!(
                        json_field(line, "correct").as_deref(),
                        Some("true"),
                        "committed ft_bfs row is not marked correct"
                    );
                    let rec: f64 = json_field(line, "recovery_ms")
                        .and_then(|v| v.parse().ok())
                        .expect("ft_bfs row recovery");
                    assert!(
                        rec < RECOVERY_CEILING_MS,
                        "committed ft_bfs recovery {rec} ms blew the ceiling"
                    );
                }
                Some("hook_overhead") => {
                    let pct: f64 = json_field(line, "overhead_pct")
                        .and_then(|v| v.parse().ok())
                        .expect("hook_overhead row pct");
                    assert!(
                        pct <= 2.0,
                        "committed hook overhead {pct}% exceeds the 2% bound"
                    );
                }
                _ => {}
            }
        }
        println!("baseline check passed (committed rows satisfy the full-run bounds)");
    }
}
