//! §IV-B label propagation experiment: LoC of the three abstraction
//! styles (paper: plain 154 / kamping 127 / custom layer 106) and the
//! paper's runtime-parity observation ("we observed the same running
//! times for all variants").

use kmp_apps::count_loc;
use kmp_apps::label_prop::*;
use kmp_bench::{arg_usize, measure_virtual_kamping_ms, measure_virtual_ms};
use kmp_graphgen::rgg2d;

fn main() {
    let p = arg_usize("--p", 8);
    let n_per_rank = arg_usize("--n-per-rank", 512);
    let rounds = arg_usize("--rounds", 5);
    let reps = arg_usize("--reps", 3);
    let n = n_per_rank * p;

    println!("LABEL PROPAGATION — §IV-B (dKaMinPar component)");
    let mpi = count_loc(SOURCE, "lp_mpi");
    let kamping = count_loc(SOURCE, "lp_kamping");
    let custom = count_loc(SOURCE, "lp_custom");
    println!("LoC: plain {mpi} (paper 154) | kamping {kamping} (paper 127) | custom layer {custom} (paper 106)");

    let radius = (16.0 / (std::f64::consts::PI * n as f64)).sqrt();
    let parts: Vec<_> = (0..p).map(|r| rgg2d(n, radius, 77, r, p)).collect();
    let parts_ref = &parts;

    let t_mpi = measure_virtual_ms(p, reps, move |comm| {
        let _ = label_prop_mpi(&parts_ref[comm.rank()], rounds, 64, comm).unwrap();
    });
    let t_kamping = measure_virtual_kamping_ms(p, reps, move |c| {
        let _ = label_prop_kamping(&parts_ref[c.rank()], rounds, 64, c).unwrap();
    });
    let t_custom = measure_virtual_kamping_ms(p, reps, move |c| {
        let _ = label_prop_custom_layer(&parts_ref[c.rank()], rounds, 64, c).unwrap();
    });
    println!("virtual time ({rounds} rounds, p={p}, {n_per_rank} vertices/rank):");
    println!("  plain {t_mpi:.3} ms | kamping {t_kamping:.3} ms | custom {t_custom:.3} ms");
    println!(
        "  kamping/plain: {:.3} (paper: ~1.0) | custom/plain: {:.3}",
        t_kamping / t_mpi,
        t_custom / t_mpi
    );
}
