//! Persistent-operations microbenchmark: MPI-4 `*_init` + `start`/`wait`
//! cycles (`kmp_mpi::persistent`) against regular per-call posting on
//! the steady-state shapes the subsystem was built for:
//!
//! - **ping_ring** — small-message point-to-point ring: every rank
//!   sends to its successor and receives from its predecessor, `iters`
//!   times. Persistent posting freezes both plans once (`send_init` /
//!   `recv_init` — validated envelope, standing completion
//!   registration) and re-arms with `start`/`wait`; regular posting
//!   pays `isend`/`irecv` request construction, matching-entry setup
//!   and waiter registration on every message.
//! - **allreduce** — repeated small allreduce, `COLL_BATCH` per cycle.
//!   Persistent posting freezes `COLL_BATCH` independent plans (each
//!   with its own internal tags, algorithm selection and engine, fixed
//!   at init) and re-arms the whole batch with `start_all` — the frozen
//!   tags are what make the in-flight batch safe, which is the MPI-4
//!   rationale for persistent collectives. Regular posting issues the
//!   same `COLL_BATCH` collectives the conventional way: back-to-back
//!   blocking calls, each re-running selection, tag allocation and
//!   engine construction.
//! - **alltoallv** — repeated small personalized exchange with frozen
//!   counts, batched the same way: the per-peer byte ranges are carved
//!   out once per plan; regular posting re-derives them (and
//!   re-allocates the engine) on every call.
//!
//! Each scenario runs both postings at p in {4, 8, 16} and reports
//! steady-state ops/sec (one op = one message cycle for the ring, one
//! collective otherwise). The binary enforces the PR's acceptance bound
//! (>= 1.5x ops/sec for persistent posting at p = 8 on the
//! small-message workloads) and, with `--check PATH`, asserts the
//! persistent rows have not collapsed relative to a committed baseline
//! JSON (generous tolerance for machine variance).
//!
//! Usage: `persistent_experiment [--smoke] [--out PATH] [--check PATH]`;
//! writes `BENCH_persistent.json`.

use kmp_bench::harness::{baseline_lines, json_field, write_json, BenchArgs};
use kmp_mpi::{op, Universe};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Posting {
    /// `*_init` once, `start`/`wait` per cycle.
    Persistent,
    /// Fresh requests (or blocking collective calls) per cycle.
    Regular,
}

impl Posting {
    fn name(self) -> &'static str {
        match self {
            Posting::Persistent => "persistent",
            Posting::Regular => "regular",
        }
    }
}

const WARMUP: usize = 16;

/// Runs `iters` timed cycles of `cycle` after `WARMUP` untimed ones,
/// with barriers fencing the timed region so every rank measures the
/// same steady state. Returns the slowest rank's elapsed seconds.
fn timed_loop(
    comm: &kmp_mpi::Comm,
    iters: usize,
    mut cycle: impl FnMut() -> kmp_mpi::Result<()>,
) -> f64 {
    for _ in 0..WARMUP {
        cycle().unwrap();
    }
    comm.barrier().unwrap();
    let started = std::time::Instant::now();
    for _ in 0..iters {
        cycle().unwrap();
    }
    comm.barrier().unwrap();
    started.elapsed().as_secs_f64()
}

/// How many messages each ring cycle posts per rank: production steady
/// state is the same op posted over and over, so each cycle re-arms a
/// whole batch — per-call setup (request construction, matching-entry
/// and waiter churn) scales with the batch while the cross-thread
/// wakeup is paid once per cycle.
const RING_BATCH: usize = 64;

/// Collectives in flight per cycle (see the module doc): persistent
/// posting starts the whole batch of frozen plans together; regular
/// posting runs the same count of conventional blocking calls.
const COLL_BATCH: usize = 4;

/// Small-message send/recv ring, `RING_BATCH` messages per rank per
/// cycle. One op = one message (a send with its matching receive).
fn ping_ring(posting: Posting, p: usize, iters: usize, elems: usize) -> (usize, f64) {
    let secs = Universe::run(p, move |comm| {
        let r = comm.rank();
        let dest = (r + 1) % p;
        let src = (r + p - 1) % p;
        let data = vec![r as u64; elems];
        match posting {
            Posting::Persistent => {
                // The whole batch is frozen once: one plan per slot,
                // distinguished by tag.
                let mut sends: Vec<_> = (0..RING_BATCH)
                    .map(|k| comm.send_init(&data, dest, k as i32).unwrap())
                    .collect();
                let mut recvs: Vec<_> = (0..RING_BATCH)
                    .map(|k| comm.recv_init(src, k as i32).unwrap())
                    .collect();
                timed_loop(&comm, iters, || {
                    kmp_mpi::start_all(&mut sends)?;
                    kmp_mpi::start_all(&mut recvs)?;
                    for s in &mut sends {
                        s.wait()?;
                    }
                    for rv in &mut recvs {
                        rv.wait()?;
                    }
                    Ok(())
                })
            }
            Posting::Regular => timed_loop(&comm, iters, || {
                let mut reqs = kmp_mpi::RequestSet::new();
                for k in 0..RING_BATCH {
                    reqs.push(comm.isend(&data, dest, k as i32)?);
                }
                for k in 0..RING_BATCH {
                    reqs.push(comm.irecv(src, k as i32));
                }
                reqs.wait_all()?;
                Ok(())
            }),
        }
    })
    .into_iter()
    .fold(0f64, f64::max);
    (iters * p * RING_BATCH, secs)
}

/// Repeated small allreduce, `COLL_BATCH` collectives per cycle. One
/// op = one collective.
fn allreduce(posting: Posting, p: usize, iters: usize, elems: usize) -> (usize, f64) {
    let secs = Universe::run(p, move |comm| {
        let data = vec![comm.rank() as u64 + 1; elems];
        match posting {
            Posting::Persistent => {
                let mut batch: Vec<_> = (0..COLL_BATCH)
                    .map(|_| comm.allreduce_init(&data, op::Sum).unwrap())
                    .collect();
                timed_loop(&comm, iters, || {
                    for red in &mut batch {
                        red.start()?;
                    }
                    for red in &mut batch {
                        red.wait()?;
                    }
                    Ok(())
                })
            }
            Posting::Regular => timed_loop(&comm, iters, || {
                for _ in 0..COLL_BATCH {
                    comm.allreduce_vec(&data, op::Sum)?;
                }
                Ok(())
            }),
        }
    })
    .into_iter()
    .fold(0f64, f64::max);
    (iters * COLL_BATCH, secs)
}

/// Repeated small personalized exchange with frozen per-peer counts,
/// `COLL_BATCH` collectives per cycle. One op = one collective.
fn alltoallv(posting: Posting, p: usize, iters: usize, elems: usize) -> (usize, f64) {
    let secs = Universe::run(p, move |comm| {
        let data = vec![comm.rank() as u64; elems * p];
        let counts = vec![elems; p];
        let displs: Vec<usize> = (0..p).map(|r| r * elems).collect();
        match posting {
            Posting::Persistent => {
                let mut batch: Vec<_> = (0..COLL_BATCH)
                    .map(|_| comm.alltoallv_init(&data, &counts).unwrap())
                    .collect();
                timed_loop(&comm, iters, || {
                    for a2a in &mut batch {
                        a2a.start()?;
                    }
                    for a2a in &mut batch {
                        a2a.wait()?;
                    }
                    Ok(())
                })
            }
            Posting::Regular => {
                let mut recv = vec![0u64; elems * p];
                timed_loop(&comm, iters, || {
                    for _ in 0..COLL_BATCH {
                        comm.alltoallv_into(&data, &counts, &displs, &mut recv, &counts, &displs)?;
                    }
                    Ok(())
                })
            }
        }
    })
    .into_iter()
    .fold(0f64, f64::max);
    (iters * COLL_BATCH, secs)
}

#[derive(Clone, Debug)]
struct Row {
    scenario: &'static str,
    posting: &'static str,
    ranks: usize,
    ops: usize,
    elapsed_ms: f64,
    ops_per_sec: f64,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "    {{\"scenario\": \"{}\", \"posting\": \"{}\", \"ranks\": {}, \
             \"ops\": {}, \"elapsed_ms\": {:.3}, \"ops_per_sec\": {:.0}}}",
            self.scenario, self.posting, self.ranks, self.ops, self.elapsed_ms, self.ops_per_sec
        )
    }
}

const SCENARIOS: [&str; 3] = ["ping_ring", "allreduce", "alltoallv"];

fn run_scenario(
    scenario: &'static str,
    posting: Posting,
    p: usize,
    iters: usize,
    elems: usize,
    reps: usize,
    rows: &mut Vec<Row>,
) {
    let f = match scenario {
        "ping_ring" => ping_ring,
        "allreduce" => allreduce,
        "alltoallv" => alltoallv,
        other => panic!("unknown scenario {other}"),
    };
    // Warm-up run, then best-of-`reps`: on an oversubscribed host a
    // single bad scheduling window dwarfs per-op deltas, so the
    // steady-state rate is the *fastest* rep (standard best-of-N), not
    // the mean — both postings get the same treatment.
    let _ = f(posting, p, iters, elems);
    let mut best: Option<(usize, f64)> = None;
    for _ in 0..reps {
        let (ops, secs) = f(posting, p, iters, elems);
        if best.is_none_or(|(bo, bs)| (ops as f64) / secs > bo as f64 / bs) {
            best = Some((ops, secs));
        }
    }
    let (ops, secs) = best.expect("at least one rep");
    rows.push(Row {
        scenario,
        posting: posting.name(),
        ranks: p,
        ops,
        elapsed_ms: secs * 1e3,
        ops_per_sec: ops as f64 / secs,
    });
}

fn rate(rows: &[Row], scenario: &str, posting: &str, p: usize) -> f64 {
    rows.iter()
        .find(|r| r.scenario == scenario && r.posting == posting && r.ranks == p)
        .unwrap_or_else(|| panic!("missing row {scenario}/{posting}/p{p}"))
        .ops_per_sec
}

/// Typed rows from a committed baseline, via the shared line-based
/// extraction (`kmp_bench::harness`).
fn baseline_rates(json: &str) -> Vec<(String, String, usize, f64)> {
    baseline_lines(json, "scenario")
        .into_iter()
        .filter_map(|l| {
            Some((
                json_field(l, "scenario")?,
                json_field(l, "posting")?,
                json_field(l, "ranks")?.parse().ok()?,
                json_field(l, "ops_per_sec")?.parse().ok()?,
            ))
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse("BENCH_persistent.json");
    let smoke = args.smoke;
    let baseline = args.baseline.as_deref().map(baseline_rates);

    let ps = [4usize, 8, 16];
    // Small payloads: 64 u64 (512 bytes) per message / contribution —
    // comfortably inside the eager/small-message regime, where per-call
    // setup (request construction, payload staging, waiter churn)
    // dominates transport cost.
    let elems = 64usize;
    let (ring_iters, coll_iters, reps) = if smoke { (60, 80, 3) } else { (250, 350, 5) };

    let mut rows: Vec<Row> = Vec::new();
    for &p in &ps {
        for scenario in SCENARIOS {
            let iters = if scenario == "ping_ring" {
                ring_iters
            } else {
                coll_iters
            };
            for posting in [Posting::Persistent, Posting::Regular] {
                run_scenario(scenario, posting, p, iters, elems, reps, &mut rows);
            }
        }
    }

    println!(
        "{:<12} {:<11} {:>3} {:>9} {:>11} {:>12}",
        "scenario", "posting", "p", "ops", "elapsed ms", "ops/sec"
    );
    for r in &rows {
        println!(
            "{:<12} {:<11} {:>3} {:>9} {:>11.2} {:>12.0}",
            r.scenario, r.posting, r.ranks, r.ops, r.elapsed_ms, r.ops_per_sec
        );
    }

    let body: Vec<String> = rows.iter().map(Row::to_json).collect();
    write_json(
        &args.out,
        "persistent",
        args.mode(),
        &[("payload_elems", elems.to_string())],
        &body,
    );

    // --- acceptance: the frozen plan's win is pinned, not asserted ------

    for &p in &ps {
        for scenario in SCENARIOS {
            let pers = rate(&rows, scenario, "persistent", p);
            let reg = rate(&rows, scenario, "regular", p);
            println!(
                "{scenario} p={p}: persistent/regular ops rate = {:.2}x",
                pers / reg
            );
            // Sanity floor everywhere: replaying a frozen plan must
            // never be meaningfully slower than re-planning per call.
            assert!(
                pers * 1.25 >= reg,
                "{scenario} p={p}: persistent posting fell past the sanity floor \
                 (persistent {pers:.0} vs regular {reg:.0} ops/sec)"
            );
        }
    }
    // The PR's acceptance bound: >= 1.5x steady-state ops/sec at p = 8
    // on the small-message workloads.
    for scenario in SCENARIOS {
        let pers = rate(&rows, scenario, "persistent", 8);
        let reg = rate(&rows, scenario, "regular", 8);
        assert!(
            pers >= reg * 1.5,
            "the acceptance bound — >= 1.5x steady-state ops/sec for \
             persistent posting at p = 8 — failed for {scenario}: \
             persistent {pers:.0} vs regular {reg:.0} ops/sec"
        );
    }
    println!("persistent contract holds: >= 1.5x ops/sec at p = 8 on all scenarios");

    if let Some(baseline) = baseline {
        // CI drift guard: persistent rows must stay within a generous
        // factor of the committed full-run baseline (catches
        // order-of-magnitude regressions — a thawed plan re-running
        // setup per cycle — not percent noise).
        const TOLERANCE: f64 = 4.0;
        for (scenario, posting, p, base_rate) in baseline {
            if posting != "persistent" || !ps.contains(&p) {
                continue;
            }
            let now = rate(&rows, &scenario, "persistent", p);
            assert!(
                now * TOLERANCE >= base_rate,
                "{scenario} p={p}: persistent rate {now:.0} ops/sec fell below \
                 1/{TOLERANCE} x committed baseline ({base_rate:.0} ops/sec)"
            );
        }
        println!("baseline check passed (>= 1/{TOLERANCE:.0} x committed rates)");
    }
}
