//! Regenerates **Table I** of the paper: lines of code for the vector
//! allgather, sample sort and BFS examples across the five bindings.
//!
//! Counts the marked regions of the per-binding implementations in
//! `kmp-apps` (identically formatted, shared helpers factored out, as in
//! the paper's artifacts).

use kmp_apps::{allgather_example, bfs, count_loc, sample_sort};

fn main() {
    let rows: [(&str, &str, [usize; 5]); 3] = [
        (
            "vector allgather",
            "allgather",
            [14, 5, 5, 12, 1], // paper: MPI, Boost, RWTH, MPL, KaMPIng
        ),
        ("sample sort", "sort", [32, 30, 21, 37, 16]),
        ("BFS", "bfs", [46, 42, 32, 49, 22]),
    ];
    let sources = [
        ("allgather", allgather_example::SOURCE),
        ("sort", sample_sort::SOURCE),
        ("bfs", bfs::SOURCE),
    ];
    let src = |key: &str| sources.iter().find(|(k, _)| *k == key).unwrap().1;

    println!("TABLE I — LINES OF CODE (measured on this reproduction vs paper)");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "", "MPI", "Boost.MPI", "RWTH-MPI", "MPL", "KaMPIng"
    );
    for (label, key, paper) in rows {
        let s = src(key);
        let measured = [
            count_loc(s, &format!("{key}_mpi")),
            count_loc(s, &format!("{key}_boost")),
            count_loc(s, &format!("{key}_rwth")),
            count_loc(s, &format!("{key}_mpl")),
            count_loc(s, &format!("{key}_kamping")),
        ];
        print!("{label:<18}");
        for (m, p) in measured.iter().zip(paper) {
            print!(" {:>7} ({p:>2})", m);
        }
        println!();
    }
    println!();
    println!("(paper values in parentheses; see EXPERIMENTS.md for discussion)");
}
