//! # kmp-bench — harnesses regenerating the paper's tables and figures
//!
//! Binaries (one per artifact; see DESIGN.md's experiment index):
//!
//! | binary                    | paper artifact                        |
//! |---------------------------|---------------------------------------|
//! | `table1_loc`              | Table I (lines of code)               |
//! | `fig8_sample_sort`        | Fig. 8 (sample sort weak scaling)     |
//! | `fig10_bfs`               | Fig. 10 (BFS exchange strategies)     |
//! | `sa_experiment`           | §IV-A suffix array LoC + parity       |
//! | `label_prop_experiment`   | §IV-B label propagation LoC + parity  |
//! | `raxml_proxy`             | §IV-C RAxML-NG integration parity     |
//! | `repro_reduce_experiment` | §V-C / Fig. 13 reproducible reduce    |
//!
//! Criterion benches (`cargo bench -p kmp-bench`) back the paper's
//! central "(near) zero overhead" claim and the §III-D4 serialization /
//! datatype ablations.
//!
//! Scaling experiments report **virtual time** (see `kmp_mpi::clock`):
//! measured thread-CPU time for compute plus an alpha-beta model for
//! messages, with the maximum over ranks as the figure of merit — the
//! substitution for the paper's 256-node testbed documented in DESIGN.md.

pub mod harness;

use kmp_mpi::{Comm, Config, CostModel, Universe};

/// Runs `f` on `p` ranks `reps` times under the cluster cost model and
/// returns the median over repetitions of the maximum virtual time over
/// ranks, in milliseconds.
pub fn measure_virtual_ms<F>(p: usize, reps: usize, f: F) -> f64
where
    F: Fn(&Comm) + Sync,
{
    let per_rank: Vec<Vec<u64>> =
        Universe::run_with(Config::new(p).cost(CostModel::cluster()), |comm| {
            let mut times = Vec::with_capacity(reps);
            for _ in 0..reps {
                comm.barrier().expect("barrier");
                comm.clock_reset();
                f(&comm);
                times.push(comm.clock_now_ns());
            }
            times
        })
        .into_iter()
        .map(|o| o.unwrap())
        .collect();

    let mut maxima: Vec<u64> = (0..reps)
        .map(|rep| per_rank.iter().map(|t| t[rep]).max().unwrap_or(0))
        .collect();
    maxima.sort_unstable();
    maxima[maxima.len() / 2] as f64 / 1e6
}

/// Like [`measure_virtual_ms`], but hands the closure a kamping
/// [`Communicator`](kamping::Communicator): the wrap happens once per
/// rank *outside* the timed region, exactly as an application would hold
/// its communicator across iterations.
pub fn measure_virtual_kamping_ms<F>(p: usize, reps: usize, f: F) -> f64
where
    F: Fn(&kamping::Communicator) + Sync,
{
    let per_rank: Vec<Vec<u64>> =
        Universe::run_with(Config::new(p).cost(CostModel::cluster()), |comm| {
            let kc = kamping::Communicator::new(comm);
            let mut times = Vec::with_capacity(reps);
            for _ in 0..reps {
                kc.barrier().expect("barrier");
                kc.raw().clock_reset();
                f(&kc);
                times.push(kc.raw().clock_now_ns());
            }
            times
        })
        .into_iter()
        .map(|o| o.unwrap())
        .collect();

    let mut maxima: Vec<u64> = (0..reps)
        .map(|rep| per_rank.iter().map(|t| t[rep]).max().unwrap_or(0))
        .collect();
    maxima.sort_unstable();
    maxima[maxima.len() / 2] as f64 / 1e6
}

/// Formats one scaling row: `label, p, time` aligned for terminal tables.
pub fn row(label: &str, p: usize, ms: f64) -> String {
    format!("{label:<16} p={p:<4} {ms:>12.3} ms")
}

/// The rank counts used by the weak-scaling harnesses (powers of two, as
/// in the paper's figures, capped for a laptop-class host).
pub fn scaling_ranks(max_p: usize) -> Vec<usize> {
    let mut ps = Vec::new();
    let mut p = 1;
    while p <= max_p {
        ps.push(p);
        p *= 2;
    }
    ps
}

/// Median wall-clock nanoseconds of `f` over `reps` single-threaded
/// runs — the calibration source for explicitly charged compute (the
/// host's thread-CPU clock ticks at ~10 ms and cannot be used; see
/// `CostModel::cluster`).
pub fn calibrate_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Parses `--max-p N` style overrides from argv (tiny hand-rolled flags
/// so the binaries stay dependency-free).
pub fn arg_usize(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next() {
                return v.parse().unwrap_or(default);
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_ranks_powers_of_two() {
        assert_eq!(scaling_ranks(8), vec![1, 2, 4, 8]);
        assert_eq!(scaling_ranks(1), vec![1]);
        assert_eq!(scaling_ranks(6), vec![1, 2, 4]);
    }

    #[test]
    fn measure_virtual_returns_positive_time_for_communication() {
        let ms = measure_virtual_ms(4, 3, |comm| {
            let mine = vec![comm.rank() as u64; 100];
            let _ = comm.allgather_vec(&mine).unwrap();
        });
        assert!(ms > 0.0, "communication must cost virtual time, got {ms}");
    }

    #[test]
    fn dense_exchange_costs_grow_with_p() {
        // Sanity of the cost model: an alltoallv over more ranks costs
        // more startups.
        let small = measure_virtual_ms(2, 3, |comm| {
            let counts = vec![1usize; comm.size()];
            let data = vec![0u64; comm.size()];
            let mut recv = vec![0u64; comm.size()];
            let displs: Vec<usize> = (0..comm.size()).collect();
            comm.alltoallv_into(&data, &counts, &displs, &mut recv, &counts, &displs)
                .unwrap();
        });
        let large = measure_virtual_ms(16, 3, |comm| {
            let counts = vec![1usize; comm.size()];
            let data = vec![0u64; comm.size()];
            let mut recv = vec![0u64; comm.size()];
            let displs: Vec<usize> = (0..comm.size()).collect();
            comm.alltoallv_into(&data, &counts, &displs, &mut recv, &counts, &displs)
                .unwrap();
        });
        assert!(
            large > small,
            "16-rank dense exchange ({large} ms) should cost more than 2-rank ({small} ms)"
        );
    }

    #[test]
    fn arg_parsing_default() {
        assert_eq!(arg_usize("--definitely-absent", 7), 7);
    }
}
