//! Shared harness for the `BENCH_*.json` experiment binaries.
//!
//! Every experiment binary follows the same conventions:
//!
//! - flags: `[--smoke] [--out PATH] [--check PATH]` — `--smoke` runs a
//!   reduced matrix for CI, `--out` overrides the JSON destination, and
//!   `--check` reads a committed baseline to assert against;
//! - output: a JSON envelope `{"experiment": ..., "mode": ...,
//!   <extras>, "rows": [...]}` with **one row per line**, so baselines
//!   can be compared with line-based field extraction instead of a JSON
//!   dependency (the workspace has none);
//! - baseline comparison: rows are located by a marker key and fields
//!   pulled out with [`json_field`].
//!
//! The binaries keep their scenario logic and acceptance bounds; this
//! module owns the argument/IO boilerplate they used to copy-paste.

/// Parsed command-line arguments for an experiment binary.
pub struct BenchArgs {
    /// `--smoke`: reduced matrix for CI.
    pub smoke: bool,
    /// `--out PATH` (or the binary's default).
    pub out: String,
    /// Contents of the `--check PATH` baseline file, read eagerly —
    /// `--check` and `--out` may name the same file, so the baseline
    /// must be captured before the run overwrites it.
    pub baseline: Option<String>,
}

impl BenchArgs {
    /// Parses `std::env::args()`; `default_out` names the JSON file
    /// written when `--out` is absent.
    pub fn parse(default_out: &str) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let smoke = args.iter().any(|a| a == "--smoke");
        let flag = |name: &str| -> Option<String> {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1).cloned())
        };
        let out = flag("--out").unwrap_or_else(|| default_out.to_string());
        let baseline = flag("--check")
            .map(|p| std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("--check {p}: {e}")));
        Self {
            smoke,
            out,
            baseline,
        }
    }

    /// The `"mode"` envelope value.
    pub fn mode(&self) -> &'static str {
        if self.smoke {
            "smoke"
        } else {
            "full"
        }
    }
}

/// Extracts `"key": value` from a one-row-per-line JSON row; string
/// values come back unquoted. Works on the format [`write_json`]
/// produces — not a general JSON parser.
pub fn json_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

/// Returns the baseline's row lines: those containing the marker key
/// (e.g. `"scenario"`), one JSON object per line.
pub fn baseline_lines<'a>(json: &'a str, marker_key: &str) -> Vec<&'a str> {
    let pat = format!("\"{marker_key}\"");
    json.lines().filter(|l| l.contains(&pat)).collect()
}

/// Writes the standard JSON envelope: `experiment` and `mode` headers,
/// any `extra` top-level fields (values emitted verbatim — quote
/// strings yourself), then `rows` one per line. Prints the destination.
pub fn write_json(
    out: &str,
    experiment: &str,
    mode: &str,
    extra: &[(&str, String)],
    rows: &[String],
) {
    let mut head = format!("{{\n  \"experiment\": \"{experiment}\",\n  \"mode\": \"{mode}\"");
    for (k, v) in extra {
        head.push_str(&format!(",\n  \"{k}\": {v}"));
    }
    let json = format!("{head},\n  \"rows\": [\n{}\n  ]\n}}\n", rows.join(",\n"));
    std::fs::write(out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_handles_strings_and_numbers() {
        let line = r#"    {"scenario": "fanin", "ranks": 8, "rate": 123.5}"#;
        assert_eq!(json_field(line, "scenario").as_deref(), Some("fanin"));
        assert_eq!(json_field(line, "ranks").as_deref(), Some("8"));
        assert_eq!(json_field(line, "rate").as_deref(), Some("123.5"));
        assert_eq!(json_field(line, "missing"), None);
    }

    #[test]
    fn baseline_lines_filters_rows() {
        let json = "{\n  \"experiment\": \"x\",\n  \"rows\": [\n    \
                    {\"scenario\": \"a\"},\n    {\"scenario\": \"b\"}\n  ]\n}\n";
        assert_eq!(baseline_lines(json, "scenario").len(), 2);
        assert_eq!(baseline_lines(json, "nope").len(), 0);
    }
}
