//! The "(near) zero overhead" micro-benchmarks (§I, §III of the paper).
//!
//! For each wrapped operation, the kamping call (with its compile-time
//! parameter machinery) is measured against the hand-rolled substrate
//! sequence an expert would write. Both run the same number of inner
//! iterations inside one universe; rank 0's wall time is the sample. Any
//! kamping overhead would appear as a gap between the paired curves.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use kamping::prelude::*;
use kmp_mpi::{Comm, Universe};

const P: usize = 4;
const N: usize = 1024;

/// Times `iters` repetitions of `f` inside one universe (rank 0's wall
/// clock; all ranks execute the same loop).
fn time_universe<F>(iters: u64, f: F) -> Duration
where
    F: Fn(&Comm, u64) + Sync,
{
    let outs = Universe::run(P, |comm| {
        comm.barrier().unwrap();
        let t = Instant::now();
        f(&comm, iters);
        t.elapsed()
    });
    outs.into_iter().next().unwrap()
}

fn bench_allgatherv(c: &mut Criterion) {
    let mut g = c.benchmark_group("allgatherv");
    g.sample_size(10);

    g.bench_function("kamping", |b| {
        b.iter_custom(|iters| {
            time_universe(iters, |comm, iters| {
                let kc = Communicator::new(comm.dup().unwrap());
                let v = vec![kc.rank() as u64; N];
                for _ in 0..iters {
                    let out: Vec<u64> = kc.allgatherv(send_buf(&v)).unwrap();
                    std::hint::black_box(out);
                }
            })
        })
    });

    g.bench_function("handrolled", |b| {
        b.iter_custom(|iters| {
            time_universe(iters, |comm, iters| {
                let v = vec![comm.rank() as u64; N];
                for _ in 0..iters {
                    // The Fig. 2 boilerplate.
                    let mut rc = vec![0usize; comm.size()];
                    rc[comm.rank()] = v.len();
                    comm.allgather_in_place(&mut rc).unwrap();
                    let rd = kmp_mpi::collectives::displacements_from_counts(&rc);
                    let mut out = kmp_mpi::plain::zeroed_vec::<u64>(rc.iter().sum());
                    comm.allgatherv_into(&v, &mut out, &rc, &rd).unwrap();
                    std::hint::black_box(out);
                }
            })
        })
    });
    g.finish();
}

fn bench_allgatherv_counts_known(c: &mut Criterion) {
    // The purest wrapper-overhead probe: counts provided, storage
    // preallocated — kamping must add nothing but the parameter folding.
    let mut g = c.benchmark_group("allgatherv_counts_known");
    g.sample_size(10);

    g.bench_function("kamping", |b| {
        b.iter_custom(|iters| {
            time_universe(iters, |comm, iters| {
                let kc = Communicator::new(comm.dup().unwrap());
                let v = vec![kc.rank() as u64; N];
                let counts = vec![N; kc.size()];
                let mut out = kmp_mpi::plain::zeroed_vec::<u64>(N * kc.size());
                for _ in 0..iters {
                    kc.allgatherv((send_buf(&v), recv_counts(&counts), recv_buf(&mut out)))
                        .unwrap();
                    std::hint::black_box(&out);
                }
            })
        })
    });

    g.bench_function("handrolled", |b| {
        b.iter_custom(|iters| {
            time_universe(iters, |comm, iters| {
                let v = vec![comm.rank() as u64; N];
                let counts = vec![N; comm.size()];
                let displs = kmp_mpi::collectives::displacements_from_counts(&counts);
                let mut out = kmp_mpi::plain::zeroed_vec::<u64>(N * comm.size());
                for _ in 0..iters {
                    comm.allgatherv_into(&v, &mut out, &counts, &displs)
                        .unwrap();
                    std::hint::black_box(&out);
                }
            })
        })
    });
    g.finish();
}

fn bench_alltoallv(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoallv");
    g.sample_size(10);

    g.bench_function("kamping", |b| {
        b.iter_custom(|iters| {
            time_universe(iters, |comm, iters| {
                let kc = Communicator::new(comm.dup().unwrap());
                let counts = vec![N / P; P];
                let data = vec![kc.rank() as u64; N];
                for _ in 0..iters {
                    let out: Vec<u64> = kc
                        .alltoallv((send_buf(&data), send_counts(&counts)))
                        .unwrap();
                    std::hint::black_box(out);
                }
            })
        })
    });

    g.bench_function("handrolled", |b| {
        b.iter_custom(|iters| {
            time_universe(iters, |comm, iters| {
                let counts = vec![N / P; P];
                let data = vec![comm.rank() as u64; N];
                for _ in 0..iters {
                    let sd = kmp_mpi::collectives::displacements_from_counts(&counts);
                    let mut rcounts = vec![0usize; P];
                    comm.alltoall_into(&counts, &mut rcounts).unwrap();
                    let rd = kmp_mpi::collectives::displacements_from_counts(&rcounts);
                    let mut out = kmp_mpi::plain::zeroed_vec::<u64>(rcounts.iter().sum());
                    comm.alltoallv_into(&data, &counts, &sd, &mut out, &rcounts, &rd)
                        .unwrap();
                    std::hint::black_box(out);
                }
            })
        })
    });
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce");
    g.sample_size(10);

    g.bench_function("kamping", |b| {
        b.iter_custom(|iters| {
            time_universe(iters, |comm, iters| {
                let kc = Communicator::new(comm.dup().unwrap());
                let v = vec![1.5f64; N];
                let mut out = vec![0.0f64; N];
                for _ in 0..iters {
                    kc.allreduce((send_buf(&v), op(ops::Sum), recv_buf(&mut out)))
                        .unwrap();
                    std::hint::black_box(&out);
                }
            })
        })
    });

    g.bench_function("handrolled", |b| {
        b.iter_custom(|iters| {
            time_universe(iters, |comm, iters| {
                let v = vec![1.5f64; N];
                let mut out = vec![0.0f64; N];
                for _ in 0..iters {
                    comm.allreduce_into(&v, &mut out, kmp_mpi::op::Sum).unwrap();
                    std::hint::black_box(&out);
                }
            })
        })
    });
    g.finish();
}

fn bench_p2p_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("isend_irecv_pingpong");
    g.sample_size(10);

    g.bench_function("kamping", |b| {
        b.iter_custom(|iters| {
            time_universe(iters, |comm, iters| {
                let kc = Communicator::new(comm.dup().unwrap());
                if kc.rank() == 0 {
                    for _ in 0..iters {
                        let payload = vec![7u64; N];
                        let r = kc.isend((send_buf(payload), destination(1))).unwrap();
                        let _payload = r.wait().unwrap();
                        let back: Vec<u64> = kc.recv((source(1),)).unwrap();
                        std::hint::black_box(back);
                    }
                } else if kc.rank() == 1 {
                    for _ in 0..iters {
                        let data: Vec<u64> = kc.recv((source(0),)).unwrap();
                        kc.send((send_buf(&data), destination(0))).unwrap();
                    }
                }
            })
        })
    });

    g.bench_function("handrolled", |b| {
        b.iter_custom(|iters| {
            time_universe(iters, |comm, iters| {
                if comm.rank() == 0 {
                    for _ in 0..iters {
                        let payload = vec![7u64; N];
                        let r = comm.isend(&payload, 1, 0).unwrap();
                        r.wait().unwrap();
                        let (back, _) = comm.recv_vec::<u64>(1, 0).unwrap();
                        std::hint::black_box(back);
                    }
                } else if comm.rank() == 1 {
                    for _ in 0..iters {
                        let (data, _) = comm.recv_vec::<u64>(0, 0).unwrap();
                        comm.send(&data, 0, 0).unwrap();
                    }
                }
            })
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_allgatherv,
    bench_allgatherv_counts_known,
    bench_alltoallv,
    bench_allreduce,
    bench_p2p_pingpong
);
criterion_main!(benches);
