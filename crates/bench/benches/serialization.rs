//! §III-D4 ablations: serialization and datatype-layout costs.
//!
//! The paper's preliminary experiments motivate two design defaults:
//! 1. serialization "incurs a non-negligible overhead" and must be
//!    explicit — measured here as serialized vs plain transfer of the
//!    same logical payload;
//! 2. trivially copyable structs are transferred as **contiguous bytes**
//!    (including alignment gaps) rather than field-by-field with a
//!    gap-skipping derived datatype — measured here as a whole-struct
//!    copy vs a per-field pack/unpack of the same records.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use kamping::prelude::*;
use kmp_mpi::{plain_struct, Comm, Universe};

const N: usize = 2048;

fn time_universe<F>(p: usize, iters: u64, f: F) -> Duration
where
    F: Fn(&Comm, u64) + Sync,
{
    let outs = Universe::run(p, |comm| {
        comm.barrier().unwrap();
        let t = Instant::now();
        f(&comm, iters);
        t.elapsed()
    });
    outs.into_iter().next().unwrap()
}

fn bench_serialization_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("send_recv_vec_u64");
    g.sample_size(10);

    g.bench_function("plain", |b| {
        b.iter_custom(|iters| {
            time_universe(2, iters, |comm, iters| {
                let kc = Communicator::new(comm.dup().unwrap());
                let payload: Vec<u64> = (0..N as u64).collect();
                if kc.rank() == 0 {
                    for _ in 0..iters {
                        kc.send((send_buf(&payload), destination(1))).unwrap();
                    }
                } else {
                    for _ in 0..iters {
                        let got: Vec<u64> = kc.recv((source(0),)).unwrap();
                        std::hint::black_box(got);
                    }
                }
            })
        })
    });

    g.bench_function("serialized", |b| {
        b.iter_custom(|iters| {
            time_universe(2, iters, |comm, iters| {
                let kc = Communicator::new(comm.dup().unwrap());
                let payload: Vec<u64> = (0..N as u64).collect();
                if kc.rank() == 0 {
                    for _ in 0..iters {
                        kc.send((send_buf(as_serialized(&payload)), destination(1)))
                            .unwrap();
                    }
                } else {
                    for _ in 0..iters {
                        let got: Vec<u64> =
                            kc.recv((recv_buf(as_deserializable()), source(0))).unwrap();
                        std::hint::black_box(got);
                    }
                }
            })
        })
    });
    g.finish();
}

/// A struct with an alignment gap after `tag` (u8 followed by u64).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Record {
    key: u64,
    value: f64,
    tag: u64, // would be u8 + 7 bytes padding in the field-wise view
}
plain_struct!(Record {
    key: u64,
    value: f64,
    tag: u64
});

fn bench_datatype_layout(c: &mut Criterion) {
    let mut g = c.benchmark_group("struct_transfer");
    g.sample_size(10);

    let make = || -> Vec<Record> {
        (0..N as u64)
            .map(|i| Record {
                key: i,
                value: i as f64,
                tag: i % 251,
            })
            .collect()
    };

    g.bench_function("contiguous_bytes", |b| {
        // KaMPIng's default: the struct array crosses the wire as one
        // contiguous byte block.
        b.iter_custom(|iters| {
            time_universe(2, iters, |comm, iters| {
                let records = make();
                if comm.rank() == 0 {
                    for _ in 0..iters {
                        comm.send(&records, 1, 0).unwrap();
                    }
                } else {
                    for _ in 0..iters {
                        let (got, _) = comm.recv_vec::<Record>(0, 0).unwrap();
                        std::hint::black_box(got);
                    }
                }
            })
        })
    });

    g.bench_function("field_wise", |b| {
        // The `MPI_Type_create_struct` route: each field is gathered
        // into its own stream (non-contiguous access on both sides).
        b.iter_custom(|iters| {
            time_universe(2, iters, |comm, iters| {
                let records = make();
                if comm.rank() == 0 {
                    for _ in 0..iters {
                        let keys: Vec<u64> = records.iter().map(|r| r.key).collect();
                        let values: Vec<f64> = records.iter().map(|r| r.value).collect();
                        let tags: Vec<u64> = records.iter().map(|r| r.tag).collect();
                        comm.send(&keys, 1, 0).unwrap();
                        comm.send(&values, 1, 1).unwrap();
                        comm.send(&tags, 1, 2).unwrap();
                    }
                } else {
                    for _ in 0..iters {
                        let (keys, _) = comm.recv_vec::<u64>(0, 0).unwrap();
                        let (values, _) = comm.recv_vec::<f64>(0, 1).unwrap();
                        let (tags, _) = comm.recv_vec::<u64>(0, 2).unwrap();
                        let got: Vec<Record> = keys
                            .into_iter()
                            .zip(values)
                            .zip(tags)
                            .map(|((key, value), tag)| Record { key, value, tag })
                            .collect();
                        std::hint::black_box(got);
                    }
                }
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_serialization_cost, bench_datatype_layout);
criterion_main!(benches);
