//! # kmp-serialize — compact binary serde codec
//!
//! KaMPIng uses the Cereal library for its opt-in serialization support
//! (§III-D3 of the paper): heap-structured types (`std::string`,
//! `std::unordered_map`, …) that cannot be described by an MPI datatype
//! are packed into a contiguous byte buffer before communication, and
//! unpacked on the receiving side. Serialization is *explicit* — the user
//! writes `send_buf(as_serialized(&data))` — because packing has real
//! costs that zero-overhead bindings must not hide.
//!
//! This crate plays Cereal's role for the Rust reproduction: a
//! self-contained binary [`serde`] serializer/deserializer with a simple,
//! deterministic wire format:
//!
//! - fixed-width little-endian integers and floats;
//! - `u64` little-endian length prefixes for sequences, maps, strings and
//!   byte buffers;
//! - `u32` variant indices for enums;
//! - one tag byte for `Option` / `bool`;
//! - structs and tuples are field concatenations (no self-description).
//!
//! ## Example
//!
//! ```
//! use std::collections::BTreeMap;
//!
//! let mut dict = BTreeMap::new();
//! dict.insert("hello".to_string(), 1u32);
//! dict.insert("world".to_string(), 2u32);
//!
//! let bytes = kmp_serialize::to_bytes(&dict).unwrap();
//! let back: BTreeMap<String, u32> = kmp_serialize::from_bytes(&bytes).unwrap();
//! assert_eq!(back, dict);
//! ```

mod de;
mod error;
mod ser;

pub use de::{from_bytes, Deserializer};
pub use error::{Error, Result};
pub use ser::{to_bytes, Serializer};

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T>(value: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let bytes = to_bytes(value).expect("serialize");
        from_bytes(&bytes).expect("deserialize")
    }

    #[test]
    fn primitives() {
        assert_eq!(roundtrip(&42u8), 42);
        assert_eq!(roundtrip(&-42i8), -42);
        assert_eq!(roundtrip(&0xDEAD_BEEFu32), 0xDEAD_BEEF);
        assert_eq!(roundtrip(&u64::MAX), u64::MAX);
        assert_eq!(roundtrip(&i64::MIN), i64::MIN);
        assert_eq!(roundtrip(&u128::MAX), u128::MAX);
        assert_eq!(roundtrip(&3.5f32), 3.5);
        assert_eq!(roundtrip(&-2.25f64), -2.25);
        assert!(roundtrip(&true));
        assert!(!roundtrip(&false));
        assert_eq!(roundtrip(&'λ'), 'λ');
    }

    #[test]
    fn strings_and_bytes() {
        assert_eq!(roundtrip(&"".to_string()), "");
        assert_eq!(roundtrip(&"hello κόσμε".to_string()), "hello κόσμε");
        let v: Vec<u8> = (0..=255).collect();
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn sequences_and_maps() {
        let v = vec![vec![1u64, 2], vec![], vec![3]];
        assert_eq!(roundtrip(&v), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1i32, -1]);
        m.insert("b".to_string(), vec![]);
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn options_and_tuples() {
        assert_eq!(roundtrip(&Some(7u32)), Some(7));
        assert_eq!(roundtrip(&None::<u32>), None);
        assert_eq!(
            roundtrip(&(1u8, "x".to_string(), 2.5f64)),
            (1, "x".to_string(), 2.5)
        );
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    struct Nested {
        id: u64,
        name: String,
        tags: Vec<String>,
        score: Option<f64>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(u8, u8),
        Struct { w: f32, h: f32 },
    }

    #[test]
    fn derived_structs() {
        let n = Nested {
            id: 9,
            name: "node".into(),
            tags: vec!["a".into(), "b".into()],
            score: Some(0.5),
        };
        assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn derived_enums_all_variants() {
        assert_eq!(roundtrip(&Shape::Unit), Shape::Unit);
        assert_eq!(roundtrip(&Shape::Newtype(7)), Shape::Newtype(7));
        assert_eq!(roundtrip(&Shape::Tuple(1, 2)), Shape::Tuple(1, 2));
        assert_eq!(
            roundtrip(&Shape::Struct { w: 1.0, h: 2.0 }),
            Shape::Struct { w: 1.0, h: 2.0 }
        );
    }

    #[test]
    fn unit_and_newtype_structs() {
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct Unit;
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct Meters(f64);
        assert_eq!(roundtrip(&Unit), Unit);
        assert_eq!(roundtrip(&Meters(1.5)), Meters(1.5));
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&12345u64).unwrap();
        let r: Result<u64> = from_bytes(&bytes[..4]);
        assert!(r.is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        let r: Result<u8> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn invalid_utf8_errors() {
        // A string of length 2 with invalid UTF-8 content.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let r: Result<String> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn invalid_bool_errors() {
        let r: Result<bool> = from_bytes(&[2]);
        assert!(r.is_err());
    }

    #[test]
    fn deterministic_encoding() {
        let n = Nested {
            id: 1,
            name: "x".into(),
            tags: vec![],
            score: None,
        };
        assert_eq!(to_bytes(&n).unwrap(), to_bytes(&n.clone()).unwrap());
    }

    #[test]
    fn wire_format_is_compact() {
        // u32 costs exactly 4 bytes, a vec of two u32 costs 8 + 8 bytes.
        assert_eq!(to_bytes(&7u32).unwrap().len(), 4);
        assert_eq!(to_bytes(&vec![1u32, 2]).unwrap().len(), 8 + 8);
        // An empty string is just its length prefix.
        assert_eq!(to_bytes(&String::new()).unwrap().len(), 8);
    }
}
