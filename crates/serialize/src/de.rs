//! Binary deserializer.

use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};

use crate::error::{Error, Result};

/// Deserializes a value from a byte slice, requiring the entire input to
/// be consumed.
pub fn from_bytes<'de, T: de::Deserialize<'de>>(input: &'de [u8]) -> Result<T> {
    let mut de = Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(Error::TrailingBytes(de.input.len()));
    }
    Ok(value)
}

/// The binary deserializer over a borrowed input slice.
pub struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    /// Creates a deserializer reading from `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(Error::UnexpectedEof {
                needed: n,
                remaining: self.input.len(),
            });
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_len(&mut self) -> Result<usize> {
        let bytes = self.take(8)?;
        let len = u64::from_le_bytes(bytes.try_into().expect("8 bytes"));
        usize::try_from(len).map_err(|_| Error::InvalidValue(format!("length {len} too large")))
    }
}

macro_rules! de_fixed {
    ($method:ident, $visit:ident, $t:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let bytes = self.take(std::mem::size_of::<$t>())?;
            visitor.$visit(<$t>::from_le_bytes(bytes.try_into().expect("sized read")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::Message(
            "wire format is not self-describing; deserialize_any unsupported".into(),
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(Error::InvalidValue(format!("bool tag {b}"))),
        }
    }

    de_fixed!(deserialize_i8, visit_i8, i8);
    de_fixed!(deserialize_i16, visit_i16, i16);
    de_fixed!(deserialize_i32, visit_i32, i32);
    de_fixed!(deserialize_i64, visit_i64, i64);
    de_fixed!(deserialize_i128, visit_i128, i128);
    de_fixed!(deserialize_u8, visit_u8, u8);
    de_fixed!(deserialize_u16, visit_u16, u16);
    de_fixed!(deserialize_u32, visit_u32, u32);
    de_fixed!(deserialize_u64, visit_u64, u64);
    de_fixed!(deserialize_u128, visit_u128, u128);
    de_fixed!(deserialize_f32, visit_f32, f32);
    de_fixed!(deserialize_f64, visit_f64, f64);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let bytes = self.take(4)?;
        let code = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
        let c = char::from_u32(code)
            .ok_or_else(|| Error::InvalidValue(format!("char code {code:#x}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| Error::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(Error::InvalidValue(format!("option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.take_len()?;
        visitor.visit_map(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::Message(
            "identifiers are not encoded by this format".into(),
        ))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::Message(
            "cannot skip values in a non-self-describing format".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Sequence/map access with a known element count.
struct CountedAccess<'de, 'a> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for CountedAccess<'de, 'a> {
    type Error = Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de, 'a> de::MapAccess<'de> for CountedAccess<'de, 'a> {
    type Error = Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'de, 'a> {
    de: &'a mut Deserializer<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'de, 'a> {
    type Error = Error;
    type Variant = VariantAccess<'de, 'a>;

    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self::Variant)> {
        let bytes = self.de.take(4)?;
        let index = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'de, 'a> {
    de: &'a mut Deserializer<'de>,
}

impl<'de, 'a> de::VariantAccess<'de> for VariantAccess<'de, 'a> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_tracks_consumption() {
        let bytes = crate::to_bytes(&(1u32, 2u32)).unwrap();
        let mut de = Deserializer::new(&bytes);
        assert_eq!(de.remaining(), 8);
        let _: u32 = serde::Deserialize::deserialize(&mut de).unwrap();
        assert_eq!(de.remaining(), 4);
    }

    #[test]
    fn eof_reports_needed_bytes() {
        let mut de = Deserializer::new(&[1, 2]);
        let r: Result<u64> = serde::Deserialize::deserialize(&mut de);
        assert_eq!(
            r.unwrap_err(),
            Error::UnexpectedEof {
                needed: 8,
                remaining: 2
            }
        );
    }

    #[test]
    fn invalid_char_rejected() {
        let bytes = 0xD800u32.to_le_bytes(); // a surrogate, not a char
        let r: Result<char> = from_bytes(&bytes);
        assert!(matches!(r, Err(Error::InvalidValue(_))));
    }

    #[test]
    fn unknown_enum_variant_errors() {
        #[derive(serde::Deserialize, Debug)]
        enum E {
            #[allow(dead_code)]
            A,
        }
        let bytes = 7u32.to_le_bytes();
        let r: Result<E> = from_bytes(&bytes);
        assert!(r.is_err());
    }
}
