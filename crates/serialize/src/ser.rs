//! Binary serializer.

use serde::ser::{self, Serialize};

use crate::error::{Error, Result};

/// Serializes a value into a fresh byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    value.serialize(&mut Serializer { out: &mut out })?;
    Ok(out)
}

/// The binary serializer; writes into a borrowed byte vector so callers
/// can reuse allocation across messages (an explicit goal of the paper's
/// allocation-control design, §III-C).
pub struct Serializer<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> Serializer<'a> {
    /// Creates a serializer appending to `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        Serializer { out }
    }

    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

macro_rules! ser_fixed {
    ($method:ident, $t:ty) => {
        fn $method(self, v: $t) -> Result<()> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl<'a, 'b> ser::Serializer for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a, 'b>;
    type SerializeTuple = Compound<'a, 'b>;
    type SerializeTupleStruct = Compound<'a, 'b>;
    type SerializeTupleVariant = Compound<'a, 'b>;
    type SerializeMap = Compound<'a, 'b>;
    type SerializeStruct = Compound<'a, 'b>;
    type SerializeStructVariant = Compound<'a, 'b>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(u8::from(v));
        Ok(())
    }

    ser_fixed!(serialize_i8, i8);
    ser_fixed!(serialize_i16, i16);
    ser_fixed!(serialize_i32, i32);
    ser_fixed!(serialize_i64, i64);
    ser_fixed!(serialize_i128, i128);
    ser_fixed!(serialize_u8, u8);
    ser_fixed!(serialize_u16, u16);
    ser_fixed!(serialize_u32, u32);
    ser_fixed!(serialize_u64, u64);
    ser_fixed!(serialize_u128, u128);
    ser_fixed!(serialize_f32, f32);
    ser_fixed!(serialize_f64, f64);

    fn serialize_char(self, v: char) -> Result<()> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.serialize_u32(variant_index)?;
        value.serialize(&mut *self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len.ok_or(Error::LengthRequired)?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len = len.ok_or(Error::LengthRequired)?;
        self.put_len(len);
        Ok(Compound { ser: self })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// Compound serialization state (shared by all compound kinds: the format
/// is a plain concatenation in every case).
pub struct Compound<'a, 'b> {
    ser: &'b mut Serializer<'a>,
}

macro_rules! impl_compound {
    ($trait:ident, $method:ident) => {
        impl<'a, 'b> ser::$trait for Compound<'a, 'b> {
            type Ok = ();
            type Error = Error;

            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
                value.serialize(&mut *self.ser)
            }

            fn end(self) -> Result<()> {
                Ok(())
            }
        }
    };
}

impl_compound!(SerializeSeq, serialize_element);
impl_compound!(SerializeTuple, serialize_element);
impl_compound!(SerializeTupleStruct, serialize_field);
impl_compound!(SerializeTupleVariant, serialize_field);

impl<'a, 'b> ser::SerializeMap for Compound<'a, 'b> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut *self.ser)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStruct for Compound<'a, 'b> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStructVariant for Compound<'a, 'b> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        assert_eq!(to_bytes(&0x0102_0304u32).unwrap(), vec![4, 3, 2, 1]);
    }

    #[test]
    fn reuses_caller_buffer() {
        let mut buf = Vec::with_capacity(64);
        let cap = buf.capacity();
        7u8.serialize(&mut Serializer::new(&mut buf)).unwrap();
        8u8.serialize(&mut Serializer::new(&mut buf)).unwrap();
        assert_eq!(buf, vec![7, 8]);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn string_has_length_prefix() {
        let b = to_bytes("ab").unwrap();
        assert_eq!(&b[..8], &2u64.to_le_bytes());
        assert_eq!(&b[8..], b"ab");
    }
}
