//! Codec errors.

use std::fmt;

/// Errors produced while encoding or decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes needed by the failed read.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// Input remained after the top-level value was decoded.
    TrailingBytes(usize),
    /// A decoded string was not valid UTF-8.
    InvalidUtf8,
    /// A decoded `bool`/`Option` tag or `char` was out of range.
    InvalidValue(String),
    /// A sequence/map length prefix was required but absent
    /// (the format is not self-describing).
    LengthRequired,
    /// Free-form message from serde.
    Message(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            Error::InvalidUtf8 => write!(f, "invalid UTF-8 in string"),
            Error::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            Error::LengthRequired => write!(f, "sequence length required by wire format"),
            Error::Message(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::UnexpectedEof {
            needed: 8,
            remaining: 3,
        };
        assert!(e.to_string().contains("8"));
        assert!(e.to_string().contains("3"));
        assert!(Error::InvalidUtf8.to_string().contains("UTF-8"));
        assert!(Error::TrailingBytes(2).to_string().contains("2 trailing"));
    }

    #[test]
    fn serde_custom_constructors() {
        let s: Error = serde::ser::Error::custom("ser problem");
        assert_eq!(s, Error::Message("ser problem".into()));
        let d: Error = serde::de::Error::custom("de problem");
        assert_eq!(d, Error::Message("de problem".into()));
    }
}
