//! Property-based round-trip tests for the binary codec: every value of
//! every supported shape must survive `to_bytes` → `from_bytes`
//! unchanged, and the encoding must be deterministic.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};

fn roundtrip<T>(value: &T) -> T
where
    T: Serialize + for<'de> Deserialize<'de>,
{
    let bytes = kmp_serialize::to_bytes(value).expect("serialize");
    kmp_serialize::from_bytes(&bytes).expect("deserialize")
}

#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
enum Node {
    Leaf(u32),
    Pair(Box<Node>, Box<Node>),
    Tagged { name: String, weight: i16 },
    Empty,
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        any::<u32>().prop_map(Node::Leaf),
        (".{0,8}", any::<i16>()).prop_map(|(name, weight)| Node::Tagged { name, weight }),
        Just(Node::Empty),
    ];
    leaf.prop_recursive(4, 16, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| Node::Pair(Box::new(a), Box::new(b)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn integers_roundtrip(v in any::<(u8, i8, u16, i16, u32, i32, u64, i64, u128, i128)>()) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn floats_roundtrip_bitwise(a in any::<f32>(), b in any::<f64>()) {
        let (ra, rb) = roundtrip(&(a, b));
        prop_assert_eq!(ra.to_bits(), a.to_bits());
        prop_assert_eq!(rb.to_bits(), b.to_bits());
    }

    #[test]
    fn strings_roundtrip(s in ".{0,64}") {
        prop_assert_eq!(roundtrip(&s), s);
    }

    #[test]
    fn nested_collections_roundtrip(
        v in prop::collection::vec(
            prop::collection::btree_map(".{0,8}", prop::collection::vec(any::<i32>(), 0..6), 0..4),
            0..4,
        )
    ) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn options_and_results_roundtrip(v in any::<Vec<Option<(bool, u64)>>>()) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn recursive_enums_roundtrip(n in node_strategy()) {
        prop_assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn encoding_is_deterministic(v in any::<Vec<(String, u64)>>()) {
        let a = kmp_serialize::to_bytes(&v).unwrap();
        let b = kmp_serialize::to_bytes(&v).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn truncation_never_panics(v in any::<Vec<u64>>(), cut in any::<prop::sample::Index>()) {
        let bytes = kmp_serialize::to_bytes(&v).unwrap();
        if !bytes.is_empty() {
            let cut = cut.index(bytes.len());
            // Decoding a truncated prefix may fail, but must not panic.
            let _: Result<Vec<u64>, _> = kmp_serialize::from_bytes(&bytes[..cut]);
        }
    }

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        // Arbitrary input must be rejected gracefully.
        let _: Result<Vec<String>, _> = kmp_serialize::from_bytes(&bytes);
        let _: Result<Node, _> = kmp_serialize::from_bytes(&bytes);
        let _: Result<(u64, f64, String), _> = kmp_serialize::from_bytes(&bytes);
    }
}
