//! Runtime assertion levels (§III-G of the paper).
//!
//! "KaMPIng also includes many runtime assertions verifying MPI
//! invariants, that are grouped in different levels, ranging from
//! lightweight checks to assertions involving additional communication.
//! The assertions can be completely disabled level-by-level."
//!
//! Levels:
//! - [`AssertionLevel::None`] — no checks beyond memory safety;
//! - [`AssertionLevel::Light`] (default) — local invariant checks
//!   (layout validation, size consistency) with no extra communication;
//! - [`AssertionLevel::Heavy`] — additionally verifies *cross-rank*
//!   invariants by communicating: all ranks of a rooted collective named
//!   the same root, and the send-count matrix of an `alltoallv` is
//!   consistent with what receivers expect.
//!
//! The level is a process-global setting (like KaMPIng's compile-time
//! assertion configuration, but switchable in tests):
//!
//! ```
//! use kamping::assertions::{set_assertion_level, AssertionLevel};
//! set_assertion_level(AssertionLevel::Light);
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

use kmp_mpi::{MpiError, Result};

use crate::communicator::Communicator;

/// How much invariant checking the library performs at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AssertionLevel {
    /// No checks.
    None = 0,
    /// Local checks only (the default).
    Light = 1,
    /// Local checks plus cross-rank checks that communicate.
    Heavy = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(AssertionLevel::Light as u8);

/// Sets the process-global assertion level.
pub fn set_assertion_level(level: AssertionLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current assertion level.
pub fn assertion_level() -> AssertionLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => AssertionLevel::None,
        1 => AssertionLevel::Light,
        _ => AssertionLevel::Heavy,
    }
}

/// True if checks of `level` are enabled.
pub fn assertions_enabled(level: AssertionLevel) -> bool {
    assertion_level() >= level
}

/// The level is process-global; tests that flip it (or that assert on
/// communication volumes the level changes) serialize on this lock.
#[cfg(test)]
pub(crate) static LEVEL_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Heavy (communicating) check: every rank of a rooted collective must
/// have named the same root. Costs one `allreduce` pair when enabled.
pub(crate) fn check_same_root(comm: &Communicator, root: usize) -> Result<()> {
    if !assertions_enabled(AssertionLevel::Heavy) {
        return Ok(());
    }
    let lo = comm.raw().allreduce_one(root as u64, kmp_mpi::op::Min)?;
    let hi = comm.raw().allreduce_one(root as u64, kmp_mpi::op::Max)?;
    if lo != hi {
        return Err(MpiError::InvalidLayout(format!(
            "heavy assertion failed: ranks disagree on the collective's root \
             (saw roots {lo} and {hi})"
        )));
    }
    Ok(())
}

/// Heavy (communicating) check: the transposed send counts of an
/// `alltoallv` must match what each receiver was told to expect. Costs
/// one `alltoall` when enabled.
pub(crate) fn check_count_matrix(
    comm: &Communicator,
    send_counts: &[usize],
    recv_counts: &[usize],
) -> Result<()> {
    if !assertions_enabled(AssertionLevel::Heavy) {
        return Ok(());
    }
    let mut transposed = vec![0usize; comm.size()];
    comm.raw().alltoall_into(send_counts, &mut transposed)?;
    if transposed != recv_counts {
        return Err(MpiError::InvalidLayout(format!(
            "heavy assertion failed: inconsistent alltoallv counts on rank {}: \
             senders will deliver {transposed:?} but recv_counts say {recv_counts:?}",
            comm.rank()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::LEVEL_GUARD as GUARD;
    use super::*;
    use crate::prelude::*;
    use kmp_mpi::Universe;

    #[test]
    fn level_roundtrip() {
        let _g = GUARD.lock().unwrap();
        let prev = assertion_level();
        set_assertion_level(AssertionLevel::None);
        assert_eq!(assertion_level(), AssertionLevel::None);
        assert!(!assertions_enabled(AssertionLevel::Light));
        set_assertion_level(AssertionLevel::Heavy);
        assert!(assertions_enabled(AssertionLevel::Light));
        assert!(assertions_enabled(AssertionLevel::Heavy));
        set_assertion_level(prev);
    }

    #[test]
    fn heavy_detects_root_mismatch() {
        let _g = GUARD.lock().unwrap();
        let prev = assertion_level();
        set_assertion_level(AssertionLevel::Heavy);
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            // Ranks disagree on the root: rank 0 says 0, others say 1.
            let root_choice = usize::from(comm.rank() != 0);
            let r = super::check_same_root(&comm, root_choice);
            assert!(r.is_err(), "root mismatch must be detected");
        });
        set_assertion_level(prev);
    }

    #[test]
    fn heavy_detects_count_matrix_mismatch() {
        let _g = GUARD.lock().unwrap();
        let prev = assertion_level();
        set_assertion_level(AssertionLevel::Heavy);
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let send = vec![1usize, 1];
            // Receivers claim to expect 2 from everyone — inconsistent.
            let recv = vec![2usize, 2];
            let r = super::check_count_matrix(&comm, &send, &recv);
            assert!(r.is_err());
        });
        set_assertion_level(prev);
    }

    #[test]
    fn heavy_passes_on_consistent_input_and_costs_communication() {
        let _g = GUARD.lock().unwrap();
        let prev = assertion_level();
        set_assertion_level(AssertionLevel::Heavy);
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let before = comm.call_counts();
            super::check_same_root(&comm, 0).unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("allreduce"), 2, "heavy check communicates");
        });
        set_assertion_level(AssertionLevel::Light);
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let before = comm.call_counts();
            super::check_same_root(&comm, 0).unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.total(), 0, "light level must not communicate");
        });
        set_assertion_level(prev);
    }

    #[test]
    fn bcast_with_heavy_assertions_catches_misuse() {
        let _g = GUARD.lock().unwrap();
        let prev = assertion_level();
        set_assertion_level(AssertionLevel::Heavy);
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            // Correct usage passes.
            let mut ok = if comm.rank() == 0 { vec![1u8] } else { vec![] };
            comm.bcast((send_recv_buf(&mut ok),)).unwrap();
            // Disagreeing roots error instead of hanging/corrupting.
            let my_root = comm.rank(); // every rank names itself
            let mut bad = vec![0u8];
            let r = comm.bcast((send_recv_buf(&mut bad), root(my_root)));
            assert!(r.is_err(), "heavy assertions must reject diverging roots");
        });
        set_assertion_level(prev);
    }
}
