//! Compile-time error checking (§III-G of the paper).
//!
//! "Catching usage errors at compile time whenever possible … when the
//! user does not provide a required parameter to a collective operation,
//! the error message indicates which parameter is missing during compile
//! time." The doctests below are `compile_fail` tests: each snippet
//! **must not compile**, which `cargo test` verifies. The corresponding
//! `#[diagnostic::on_unimplemented]` attributes on the slot traits
//! provide the human-readable messages.
//!
//! ## Missing required parameter: `send_buf`
//!
//! An `allgatherv` without send data does not compile (the error names
//! the missing parameter):
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn missing_send_buf(comm: &Communicator) {
//!     let _: Vec<u64> = comm.allgatherv((recv_counts_out(),)).unwrap();
//! }
//! ```
//!
//! ## Missing required parameter: `send_counts`
//!
//! `alltoallv` cannot infer how the send buffer splits across
//! destinations, so `send_counts` is required:
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn missing_send_counts(comm: &Communicator, data: &Vec<u64>) {
//!     let _: Vec<u64> = comm.alltoallv(send_buf(data)).unwrap();
//! }
//! ```
//!
//! ## Missing required parameter: `send_counts` (neighborhood)
//!
//! The neighborhood builders enforce the same requirement over a
//! topology communicator:
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn missing_neighbor_send_counts(
//!     g: &NeighborhoodCommunicator<kmp_mpi::DistGraphComm>,
//!     data: &Vec<u64>,
//! ) {
//!     let _: Vec<u64> = g.neighbor_alltoallv(send_buf(data)).unwrap();
//! }
//! ```
//!
//! ## Missing required parameter: `op`
//!
//! Reductions require the operation:
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn missing_op(comm: &Communicator, data: &Vec<u64>) {
//!     let _: Vec<u64> = comm.allreduce(send_buf(data)).unwrap();
//! }
//! ```
//!
//! ## Duplicate parameters
//!
//! Passing `send_buf` twice is rejected at compile time (the slot is no
//! longer `Absent` after the first fold):
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn duplicate_send_buf(comm: &Communicator, data: &Vec<u64>) {
//!     let _: Vec<u64> = comm.allgatherv((send_buf(data), send_buf(data))).unwrap();
//! }
//! ```
//!
//! ## Parameters ignored by in-place calls
//!
//! §III-G: "issues a compilation error if the user provides an argument
//! which would be ignored by the in-place call" — an in-place
//! `allgather` (via `send_recv_buf`) rejects an additional `send_buf`:
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn in_place_with_send_buf(comm: &Communicator, data: &Vec<u64>) {
//!     let mut buf = data.clone();
//!     let _ = comm.allgather((send_recv_buf(&mut buf), send_buf(data))).unwrap();
//! }
//! ```
//!
//! ## Element type consistency
//!
//! Send data and provided receive storage must agree on the element
//! type:
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn type_mismatch(comm: &Communicator, data: &Vec<u64>) {
//!     let mut out: Vec<u32> = Vec::new();
//!     comm.allgatherv((send_buf(data), recv_buf(&mut out).resize_to_fit())).unwrap();
//! }
//! ```
//!
//! ## Ownership of non-blocking buffers (§III-E)
//!
//! A buffer moved into `isend` is inaccessible until `wait()` returns
//! it — Rust's borrow checker enforces the paper's safety model:
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn use_after_move(comm: &Communicator) {
//!     let v = vec![1u32, 2, 3];
//!     let req = comm.isend((send_buf(v), destination(1))).unwrap();
//!     let _len = v.len(); // ERROR: v was moved into the request
//!     let _v = req.wait().unwrap();
//! }
//! ```
//!
//! The same ownership rule covers non-blocking **collectives**: a buffer
//! moved into `iallgatherv` is gone until `wait()` hands it back:
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn use_after_move_collective(comm: &Communicator) {
//!     let v = vec![1u32, 2, 3];
//!     let fut = comm.iallgatherv(send_buf(v)).unwrap();
//!     let _len = v.len(); // ERROR: v was moved into the future
//!     let _ = fut.wait().unwrap();
//! }
//! ```
//!
//! ## No in-flight access for `ibcast` (§III-E)
//!
//! `ibcast` refuses *borrowed* buffers: while the broadcast is in flight
//! nothing may read or write the buffer, which only ownership transfer
//! can guarantee — so `send_recv_buf(&mut v)` does not compile, only
//! `send_recv_buf(v)`:
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn ibcast_borrowed(comm: &Communicator) {
//!     let mut v = vec![1u32, 2, 3];
//!     let _ = comm.ibcast((send_recv_buf(&mut v),)).unwrap();
//! }
//! ```
//!
//! ## Received data inaccessible before completion (§III-E)
//!
//! The result of a non-blocking collective is *produced by* `wait()`;
//! there is no receive buffer to peek at while it is in flight:
//!
//! ```compile_fail
//! use kamping::prelude::*;
//! fn peek_before_completion(comm: &Communicator) {
//!     let fut = comm.iallgatherv(send_buf(vec![1u32])).unwrap();
//!     let _n = fut.0.len(); // ERROR: no accessible data inside the future
//!     let _ = fut.wait().unwrap();
//! }
//! ```
//!
//! And the positive control — the same code *with* the parameter —
//! compiles:
//!
//! ```no_run
//! use kamping::prelude::*;
//! fn positive_control(comm: &Communicator, data: &Vec<u64>) {
//!     let _: Vec<u64> = comm.allgatherv(send_buf(data)).unwrap();
//! }
//! fn positive_control_neighborhood(
//!     g: &NeighborhoodCommunicator<kmp_mpi::DistGraphComm>,
//!     data: &Vec<u64>,
//!     counts: &Vec<usize>,
//! ) {
//!     let _: Vec<u64> = g
//!         .neighbor_alltoallv((send_buf(data), send_counts(counts)))
//!         .unwrap();
//!     let _: Vec<u64> = g.neighbor_allgatherv(send_buf(data)).unwrap();
//! }
//! ```
//!
//! Positive control for the non-blocking collectives (owned buffers move
//! through and come back):
//!
//! ```no_run
//! use kamping::prelude::*;
//! fn positive_control_nonblocking(comm: &Communicator) {
//!     let fut = comm.iallgatherv(send_buf(vec![1u32])).unwrap();
//!     let (_all, _mine) = fut.wait().unwrap();
//!     let fut = comm.ibcast((send_recv_buf(vec![1u32]),)).unwrap();
//!     let _data = fut.wait().unwrap();
//! }
//! ```

// This module carries documentation tests only.
