//! Point-to-point communication with named parameters and non-blocking
//! memory safety (§III-E of the paper).
//!
//! Blocking: [`Communicator::send`] / [`Communicator::recv`]. Non-blocking:
//! [`Communicator::isend`] / [`Communicator::issend`] /
//! [`Communicator::irecv`], which return buffer-owning results — send
//! buffers are *moved into* the call and handed back by `wait()`, and
//! received data is only accessible after completion, so no send buffer
//! can be mutated and no receive buffer read while an operation is in
//! flight (the guarantee the paper notes only rsmpi's ownership model
//! otherwise provides).

use kmp_mpi::{Plain, Request, Result, Src, TagSel};

use crate::communicator::Communicator;
use crate::params::argset::{ArgSet, IntoArgs};
use crate::params::output::{FinalOf, Finalize, Push1, PushComponent};
use crate::params::slots::{ProvidesSendData, ReclaimHold, RecvBufSpec, SendToTransport};
use crate::params::{Absent, Meta, SendBuf};

fn send_meta(meta: &Meta) -> (usize, i32) {
    let dest = meta
        .destination
        .expect("missing required parameter `destination` (pass destination(rank))");
    (dest, meta.tag.unwrap_or(0))
}

fn recv_meta(meta: &Meta) -> (Src, TagSel) {
    let src = meta.source.unwrap_or(Src::Any);
    let tag = meta.tag.map(TagSel::Is).unwrap_or(TagSel::Any);
    (src, tag)
}

// ---------------------------------------------------------------------------
// Blocking send / recv
// ---------------------------------------------------------------------------

/// Valid argument sets for [`Communicator::send`]. The mode parameter `M`
/// is the element type for plain sends and
/// [`SerialMode`](crate::serialization::SerialMode) for serialized ones.
pub trait SendArgs<M> {
    /// Executes the send.
    fn run(self, comm: &Communicator) -> Result<()>;
}

// The plain-mode impls enumerate concrete container shapes instead of a
// blanket `B` so that they cannot unify with the serialized-mode impls in
// `crate::serialization` (Rust coherence ignores where-clauses when
// checking impl overlap).
macro_rules! plain_send_impls {
    ($([$($gen:tt)*] $container:ty),+ $(,)?) => {$(
        impl<$($gen)* T: Plain> SendArgs<T>
            for ArgSet<SendBuf<$container>, Absent, Absent, Absent, Absent, Absent, Absent, Absent>
        where
            SendBuf<$container>: ProvidesSendData<T>,
        {
            fn run(self, comm: &Communicator) -> Result<()> {
                let (dest, tag) = send_meta(&self.meta);
                comm.raw().send(self.send_buf.send_slice(), dest, tag)
            }
        }
    )+};
}

plain_send_impls!(
    ['a,] &'a Vec<T>,
    ['a,] &'a [T],
    [const N: usize,] [T; N],
    ['a, const N: usize,] &'a [T; N],
);

// Owned vectors move into the transport without copying (§III-E meets
// zero-copy: the allocation itself becomes the in-flight payload).
impl<T: Plain> SendArgs<T>
    for ArgSet<SendBuf<Vec<T>>, Absent, Absent, Absent, Absent, Absent, Absent, Absent>
{
    fn run(self, comm: &Communicator) -> Result<()> {
        let (dest, tag) = send_meta(&self.meta);
        comm.raw().send_vec(self.send_buf.0, dest, tag)
    }
}

macro_rules! plain_isend_impls {
    ($([$($gen:tt)*] $container:ty),+ $(,)?) => {$(
        impl<$($gen)* T: Plain> IsendArgs<T>
            for ArgSet<SendBuf<$container>, Absent, Absent, Absent, Absent, Absent, Absent, Absent>
        where
            SendBuf<$container>: SendToTransport<T>,
        {
            type Hold = <SendBuf<$container> as SendToTransport<T>>::Hold;

            fn run<'c>(self, comm: &'c Communicator) -> Result<NonBlockingSend<'c, Self::Hold>> {
                let (dest, tag) = send_meta(&self.meta);
                let (payload, hold) = self.send_buf.into_payload();
                let req = comm.raw().isend_bytes(payload, dest, tag)?;
                Ok(NonBlockingSend { req, hold })
            }

            fn run_sync<'c>(self, comm: &'c Communicator) -> Result<NonBlockingSend<'c, Self::Hold>> {
                let (dest, tag) = send_meta(&self.meta);
                let (payload, hold) = self.send_buf.into_payload();
                let req = comm.raw().issend_bytes(payload, dest, tag)?;
                Ok(NonBlockingSend { req, hold })
            }
        }
    )+};
}

plain_isend_impls!(
    ['a,] &'a Vec<T>,
    [] Vec<T>,
    ['a,] &'a [T],
    ['a, const N: usize,] &'a [T; N],
);

/// Valid argument sets for [`Communicator::recv`].
pub trait RecvArgs<M> {
    /// The received result.
    type Output;
    /// Executes the receive.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

// Same enumeration rationale as for the send impls: the receive-buffer
// shapes are listed concretely so the serialized `as_deserializable`
// receive cannot unify with them.
macro_rules! plain_recv_impls {
    ($([$($gen:tt)*] $rb:ty),+ $(,)?) => {$(
        impl<$($gen)* T: Plain> RecvArgs<T>
            for ArgSet<Absent, Absent, $rb, Absent, Absent, Absent, Absent, Absent>
        where
            $rb: RecvBufSpec<T>,
            <$rb as RecvBufSpec<T>>::Out: PushComponent<()>,
            Push1<<$rb as RecvBufSpec<T>>::Out>: Finalize,
        {
            type Output = FinalOf<Push1<<$rb as RecvBufSpec<T>>::Out>>;

            fn run(self, comm: &Communicator) -> Result<Self::Output> {
                let (src, tag) = recv_meta(&self.meta);
                let (bytes, status) = comm.raw().recv_bytes(src, tag)?;
                if let Some(expected) = self.meta.recv_count {
                    if expected != status.count::<T>() {
                        return Err(kmp_mpi::MpiError::Truncated {
                            message_bytes: status.bytes,
                            buffer_bytes: expected * std::mem::size_of::<T>(),
                        });
                    }
                }
                // Adopt the delivered payload: one copy into prepared
                // buffers, zero for library-allocated byte targets.
                let rb_out = self.recv_buf.adopt(bytes)?;
                Ok(rb_out.push_component(()).finalize())
            }
        }
    )+};
}

plain_recv_impls!(
    [] Absent,
    ['a, P: crate::params::ResizePolicy,] crate::params::RecvBuf<&'a mut Vec<T>, P>,
    [P: crate::params::ResizePolicy,] crate::params::RecvBuf<Vec<T>, P>,
);

// ---------------------------------------------------------------------------
// Non-blocking results
// ---------------------------------------------------------------------------

/// A non-blocking send in flight. An owned send buffer has **moved into
/// the transport** (zero-copy: the payload aliases its allocation);
/// [`NonBlockingSend::wait`] completes the request and hands the buffer
/// back (Fig. 6: `v = r1.wait()`).
#[must_use = "non-blocking operations must be completed with wait() or test()"]
pub struct NonBlockingSend<'a, H> {
    req: Request<'a>,
    hold: H,
}

impl<'a, H: ReclaimHold> NonBlockingSend<'a, H> {
    /// Blocks until the send completes, returning the moved-in buffer.
    pub fn wait(self) -> Result<H::Back> {
        self.req.wait()?;
        Ok(self.hold.finish())
    }

    /// Completion test: `Ok(Ok(buffer))` when complete, `Ok(Err(self))`
    /// when still pending.
    pub fn test(self) -> Result<std::result::Result<H::Back, Self>> {
        match self.req.test()? {
            kmp_mpi::request::TestOutcome::Ready(_) => Ok(Ok(self.hold.finish())),
            kmp_mpi::request::TestOutcome::Pending(req) => Ok(Err(NonBlockingSend {
                req,
                hold: self.hold,
            })),
        }
    }
}

/// A non-blocking receive in flight; the data is only accessible through
/// [`NonBlockingRecv::wait`] / [`NonBlockingRecv::test`] (§III-E: no read
/// of incomplete receive buffers).
#[must_use = "non-blocking operations must be completed with wait() or test()"]
pub struct NonBlockingRecv<'a, T> {
    req: Request<'a>,
    expected_count: Option<usize>,
    _elem: std::marker::PhantomData<T>,
}

impl<'a, T: Plain> NonBlockingRecv<'a, T> {
    /// Blocks until a message arrives and returns it.
    pub fn wait(self) -> Result<Vec<T>> {
        let completion = self.req.wait()?;
        let (data, status) = completion
            .into_vec::<T>()
            .expect("receive requests complete with a payload");
        check_count::<T>(self.expected_count, &data, status.bytes)?;
        Ok(data)
    }

    /// Completion test, mirroring the paper's `test()` returning
    /// `std::optional`: `Ok(Ok(Some(data)))` when complete,
    /// `Ok(Err(self))` when pending.
    pub fn test(self) -> Result<std::result::Result<Vec<T>, Self>> {
        match self.req.test()? {
            kmp_mpi::request::TestOutcome::Ready(c) => {
                let (data, status) = c
                    .into_vec::<T>()
                    .expect("receive requests complete with a payload");
                check_count::<T>(self.expected_count, &data, status.bytes)?;
                Ok(Ok(data))
            }
            kmp_mpi::request::TestOutcome::Pending(req) => Ok(Err(NonBlockingRecv {
                req,
                expected_count: self.expected_count,
                _elem: std::marker::PhantomData,
            })),
        }
    }
}

fn check_count<T>(expected: Option<usize>, data: &[T], bytes: usize) -> Result<()> {
    if let Some(expected) = expected {
        if data.len() != expected {
            return Err(kmp_mpi::MpiError::Truncated {
                message_bytes: bytes,
                buffer_bytes: expected * std::mem::size_of::<T>(),
            });
        }
    }
    Ok(())
}

/// Valid argument sets for [`Communicator::isend`] / `issend`.
pub trait IsendArgs<M> {
    /// The handback token the in-flight send stores; `wait()` resolves
    /// it to the moved-in container for owned send buffers, `()` for
    /// borrowed ones.
    type Hold: ReclaimHold;
    /// Starts the (standard-mode) send.
    fn run<'c>(self, comm: &'c Communicator) -> Result<NonBlockingSend<'c, Self::Hold>>;
    /// Starts the synchronous-mode send (completes on receiver match).
    fn run_sync<'c>(self, comm: &'c Communicator) -> Result<NonBlockingSend<'c, Self::Hold>>;
}

// ---------------------------------------------------------------------------
// Request pool
// ---------------------------------------------------------------------------

/// Type-erased entry of a [`RequestPool`].
trait Pooled<'a> {
    fn wait_boxed(self: Box<Self>) -> Result<()>;
    /// One non-blocking poll: `Ok(None)` when complete, `Ok(Some(self))`
    /// when still pending.
    #[allow(clippy::type_complexity)]
    fn test_boxed(self: Box<Self>) -> Result<Option<Box<dyn Pooled<'a> + 'a>>>;
    /// The underlying substrate request, so pool-level waits can
    /// register a parked waiter on its pending sources
    /// ([`kmp_mpi::completion`]) instead of polling.
    fn raw_request(&self) -> &Request<'a>;
}

impl<'a, H: ReclaimHold + 'a> Pooled<'a> for NonBlockingSend<'a, H> {
    fn wait_boxed(self: Box<Self>) -> Result<()> {
        self.wait().map(|_| ())
    }

    fn test_boxed(self: Box<Self>) -> Result<Option<Box<dyn Pooled<'a> + 'a>>> {
        match (*self).test()? {
            Ok(_) => Ok(None),
            Err(pending) => Ok(Some(Box::new(pending))),
        }
    }

    fn raw_request(&self) -> &Request<'a> {
        &self.req
    }
}

impl<'a, T: Plain> Pooled<'a> for NonBlockingRecv<'a, T> {
    fn wait_boxed(self: Box<Self>) -> Result<()> {
        self.wait().map(|_| ())
    }

    fn test_boxed(self: Box<Self>) -> Result<Option<Box<dyn Pooled<'a> + 'a>>> {
        match (*self).test()? {
            Ok(_) => Ok(None),
            Err(pending) => Ok(Some(Box::new(pending))),
        }
    }

    fn raw_request(&self) -> &Request<'a> {
        &self.req
    }
}

impl<'a, T: Plain, H: ReclaimHold + 'a> Pooled<'a>
    for crate::collectives::NonBlockingCollective<'a, T, H>
{
    fn wait_boxed(self: Box<Self>) -> Result<()> {
        self.wait_discard()
    }

    fn test_boxed(self: Box<Self>) -> Result<Option<Box<dyn Pooled<'a> + 'a>>> {
        match (*self).test_discard()? {
            Ok(()) => Ok(None),
            Err(pending) => Ok(Some(Box::new(pending))),
        }
    }

    fn raw_request(&self) -> &Request<'a> {
        self.raw_request()
    }
}

impl<'a, T: Plain> Pooled<'a> for crate::collectives::NonBlockingBcast<'a, T> {
    fn wait_boxed(self: Box<Self>) -> Result<()> {
        self.wait_discard()
    }

    fn test_boxed(self: Box<Self>) -> Result<Option<Box<dyn Pooled<'a> + 'a>>> {
        match (*self).test_discard()? {
            Ok(()) => Ok(None),
            Err(pending) => Ok(Some(Box::new(pending))),
        }
    }

    fn raw_request(&self) -> &Request<'a> {
        self.raw_request()
    }
}

/// Collects non-blocking operations for bulk completion (§III-E's request
/// pools). Values carried by the operations are discarded on completion;
/// await operations individually when their results are needed.
#[derive(Default)]
pub struct RequestPool<'a> {
    entries: Vec<Box<dyn Pooled<'a> + 'a>>,
    /// Stable id per entry, parallel to `entries` — the key of each
    /// standing registration in `session` (positions shift as entries
    /// retire; ids never do).
    ids: Vec<usize>,
    next_id: usize,
    /// Standing registrations kept across `wait_any` calls for pools of
    /// plain receives ([`kmp_mpi::PoolSession`]): each pending receive
    /// registers once, each completion retires one registration —
    /// draining n receives costs O(n) registrations total instead of
    /// re-registering every survivor on every park. Torn down on any
    /// mutation of the pool.
    session: Option<kmp_mpi::PoolSession>,
}

impl<'a> RequestPool<'a> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        RequestPool::default()
    }

    fn push_entry(&mut self, entry: Box<dyn Pooled<'a> + 'a>) {
        // Mutation invalidates the session (its registrations no longer
        // cover the whole pool); dropping it deregisters everything.
        self.session = None;
        self.entries.push(entry);
        self.ids.push(self.next_id);
        self.next_id += 1;
    }

    /// Submits a non-blocking send.
    pub fn submit_send<H: ReclaimHold + 'a>(&mut self, op: NonBlockingSend<'a, H>) {
        self.push_entry(Box::new(op));
    }

    /// Submits a non-blocking receive.
    pub fn submit_recv<T: Plain>(&mut self, op: NonBlockingRecv<'a, T>) {
        self.push_entry(Box::new(op));
    }

    /// Submits a non-blocking collective (`iallgatherv`, `ialltoallv`,
    /// `iallreduce`, …). The carried values are discarded on completion;
    /// await the future individually when its result is needed.
    pub fn submit_collective<T: Plain, H: ReclaimHold + 'a>(
        &mut self,
        op: crate::collectives::NonBlockingCollective<'a, T, H>,
    ) {
        self.push_entry(Box::new(op));
    }

    /// Submits a non-blocking broadcast.
    pub fn submit_bcast<T: Plain>(&mut self, op: crate::collectives::NonBlockingBcast<'a, T>) {
        self.push_entry(Box::new(op));
    }

    /// Number of pending operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the pool holds no operations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Completes all pooled operations (mirrors `MPI_Waitall`).
    pub fn wait_all(mut self) -> Result<()> {
        self.session = None;
        for e in self.entries {
            e.wait_boxed()?;
        }
        Ok(())
    }

    /// One non-blocking sweep of the `wait_any` loop: tests entries in
    /// order until one completes.
    fn sweep_any(&mut self) -> Result<Option<usize>> {
        let mut ready: Option<usize> = None;
        let mut erred = None;
        let mut kept: Vec<Box<dyn Pooled<'a> + 'a>> = Vec::with_capacity(self.entries.len());
        let mut kept_ids: Vec<usize> = Vec::with_capacity(self.ids.len());
        let prior_ids = std::mem::take(&mut self.ids);
        for ((i, entry), id) in std::mem::take(&mut self.entries)
            .into_iter()
            .enumerate()
            .zip(prior_ids)
        {
            if ready.is_some() || erred.is_some() {
                kept.push(entry);
                kept_ids.push(id);
                continue;
            }
            match entry.test_boxed() {
                Ok(None) => {
                    ready = Some(i);
                    if let Some(sess) = &mut self.session {
                        sess.complete(id);
                    }
                }
                Ok(Some(pending)) => {
                    kept.push(pending);
                    kept_ids.push(id);
                }
                // The erroring operation is consumed; the rest stay
                // pooled so survivors remain completable.
                Err(e) => {
                    erred = Some(e);
                    if let Some(sess) = &mut self.session {
                        sess.complete(id);
                    }
                }
            }
        }
        self.entries = kept;
        self.ids = kept_ids;
        match erred {
            Some(e) => Err(e),
            None => Ok(ready),
        }
    }

    /// Blocks until *one* pooled operation completes (mirrors
    /// `MPI_Waitany`), removing it. Returns its index at call time, or
    /// `None` for an empty pool; later entries shift down by one.
    ///
    /// Event-driven: pools of plain receives keep a standing-registration
    /// session across calls ([`kmp_mpi::PoolSession`]) — each completion
    /// retires one registration and the next call parks with **zero**
    /// re-registration, so draining n receives is O(n) registrations
    /// total. Mixed pools park transiently with one waiter registered on
    /// every pending operation's sources ([`kmp_mpi::completion`]) — the
    /// §III-E ownership-safe futures gain the substrate's wakeup latency
    /// with no change to their API.
    pub fn wait_any(&mut self) -> Result<Option<usize>> {
        if self.entries.is_empty() {
            self.session = None;
            return Ok(None);
        }
        loop {
            if self.session.is_some() {
                let step = self.session.as_mut().expect("checked").next_signalled();
                match step {
                    kmp_mpi::PoolStep::Signalled(id) => {
                        let Some(pos) = self.ids.iter().position(|&x| x == id) else {
                            continue;
                        };
                        let entry = self.entries.remove(pos);
                        self.ids.remove(pos);
                        match entry.test_boxed() {
                            Ok(None) => {
                                if let Some(sess) = self.session.as_mut() {
                                    sess.complete(id);
                                }
                                return Ok(Some(pos));
                            }
                            Ok(Some(pending)) => {
                                // Spurious signal: one push wakes every
                                // standing entry whose selector matches,
                                // so siblings of the real recipient test
                                // pending. Their registrations are still
                                // in place — keep the session and wait
                                // for the next signal.
                                self.entries.insert(pos, pending);
                                self.ids.insert(pos, id);
                                continue;
                            }
                            Err(e) => {
                                // The erroring entry is consumed (like
                                // the sweep); retire its registration so
                                // survivors keep a consistent session.
                                if let Some(sess) = self.session.as_mut() {
                                    sess.complete(id);
                                }
                                return Err(e);
                            }
                        }
                    }
                    kmp_mpi::PoolStep::Interrupted => self.session = None,
                }
            }
            let epoch = kmp_mpi::park_epoch(self.entries[0].raw_request());
            if let Some(i) = self.sweep_any()? {
                return Ok(Some(i));
            }
            let pairs: Vec<(usize, &Request<'a>)> = self
                .ids
                .iter()
                .zip(&self.entries)
                .map(|(&id, e)| (id, e.raw_request()))
                .collect();
            if let Some(sess) = kmp_mpi::PoolSession::build(&pairs, epoch) {
                self.session = Some(sess);
                continue;
            }
            let refs: Vec<&Request<'a>> = self.entries.iter().map(|e| e.raw_request()).collect();
            if let kmp_mpi::ParkOutcome::Ready(i) = kmp_mpi::park_any(&refs, epoch) {
                // Targeted wakeup: re-test only the fired entry. A
                // still-pending outcome (its engine advanced without
                // finishing) falls through to the next full sweep.
                let entry = self.entries.remove(i);
                let id = self.ids.remove(i);
                match entry.test_boxed()? {
                    None => return Ok(Some(i)),
                    Some(pending) => {
                        self.entries.insert(i, pending);
                        self.ids.insert(i, id);
                    }
                }
            }
        }
    }

    /// Blocks until *at least one* pooled operation completes (mirrors
    /// `MPI_Waitsome`), removing all completed ones. Returns their
    /// indices at call time, in order; an empty pool yields an empty
    /// vector. Event-driven, like [`RequestPool::wait_any`].
    pub fn wait_some(&mut self) -> Result<Vec<usize>> {
        // wait_some retires an unpredictable subset; simpler to drop the
        // session (deregistering everything) than to patch it up.
        self.session = None;
        if self.entries.is_empty() {
            return Ok(Vec::new());
        }
        loop {
            let epoch = kmp_mpi::park_epoch(self.entries[0].raw_request());
            let mut done = Vec::new();
            let mut erred = None;
            let mut kept: Vec<Box<dyn Pooled<'a> + 'a>> = Vec::with_capacity(self.entries.len());
            let mut kept_ids: Vec<usize> = Vec::with_capacity(self.ids.len());
            let prior_ids = std::mem::take(&mut self.ids);
            for ((i, entry), id) in std::mem::take(&mut self.entries)
                .into_iter()
                .enumerate()
                .zip(prior_ids)
            {
                if erred.is_some() {
                    kept.push(entry);
                    kept_ids.push(id);
                    continue;
                }
                match entry.test_boxed() {
                    Ok(None) => done.push(i),
                    Ok(Some(pending)) => {
                        kept.push(pending);
                        kept_ids.push(id);
                    }
                    Err(e) => erred = Some(e),
                }
            }
            self.entries = kept;
            self.ids = kept_ids;
            if let Some(e) = erred {
                return Err(e);
            }
            if !done.is_empty() {
                return Ok(done);
            }
            let refs: Vec<&Request<'a>> = self.entries.iter().map(|e| e.raw_request()).collect();
            let _ = kmp_mpi::park_any(&refs, epoch);
        }
    }
}

/// A request pool with a **fixed number of slots** (§III-E: the paper
/// describes this variant as the designed extension of the unbounded
/// pool): submitting into a full pool first completes the oldest pending
/// operation, bounding the number of concurrent non-blocking requests —
/// and with it, buffer memory held by in-flight sends.
pub struct BoundedRequestPool<'a> {
    slots: std::collections::VecDeque<Box<dyn Pooled<'a> + 'a>>,
    capacity: usize,
}

impl<'a> BoundedRequestPool<'a> {
    /// Creates a pool with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a request pool needs at least one slot");
        BoundedRequestPool {
            slots: std::collections::VecDeque::new(),
            capacity,
        }
    }

    /// Number of in-flight operations.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no operations are in flight.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Maximum number of concurrent operations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn make_room(&mut self) -> Result<()> {
        while self.slots.len() >= self.capacity {
            let oldest = self.slots.pop_front().expect("non-empty at capacity");
            oldest.wait_boxed()?;
        }
        Ok(())
    }

    /// Submits a non-blocking send, completing the oldest operation
    /// first if the pool is full.
    pub fn submit_send<H: ReclaimHold + 'a>(&mut self, op: NonBlockingSend<'a, H>) -> Result<()> {
        self.make_room()?;
        self.slots.push_back(Box::new(op));
        Ok(())
    }

    /// Submits a non-blocking receive, completing the oldest operation
    /// first if the pool is full.
    pub fn submit_recv<T: Plain>(&mut self, op: NonBlockingRecv<'a, T>) -> Result<()> {
        self.make_room()?;
        self.slots.push_back(Box::new(op));
        Ok(())
    }

    /// Submits a non-blocking collective, completing the oldest operation
    /// first if the pool is full — bounding both in-flight requests and
    /// the buffer memory held by moved-in send containers.
    pub fn submit_collective<T: Plain, H: ReclaimHold + 'a>(
        &mut self,
        op: crate::collectives::NonBlockingCollective<'a, T, H>,
    ) -> Result<()> {
        self.make_room()?;
        self.slots.push_back(Box::new(op));
        Ok(())
    }

    /// Completes all remaining operations.
    pub fn wait_all(mut self) -> Result<()> {
        while let Some(op) = self.slots.pop_front() {
            op.wait_boxed()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Communicator methods
// ---------------------------------------------------------------------------

impl Communicator {
    /// Blocking send (wraps `MPI_Send`). Parameters: `send_buf` and
    /// `destination` (required), `tag` (default 0). Serialized payloads
    /// are sent with `send_buf(as_serialized(&data))`.
    pub fn send<M, A>(&self, args: A) -> Result<()>
    where
        A: IntoArgs,
        A::Out: SendArgs<M>,
    {
        args.into_args().run(self)
    }

    /// Blocking receive (wraps `MPI_Recv`). Parameters: `source` (default
    /// any), `tag` (default any), `recv_buf`, `recv_count` (optional
    /// length assertion). Returns the received data by value unless
    /// storage was passed by reference.
    pub fn recv<M, A>(&self, args: A) -> Result<<A::Out as RecvArgs<M>>::Output>
    where
        A: IntoArgs,
        A::Out: RecvArgs<M>,
    {
        args.into_args().run(self)
    }

    /// Non-blocking send (wraps `MPI_Isend`). Owned send buffers are
    /// moved into the returned [`NonBlockingSend`] and handed back by
    /// `wait()` — the ownership-based safety of §III-E (Fig. 6).
    pub fn isend<M, A>(
        &self,
        args: A,
    ) -> Result<NonBlockingSend<'_, <A::Out as IsendArgs<M>>::Hold>>
    where
        A: IntoArgs,
        A::Out: IsendArgs<M>,
    {
        args.into_args().run(self)
    }

    /// Non-blocking synchronous-mode send (wraps `MPI_Issend`): completes
    /// only once the receiver has matched the message. The NBX sparse
    /// all-to-all (§V-A) builds on this.
    pub fn issend<M, A>(
        &self,
        args: A,
    ) -> Result<NonBlockingSend<'_, <A::Out as IsendArgs<M>>::Hold>>
    where
        A: IntoArgs,
        A::Out: IsendArgs<M>,
    {
        args.into_args().run_sync(self)
    }

    /// Non-blocking receive (wraps `MPI_Irecv`). Parameters: `source`
    /// (default any), `tag` (default any), `recv_count` (optional length
    /// assertion). The data is only accessible via `wait()`/`test()`.
    pub fn irecv<T: Plain, A>(&self, args: A) -> Result<NonBlockingRecv<'_, T>>
    where
        A: IntoArgs,
        A::Out: IrecvArgs,
    {
        let args = args.into_args().into_meta();
        let (src, tag) = recv_meta(&args);
        let req = self.raw().irecv(src, tag);
        Ok(NonBlockingRecv {
            req,
            expected_count: args.recv_count,
            _elem: std::marker::PhantomData,
        })
    }
}

/// Argument sets valid for `irecv`: scalar parameters only (the receive
/// buffer is always produced by the completion).
pub trait IrecvArgs {
    /// Extracts the scalar parameters.
    fn into_meta(self) -> Meta;
}

impl IrecvArgs for ArgSet<Absent, Absent, Absent, Absent, Absent, Absent, Absent, Absent> {
    fn into_meta(self) -> Meta {
        self.meta
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::Universe;

    #[test]
    fn blocking_send_recv() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                comm.send((send_buf(&[1u32, 2, 3][..]), destination(1)))
                    .unwrap();
            } else {
                let v: Vec<u32> = comm.recv((source(0),)).unwrap();
                assert_eq!(v, vec![1, 2, 3]);
            }
        });
    }

    #[test]
    fn send_with_tag_recv_selective() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                comm.send((send_buf(&vec![1u8]), destination(1), tag(7)))
                    .unwrap();
                comm.send((send_buf(&vec![2u8]), destination(1), tag(8)))
                    .unwrap();
            } else {
                let v8: Vec<u8> = comm.recv((source(0), tag(8))).unwrap();
                let v7: Vec<u8> = comm.recv((source(0), tag(7))).unwrap();
                assert_eq!((v7, v8), (vec![1], vec![2]));
            }
        });
    }

    #[test]
    fn recv_into_provided_buffer() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                comm.send((send_buf(&vec![9u64; 4]), destination(1)))
                    .unwrap();
            } else {
                let mut buf = Vec::new();
                comm.recv::<u64, _>((recv_buf(&mut buf).resize_to_fit(),))
                    .unwrap();
                assert_eq!(buf, vec![9; 4]);
            }
        });
    }

    #[test]
    fn isend_moves_and_returns_buffer() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                // Fig. 6: the buffer is moved into the call and returned
                // by wait() once the operation completed.
                let v = vec![1u32, 2, 3];
                let r1 = comm.isend((send_buf(v), destination(1))).unwrap();
                let v = r1.wait().unwrap();
                assert_eq!(v, vec![1, 2, 3]);
            } else {
                let data: Vec<u32> = comm.recv((source(0),)).unwrap();
                assert_eq!(data, vec![1, 2, 3]);
            }
        });
    }

    #[test]
    fn irecv_data_only_after_wait() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                comm.send((send_buf(&vec![5u16; 42]), destination(1)))
                    .unwrap();
            } else {
                // Fig. 6: r2 = comm.irecv<int>(recv_count(42)).
                let r2 = comm.irecv::<u16, _>(recv_count(42)).unwrap();
                let data = r2.wait().unwrap();
                assert_eq!(data.len(), 42);
            }
        });
    }

    #[test]
    fn irecv_test_returns_pending_then_data() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 1 {
                let mut r = comm.irecv::<u8, _>(()).unwrap();
                let data = loop {
                    match r.test().unwrap() {
                        Ok(data) => break data,
                        Err(pending) => {
                            r = pending;
                            std::thread::yield_now();
                        }
                    }
                };
                assert_eq!(data, vec![3]);
            } else {
                std::thread::sleep(std::time::Duration::from_millis(5));
                comm.send((send_buf(&vec![3u8]), destination(1))).unwrap();
            }
        });
    }

    #[test]
    fn issend_completes_after_match() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                let r = comm.issend((send_buf(vec![1u8]), destination(1))).unwrap();
                let v = r.wait().unwrap();
                assert_eq!(v, vec![1]);
            } else {
                let v: Vec<u8> = comm.recv((source(0),)).unwrap();
                assert_eq!(v, vec![1]);
            }
        });
    }

    #[test]
    fn request_pool_waits_all() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                let mut pool = crate::p2p::RequestPool::new();
                for peer in 1..3 {
                    let r = comm
                        .isend((send_buf(vec![peer as u8]), destination(peer)))
                        .unwrap();
                    pool.submit_send(r);
                }
                assert_eq!(pool.len(), 2);
                pool.wait_all().unwrap();
            } else {
                let v: Vec<u8> = comm.recv((source(0),)).unwrap();
                assert_eq!(v, vec![comm.rank() as u8]);
            }
        });
    }

    #[test]
    fn recv_count_mismatch_errors() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                comm.send((send_buf(&vec![1u8; 3]), destination(1)))
                    .unwrap();
            } else {
                let r = comm.recv::<u8, _>((recv_count(5),));
                assert!(r.is_err());
            }
        });
    }

    #[test]
    fn bounded_pool_limits_in_flight_requests() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                let mut pool = crate::p2p::BoundedRequestPool::with_capacity(3);
                for i in 0..10u8 {
                    let r = comm.isend((send_buf(vec![i]), destination(1))).unwrap();
                    pool.submit_send(r).unwrap();
                    assert!(pool.len() <= 3, "pool exceeded its capacity");
                }
                pool.wait_all().unwrap();
            } else {
                for i in 0..10u8 {
                    let v: Vec<u8> = comm.recv((source(0),)).unwrap();
                    assert_eq!(v, vec![i]);
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn bounded_pool_rejects_zero_capacity() {
        let _ = crate::p2p::BoundedRequestPool::with_capacity(0);
    }

    #[test]
    fn pool_wait_any_and_wait_some() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                let mut pool = crate::p2p::RequestPool::new();
                assert!(pool.wait_any().unwrap().is_none());
                pool.submit_recv(comm.irecv::<u8, _>(source(1)).unwrap());
                pool.submit_recv(comm.irecv::<u8, _>(source(2)).unwrap());
                let first = pool.wait_any().unwrap().expect("one completes");
                assert!(first <= 1);
                assert_eq!(pool.len(), 1);
                let rest = pool.wait_some().unwrap();
                assert_eq!(rest, vec![0]);
                assert!(pool.is_empty());
            } else {
                std::thread::sleep(std::time::Duration::from_millis(comm.rank() as u64 * 2));
                comm.send((send_buf(&[comm.rank() as u8][..]), destination(0)))
                    .unwrap();
            }
        });
    }

    #[test]
    fn pool_wait_any_parks_instead_of_polling() {
        // The park-before-send ordering is timing-dependent, so the
        // scenario retries a few times — the pool must demonstrably
        // park (claimed multi-waiter) on at least one attempt.
        for attempt in 0..5 {
            let parked = Universe::run(2, |comm| {
                let comm = Communicator::new(comm);
                if comm.rank() == 0 {
                    let mut pool = crate::p2p::RequestPool::new();
                    pool.submit_recv(comm.irecv::<u8, _>(source(1)).unwrap());
                    let first = pool.wait_any().unwrap();
                    assert_eq!(first, Some(0));
                    assert!(pool.is_empty());
                    // The sender ran well after the pool went to sleep,
                    // so its push claimed the parked multi-waiter — the
                    // pool waits through the substrate's parking
                    // protocol, not a poll loop.
                    comm.raw().mailbox_stats().multi_wakeups >= 1
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                    comm.send((send_buf(&[7u8][..]), destination(0))).unwrap();
                    true
                }
            })
            .into_iter()
            .all(|ok| ok);
            if parked {
                return;
            }
            eprintln!("attempt {attempt}: the send outran the park; retrying");
        }
        panic!("the pool never parked across 5 attempts — wait_any is polling");
    }

    /// Satellite of the persistent-ops PR: draining an n-receive pool
    /// through `wait_any` must make O(n) waiter registrations total (one
    /// standing registration per receive, retired as each completes) —
    /// not the O(n²/2) of transiently re-registering every survivor on
    /// every park. Pinned by the mailbox's monotonic registration
    /// counter.
    #[test]
    fn pool_wait_any_drain_makes_one_registration_per_receive() {
        const N: u64 = 12;
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                let mut pool = crate::p2p::RequestPool::new();
                for _ in 0..N {
                    pool.submit_recv(comm.irecv::<u8, _>(source(1)).unwrap());
                }
                let before = comm.raw().mailbox_stats().notify_registrations;
                let mut drained = 0;
                while pool.wait_any().unwrap().is_some() {
                    drained += 1;
                }
                assert_eq!(drained, N);
                let after = comm.raw().mailbox_stats().notify_registrations;
                assert!(
                    after - before <= N,
                    "drained {N} receives with {} registrations — the pool \
                     is re-registering instead of keeping its session",
                    after - before
                );
            } else {
                for i in 0..N {
                    // Stagger so the pool actually parks between
                    // completions instead of sweeping everything up.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    comm.send((send_buf(&[i as u8][..]), destination(0)))
                        .unwrap();
                }
            }
        });
    }

    #[test]
    fn pool_mixes_p2p_and_collectives() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let mut pool = crate::p2p::RequestPool::new();
            // Collectives must be started in the same order on all ranks.
            pool.submit_collective(
                comm.iallreduce((send_buf(vec![1u64]), op(ops::Sum)))
                    .unwrap(),
            );
            pool.submit_collective(
                comm.iallgatherv(send_buf(vec![comm.rank() as u32]))
                    .unwrap(),
            );
            if comm.rank() == 0 {
                pool.submit_send(comm.isend((send_buf(vec![7u8]), destination(1))).unwrap());
            } else {
                pool.submit_recv(comm.irecv::<u8, _>(source(0)).unwrap());
            }
            assert_eq!(pool.len(), 3);
            pool.wait_all().unwrap();
        });
    }

    #[test]
    fn bounded_pool_accepts_collectives() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let mut pool = crate::p2p::BoundedRequestPool::with_capacity(2);
            for _ in 0..5 {
                let fut = comm
                    .iallreduce((send_buf(vec![1u32]), op(ops::Sum)))
                    .unwrap();
                pool.submit_collective(fut).unwrap();
                assert!(pool.len() <= 2);
            }
            pool.wait_all().unwrap();
        });
    }

    #[test]
    #[should_panic(expected = "missing required parameter `destination`")]
    fn send_without_destination_panics() {
        Universe::run(1, |comm| {
            let comm = Communicator::new(comm);
            let _ = comm.send((send_buf(&vec![1u8]),));
        });
    }
}
