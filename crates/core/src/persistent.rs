//! Persistent operations with named parameters (MPI-4 `MPI_*_init`,
//! surfaced through the paper's §III-B parameter style).
//!
//! A persistent handle freezes the *plan* of an operation once — the
//! validated envelope, the selected collective algorithm, the internal
//! tags, and the substrate's standing completion registrations — and
//! then replays it: every [`Persistent::start`] /
//! [`Persistent::wait`] cycle runs with zero per-call setup (no tag
//! allocation, no algorithm selection, no waiter re-registration; see
//! [`kmp_mpi::persistent`] for the substrate-level contract).
//!
//! ```
//! use kamping::prelude::*;
//!
//! kmp_mpi::Universe::run(4, |comm| {
//!     let comm = Communicator::new(comm);
//!     let mut sum = comm
//!         .allreduce_init((send_buf(&[comm.rank() as u64][..]), op(ops::Sum)))
//!         .unwrap();
//!     for _ in 0..3 {
//!         sum.start().unwrap();
//!         assert_eq!(sum.wait().unwrap(), vec![6]);
//!     }
//! });
//! ```
//!
//! The payload of a frozen plan is refreshed *between* cycles with
//! [`Persistent::set_data`]; the plan itself (peers, counts, algorithm)
//! never changes — create a new handle for a new shape.

use std::marker::PhantomData;

use kmp_mpi::request::Completion;
use kmp_mpi::{Plain, Result, Src};

use crate::communicator::Communicator;
use crate::params::argset::{ArgSet, IntoArgs};
use crate::params::slots::{ProvidedCounts, ProvidesOp, ProvidesSendData};
use crate::params::{Absent, Meta, OpParam, SendBuf, SendRecvBuf};

/// Decodes a cycle's completion uniformly: sends yield nothing,
/// single-message completions one block, v-collectives one block per
/// rank (each copied once, straight into the result vector).
fn decode<T: Plain>(completion: Completion) -> (Vec<T>, Vec<usize>) {
    match completion {
        Completion::Done => (Vec::new(), Vec::new()),
        Completion::Message(bytes, _) => {
            let data: Vec<T> = kmp_mpi::bytes_to_vec(&bytes);
            let n = data.len();
            (data, vec![n])
        }
        Completion::Blocks(blocks) => {
            let mut data = Vec::with_capacity(
                blocks.iter().map(|b| b.len()).sum::<usize>() / std::mem::size_of::<T>().max(1),
            );
            let mut counts = Vec::with_capacity(blocks.len());
            for b in &blocks {
                counts.push(kmp_mpi::plain::extend_vec_from_bytes(&mut data, b));
            }
            (data, counts)
        }
    }
}

/// A typed persistent operation: the frozen plan plus this rank's
/// current payload. Created by the `Communicator::*_init` methods;
/// cycled with [`start`](Persistent::start) /
/// [`wait`](Persistent::wait) (or [`test`](Persistent::test)).
///
/// Unlike the one-shot futures ([`crate::p2p::NonBlockingRecv`],
/// [`crate::collectives::NonBlockingCollective`]), a persistent handle
/// is reused in place — completing a cycle returns the handle to the
/// *inactive* state instead of consuming it, mirroring MPI's fourth
/// request lifecycle (inactive → started → complete → restartable).
#[must_use = "a persistent operation does nothing until start() is called"]
pub struct Persistent<'a, T: Plain> {
    req: kmp_mpi::PersistentRequest<'a>,
    _elem: PhantomData<T>,
}

impl<'a, T: Plain> Persistent<'a, T> {
    fn wrap(req: kmp_mpi::PersistentRequest<'a>) -> Self {
        Persistent {
            req,
            _elem: PhantomData,
        }
    }

    /// Starts one cycle (mirrors `MPI_Start`): O(messages posted), no
    /// per-call setup. Errors if the previous cycle is still active.
    pub fn start(&mut self) -> Result<()> {
        self.req.start()
    }

    /// Blocks until the started cycle completes and returns its data
    /// (empty for sends). The handle is inactive and restartable
    /// afterwards.
    pub fn wait(&mut self) -> Result<Vec<T>> {
        Ok(decode::<T>(self.req.wait()?).0)
    }

    /// Like [`wait`](Persistent::wait), additionally returning per-rank
    /// element counts for block-structured completions (allgather /
    /// alltoallv plans).
    pub fn wait_with_counts(&mut self) -> Result<(Vec<T>, Vec<usize>)> {
        Ok(decode::<T>(self.req.wait()?))
    }

    /// Non-blocking completion check: `Ok(Some(data))` finishes the
    /// cycle, `Ok(None)` leaves it active.
    pub fn test(&mut self) -> Result<Option<Vec<T>>> {
        Ok(self.req.test()?.map(|c| decode::<T>(c).0))
    }

    /// Replaces the data the next cycle sends (rejected while a cycle
    /// is active; alltoallv plans must keep the frozen total length).
    pub fn set_data(&mut self, data: &[T]) -> Result<()> {
        self.req.set_data(data)
    }

    /// True between a `start` and the observation of its completion.
    pub fn is_active(&self) -> bool {
        self.req.is_active()
    }

    /// Completed cycles so far.
    pub fn cycles(&self) -> u64 {
        self.req.cycles()
    }

    /// The substrate request, for interoperability (e.g.
    /// [`kmp_mpi::start_all`] over a mixed batch).
    pub fn raw_mut(&mut self) -> &mut kmp_mpi::PersistentRequest<'a> {
        &mut self.req
    }
}

// ---------------------------------------------------------------------------
// Argument traits
// ---------------------------------------------------------------------------

/// Valid argument sets for [`Communicator::send_init`]: `send_buf` and
/// `destination` (required), `tag` (default 0). The buffer is captured
/// into the frozen plan; refresh it per cycle with
/// [`Persistent::set_data`].
pub trait SendInitArgs<T: Plain> {
    /// Freezes the plan.
    fn run<'c>(self, comm: &'c Communicator) -> Result<Persistent<'c, T>>;
}

impl<T, B> SendInitArgs<T>
    for ArgSet<SendBuf<B>, Absent, Absent, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
{
    fn run<'c>(self, comm: &'c Communicator) -> Result<Persistent<'c, T>> {
        let dest = self
            .meta
            .destination
            .expect("missing required parameter `destination` (pass destination(rank))");
        let tag = self.meta.tag.unwrap_or(0);
        let req = comm
            .raw()
            .send_init(self.send_buf.send_slice(), dest, tag)?;
        Ok(Persistent::wrap(req))
    }
}

/// Valid argument sets for [`Communicator::recv_init`]: `source`
/// (required and concrete — a wildcard cannot be frozen into a standing
/// registration) and `tag` (default 0).
pub trait RecvInitArgs {
    /// Extracts the scalar parameters.
    fn into_meta(self) -> Meta;
}

impl RecvInitArgs for ArgSet<Absent, Absent, Absent, Absent, Absent, Absent, Absent, Absent> {
    fn into_meta(self) -> Meta {
        self.meta
    }
}

/// Valid argument sets for [`Communicator::bcast_init`]: `send_recv_buf`
/// holding an owned `Vec<T>` (the root's broadcast content; other ranks
/// pass an empty vector) plus optional `root` (default 0).
pub trait BcastInitArgs<T: Plain> {
    /// Freezes the plan.
    fn run<'c>(self, comm: &'c Communicator) -> Result<Persistent<'c, T>>;
}

impl<T> BcastInitArgs<T>
    for ArgSet<Absent, SendRecvBuf<Vec<T>>, Absent, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
{
    fn run<'c>(self, comm: &'c Communicator) -> Result<Persistent<'c, T>> {
        let root = self.meta.root.unwrap_or(0);
        crate::assertions::check_same_root(comm, root)?;
        let buf = self.send_recv_buf.0;
        let req = if comm.rank() == root {
            comm.raw().bcast_init(Some(&buf), root)?
        } else {
            comm.raw().bcast_init::<T>(None, root)?
        };
        Ok(Persistent::wrap(req))
    }
}

/// Valid argument sets for [`Communicator::allreduce_init`]: `send_buf`
/// and `op` (both required).
pub trait AllreduceInitArgs<T: Plain> {
    /// Freezes the plan.
    fn run<'c>(self, comm: &'c Communicator) -> Result<Persistent<'c, T>>;
}

impl<T, B, O> AllreduceInitArgs<T>
    for ArgSet<SendBuf<B>, Absent, Absent, Absent, Absent, Absent, Absent, OpParam<O>>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    OpParam<O>: ProvidesOp<T>,
    <OpParam<O> as ProvidesOp<T>>::Op: 'static,
{
    fn run<'c>(self, comm: &'c Communicator) -> Result<Persistent<'c, T>> {
        let op = self.op.into_op();
        let req = comm.raw().allreduce_init(self.send_buf.send_slice(), op)?;
        Ok(Persistent::wrap(req))
    }
}

/// Valid argument sets for [`Communicator::allgather_init`]: `send_buf`
/// (required). Blocks may differ in length across ranks (the substrate
/// plan doubles as `MPI_Allgatherv_init`).
pub trait AllgatherInitArgs<T: Plain> {
    /// Freezes the plan.
    fn run<'c>(self, comm: &'c Communicator) -> Result<Persistent<'c, T>>;
}

impl<T, B> AllgatherInitArgs<T>
    for ArgSet<SendBuf<B>, Absent, Absent, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
{
    fn run<'c>(self, comm: &'c Communicator) -> Result<Persistent<'c, T>> {
        let req = comm.raw().allgather_init(self.send_buf.send_slice())?;
        Ok(Persistent::wrap(req))
    }
}

/// Valid argument sets for [`Communicator::alltoallv_init`]: `send_buf`
/// and `send_counts` (both required; the counts — and with them every
/// per-peer byte range — are frozen into the plan).
pub trait AlltoallvInitArgs<T: Plain> {
    /// Freezes the plan.
    fn run<'c>(self, comm: &'c Communicator) -> Result<Persistent<'c, T>>;
}

impl<T, B, SC> AlltoallvInitArgs<T>
    for ArgSet<SendBuf<B>, Absent, Absent, SC, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    SC: ProvidedCounts,
{
    fn run<'c>(self, comm: &'c Communicator) -> Result<Persistent<'c, T>> {
        let counts = self
            .send_counts
            .provided()
            .expect("send_counts is required");
        let req = comm
            .raw()
            .alltoallv_init(self.send_buf.send_slice(), counts)?;
        Ok(Persistent::wrap(req))
    }
}

// ---------------------------------------------------------------------------
// Communicator methods
// ---------------------------------------------------------------------------

impl Communicator {
    /// Creates a persistent send (wraps `MPI_Send_init`).
    ///
    /// Parameters: `send_buf` and `destination` (required), `tag`
    /// (default 0). Each [`Persistent::start`] posts the current
    /// payload; [`Persistent::set_data`] refreshes it between cycles.
    pub fn send_init<T, A>(&self, args: A) -> Result<Persistent<'_, T>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: SendInitArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Creates a persistent receive (wraps `MPI_Recv_init`).
    ///
    /// Parameters: `source` (required, concrete rank) and `tag`
    /// (default 0). The standing completion registration installed here
    /// serves every future cycle — the steady state re-registers
    /// nothing.
    pub fn recv_init<T, A>(&self, args: A) -> Result<Persistent<'_, T>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: RecvInitArgs,
    {
        let meta = args.into_args().into_meta();
        let src = match meta.source {
            Some(Src::Rank(r)) => r,
            _ => {
                return Err(kmp_mpi::MpiError::InvalidLayout(
                    "recv_init requires a concrete source(rank): a wildcard cannot be \
                     frozen into a persistent plan"
                        .into(),
                ))
            }
        };
        let req = self.raw().recv_init(src, meta.tag.unwrap_or(0))?;
        Ok(Persistent::wrap(req))
    }

    /// Creates a persistent broadcast (wraps `MPI_Bcast_init`).
    ///
    /// Parameters: `send_recv_buf` holding an owned `Vec<T>` (content on
    /// the root, empty elsewhere), `root` (default 0). The binomial
    /// tree, its internal tag, and the receivers' standing parent
    /// registration are frozen once; every rank's `wait()` returns the
    /// cycle's content.
    pub fn bcast_init<T, A>(&self, args: A) -> Result<Persistent<'_, T>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: BcastInitArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Creates a persistent all-reduce (wraps `MPI_Allreduce_init`).
    ///
    /// Parameters: `send_buf` and `op` (required). The reduction runs in
    /// strict rank order (safe for non-commutative operations); the
    /// algorithm is selected and its engine built once, at init.
    pub fn allreduce_init<T, A>(&self, args: A) -> Result<Persistent<'_, T>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: AllreduceInitArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Creates a persistent allgather (wraps `MPI_Allgather_init`; block
    /// lengths may differ per rank, so it covers `MPI_Allgatherv_init`
    /// too). `wait_with_counts()` also returns the per-rank counts.
    pub fn allgather_init<T, A>(&self, args: A) -> Result<Persistent<'_, T>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: AllgatherInitArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Creates a persistent personalized all-to-all (wraps
    /// `MPI_Alltoallv_init`). Parameters: `send_buf` and `send_counts`
    /// (required). The counts are frozen; `set_data` must keep the
    /// packed total.
    pub fn alltoallv_init<T, A>(&self, args: A) -> Result<Persistent<'_, T>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: AlltoallvInitArgs<T>,
    {
        args.into_args().run(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::Universe;

    #[test]
    fn persistent_send_recv_cycles() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                let mut send = comm
                    .send_init((send_buf(&[0u32][..]), destination(1), tag(3)))
                    .unwrap();
                for i in 0..4u32 {
                    send.set_data(&[i * 10]).unwrap();
                    send.start().unwrap();
                    assert!(send.wait().unwrap().is_empty());
                }
                assert_eq!(send.cycles(), 4);
            } else {
                let mut recv = comm.recv_init::<u32, _>((source(0), tag(3))).unwrap();
                for i in 0..4u32 {
                    recv.start().unwrap();
                    assert_eq!(recv.wait().unwrap(), vec![i * 10]);
                }
            }
        });
    }

    #[test]
    fn recv_init_rejects_wildcard_source() {
        Universe::run(1, |comm| {
            let comm = Communicator::new(comm);
            assert!(comm.recv_init::<u8, _>((any_source(),)).is_err());
        });
    }

    #[test]
    fn persistent_bcast_refreshes_per_cycle() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let data = if comm.rank() == 1 { vec![7u64] } else { vec![] };
            let mut bc = comm.bcast_init((send_recv_buf(data), root(1))).unwrap();
            for cycle in 0..3u64 {
                if comm.rank() == 1 {
                    bc.set_data(&[7 + cycle]).unwrap();
                }
                bc.start().unwrap();
                assert_eq!(bc.wait().unwrap(), vec![7 + cycle]);
            }
        });
    }

    #[test]
    fn persistent_allreduce_steady_state_issues_only_start() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mut sum = comm
                .allreduce_init((send_buf(&[comm.rank() as u64][..]), op(ops::Sum)))
                .unwrap();
            // Warm-up cycle, then count the steady state.
            sum.start().unwrap();
            assert_eq!(sum.wait().unwrap(), vec![6]);
            let before = comm.call_counts();
            for _ in 0..5 {
                sum.start().unwrap();
                assert_eq!(sum.wait().unwrap(), vec![6]);
            }
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("start"), 5);
            assert_eq!(delta.get("allreduce_init"), 0, "no re-initialization");
            assert_eq!(delta.total(), 5, "steady state issues only start");
        });
    }

    #[test]
    fn persistent_allgather_with_counts() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u16; comm.rank() + 1];
            let mut ag = comm.allgather_init(send_buf(&mine)).unwrap();
            for _ in 0..2 {
                ag.start().unwrap();
                let (all, counts) = ag.wait_with_counts().unwrap();
                assert_eq!(all, vec![0, 1, 1, 2, 2, 2]);
                assert_eq!(counts, vec![1, 2, 3]);
            }
        });
    }

    #[test]
    fn persistent_alltoallv_roundtrip() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let send = vec![comm.rank() as u64 * 10, comm.rank() as u64 * 10 + 1];
            let counts = vec![1usize, 1];
            let mut a2a = comm
                .alltoallv_init((send_buf(&send), send_counts(&counts)))
                .unwrap();
            for _ in 0..3 {
                a2a.start().unwrap();
                let got = a2a.wait().unwrap();
                assert_eq!(got, vec![comm.rank() as u64, 10 + comm.rank() as u64]);
            }
        });
    }

    #[test]
    fn free_reclaims_communicator() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let dup = comm.dup().unwrap();
            if dup.rank() == 0 {
                dup.raw().send(&[1u8], 1, 0).unwrap();
            } else {
                dup.raw().recv_vec::<u8>(0, 0).unwrap();
            }
            dup.free().unwrap();
            comm.barrier().unwrap();
        });
    }
}
