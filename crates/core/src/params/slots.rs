//! Slot-resolution traits: how each `ArgSet` slot participates in a call.
//!
//! A collective's blanket implementation constrains each slot with one of
//! these traits. Because each trait has exactly one implementation per
//! slot shape, the compiler monomorphizes precisely the code path the
//! user's parameter combination needs — the paper's `constexpr if`
//! mechanism (§III-H), expressed through trait dispatch. Missing required
//! parameters surface as unsatisfied trait bounds with
//! `#[diagnostic::on_unimplemented]` messages (§III-G's human-readable
//! compile errors).

use bytes::Bytes;
use kmp_mpi::op::ReduceOp;
use kmp_mpi::plain::{bytes_from_slice, bytes_into_vec, SharedPayload};
use kmp_mpi::Plain;

use super::containers::{AsSlice, ResizePolicy};
use super::{
    Absent, OpParam, RecvBuf, RecvCounts, RecvCountsOut, RecvDispls, RecvDisplsOut, SendBuf,
    SendCounts, SendCountsOut, SendDispls, SendDisplsOut, SendRecvBuf,
};

// ---------------------------------------------------------------------------
// Send data
// ---------------------------------------------------------------------------

/// A slot that provides send data (satisfied by `send_buf(..)`).
#[diagnostic::on_unimplemented(
    message = "missing required parameter `send_buf` (or the slot holds data of the wrong element type)",
    label = "this operation needs `send_buf(..)` with elements of type `{T}`",
    note = "pass e.g. `send_buf(&my_vec)`; for in-place operations use `send_recv_buf(..)` instead"
)]
pub trait ProvidesSendData<T> {
    /// View of the data to send.
    fn send_slice(&self) -> &[T];
}

impl<T: Plain, B: AsSlice<T>> ProvidesSendData<T> for SendBuf<B> {
    #[inline]
    fn send_slice(&self) -> &[T] {
        self.0.as_slice()
    }
}

/// Reclaims ownership of a send buffer after the payload has been copied
/// out: owned containers come back to the caller (the paper's
/// move-in/move-out of §III-E), borrowed ones yield `()`.
pub trait SendReclaim {
    /// What the caller gets back.
    type Back;
    /// Consumes the parameter, returning the container (if owned).
    fn reclaim(self) -> Self::Back;
}

impl<T> SendReclaim for SendBuf<Vec<T>> {
    type Back = Vec<T>;
    #[inline]
    fn reclaim(self) -> Vec<T> {
        self.0
    }
}

impl<B> SendReclaim for SendBuf<&B> {
    type Back = ();
    #[inline]
    fn reclaim(self) {}
}

impl<T> SendReclaim for SendBuf<&[T]> {
    type Back = ();
    #[inline]
    fn reclaim(self) {}
}

// ---------------------------------------------------------------------------
// Zero-copy transport handoff
// ---------------------------------------------------------------------------

/// The handback token a non-blocking operation stores until `wait()`:
/// resolves to the caller's reclaimed container (or `()` for borrowed
/// send buffers) once the operation has completed.
pub trait ReclaimHold {
    /// What the caller gets back.
    type Back;
    /// Resolves the hold after completion.
    fn finish(self) -> Self::Back;
}

impl ReclaimHold for () {
    type Back = ();
    #[inline]
    fn finish(self) {}
}

impl<T: Plain> ReclaimHold for SharedPayload<T> {
    type Back = Vec<T>;
    #[inline]
    fn finish(self) -> Vec<T> {
        self.take()
    }
}

/// Converts a send slot into the wire payload plus a [`ReclaimHold`].
///
/// Owned `Vec<T>` buffers **move into the transport**: the payload
/// aliases the vector's allocation (zero copies at call time) and the
/// hold reclaims it on `wait()` (§III-E's move-in/move-out). Borrowed
/// buffers are serialized with one counted copy and hold nothing.
pub trait SendToTransport<T: Plain>: ProvidesSendData<T> {
    /// The handback token stored by the in-flight operation.
    type Hold: ReclaimHold;

    /// Splits into the wire payload and the handback token.
    fn into_payload(self) -> (Bytes, Self::Hold);

    /// Like [`SendToTransport::into_payload`], but the wire payload is a
    /// repacked copy produced by `pack` (used when displacements reorder
    /// the buffer); the original container is still handed back.
    fn into_packed(self, pack: impl FnOnce(&[T]) -> Vec<T>) -> (Bytes, Self::Hold);
}

impl<T: Plain> SendToTransport<T> for SendBuf<Vec<T>> {
    type Hold = SharedPayload<T>;

    #[inline]
    fn into_payload(self) -> (Bytes, SharedPayload<T>) {
        let (hold, payload) = SharedPayload::new(self.0);
        (payload, hold)
    }

    #[inline]
    fn into_packed(self, pack: impl FnOnce(&[T]) -> Vec<T>) -> (Bytes, SharedPayload<T>) {
        let packed = pack(&self.0);
        (
            kmp_mpi::plain::bytes_from_vec(packed),
            SharedPayload::ready(self.0),
        )
    }
}

macro_rules! borrowed_send_to_transport {
    ($([$($gen:tt)*] $container:ty),+ $(,)?) => {$(
        impl<$($gen)* T: Plain> SendToTransport<T> for SendBuf<$container>
        where
            SendBuf<$container>: ProvidesSendData<T>,
        {
            type Hold = ();

            #[inline]
            fn into_payload(self) -> (Bytes, ()) {
                (bytes_from_slice(self.send_slice()), ())
            }

            #[inline]
            fn into_packed(self, pack: impl FnOnce(&[T]) -> Vec<T>) -> (Bytes, ()) {
                (kmp_mpi::plain::bytes_from_vec(pack(self.send_slice())), ())
            }
        }
    )+};
}

borrowed_send_to_transport!(
    ['a, B: AsSlice<T>,] &'a B,
    ['a,] &'a [T],
);

// ---------------------------------------------------------------------------
// Receive storage
// ---------------------------------------------------------------------------

/// A slot that can serve as receive storage.
///
/// Shapes: `Absent` (the library allocates a fresh vector and returns it
/// by value — the implicit receive-buffer out-parameter of §III-B),
/// `recv_buf(&mut v)` (written in place, nothing returned) and
/// `recv_buf(v)` (moved in, reused, returned by value).
#[diagnostic::on_unimplemented(
    message = "invalid `recv_buf` parameter for element type `{T}`",
    note = "pass `recv_buf(&mut my_vec)`, `recv_buf(my_vec)`, or omit the parameter to receive by value"
)]
pub trait RecvBufSpec<T: Plain> {
    /// The output component this slot contributes (`Vec<T>` or `()`).
    type Out;

    /// Prepares storage of (at least) `needed` elements, lets `fill`
    /// write into it, and produces the output component.
    fn apply<R>(
        self,
        needed: usize,
        fill: impl FnOnce(&mut [T]) -> kmp_mpi::Result<R>,
    ) -> kmp_mpi::Result<(R, Self::Out)>;

    /// Adopts a delivered payload directly into the slot's storage: a
    /// single copy into prepared buffers — and **zero** copies when the
    /// slot allocates its own `Vec<u8>`-shaped result and the payload is
    /// the unique view of its allocation.
    fn adopt(self, payload: Bytes) -> kmp_mpi::Result<Self::Out>;
}

impl<T: Plain> RecvBufSpec<T> for Absent {
    type Out = Vec<T>;

    #[inline]
    fn apply<R>(
        self,
        needed: usize,
        fill: impl FnOnce(&mut [T]) -> kmp_mpi::Result<R>,
    ) -> kmp_mpi::Result<(R, Vec<T>)> {
        let mut v = kmp_mpi::plain::zeroed_vec::<T>(needed);
        let r = fill(&mut v)?;
        Ok((r, v))
    }

    #[inline]
    fn adopt(self, payload: Bytes) -> kmp_mpi::Result<Vec<T>> {
        Ok(bytes_into_vec(payload))
    }
}

impl<T: Plain, P: ResizePolicy> RecvBufSpec<T> for RecvBuf<&mut Vec<T>, P> {
    type Out = ();

    #[inline]
    fn apply<R>(
        self,
        needed: usize,
        fill: impl FnOnce(&mut [T]) -> kmp_mpi::Result<R>,
    ) -> kmp_mpi::Result<(R, ())> {
        P::prepare(self.buf, needed)?;
        let r = fill(self.buf)?;
        Ok((r, ()))
    }

    #[inline]
    fn adopt(self, payload: Bytes) -> kmp_mpi::Result<()> {
        adopt_into::<T, P>(self.buf, payload)
    }
}

impl<T: Plain, P: ResizePolicy> RecvBufSpec<T> for RecvBuf<Vec<T>, P> {
    type Out = Vec<T>;

    #[inline]
    fn apply<R>(
        mut self,
        needed: usize,
        fill: impl FnOnce(&mut [T]) -> kmp_mpi::Result<R>,
    ) -> kmp_mpi::Result<(R, Vec<T>)> {
        P::prepare(&mut self.buf, needed)?;
        let r = fill(&mut self.buf)?;
        Ok((r, self.buf))
    }

    #[inline]
    fn adopt(mut self, payload: Bytes) -> kmp_mpi::Result<Vec<T>> {
        adopt_into::<T, P>(&mut self.buf, payload)?;
        Ok(self.buf)
    }
}

/// Prepares `buf` under policy `P` for the payload's element count and
/// copies the payload in (one copy).
fn adopt_into<T: Plain, P: ResizePolicy>(buf: &mut Vec<T>, payload: Bytes) -> kmp_mpi::Result<()> {
    let n = kmp_mpi::plain::element_count::<T>(payload.len());
    P::prepare(buf, n)?;
    kmp_mpi::plain::copy_bytes_into(&payload, &mut buf[..n]);
    Ok(())
}

/// Like [`RecvBufSpec`], for the in-place `send_recv_buf` slot.
#[diagnostic::on_unimplemented(
    message = "missing required parameter `send_recv_buf` for this in-place operation",
    note = "pass `send_recv_buf(&mut my_vec)` or `send_recv_buf(my_vec)`"
)]
pub trait SendRecvBufSpec<T: Plain> {
    /// The output component (`Vec<T>` for owned, `()` for borrowed).
    type Out;

    /// Grants mutable access to the in-place buffer and produces the
    /// output component.
    fn apply<R>(
        self,
        work: impl FnOnce(&mut Vec<T>) -> kmp_mpi::Result<R>,
    ) -> kmp_mpi::Result<(R, Self::Out)>;
}

impl<T: Plain> SendRecvBufSpec<T> for SendRecvBuf<&mut Vec<T>> {
    type Out = ();

    #[inline]
    fn apply<R>(
        self,
        work: impl FnOnce(&mut Vec<T>) -> kmp_mpi::Result<R>,
    ) -> kmp_mpi::Result<(R, ())> {
        let r = work(self.0)?;
        Ok((r, ()))
    }
}

impl<T: Plain> SendRecvBufSpec<T> for SendRecvBuf<Vec<T>> {
    type Out = Vec<T>;

    #[inline]
    fn apply<R>(
        mut self,
        work: impl FnOnce(&mut Vec<T>) -> kmp_mpi::Result<R>,
    ) -> kmp_mpi::Result<(R, Vec<T>)> {
        let r = work(&mut self.0)?;
        Ok((r, self.0))
    }
}

// ---------------------------------------------------------------------------
// Counts / displacements
// ---------------------------------------------------------------------------

/// A counts-or-displacements slot: provided, absent (compute default), or
/// requested as an out-parameter (compute default *and* return it).
///
/// `PROVIDED` and `REQUESTED` are compile-time constants, so the
/// default-computation branch (`if !PROVIDED { communicate; }`) is
/// resolved during monomorphization — no runtime dispatch (§III-A).
pub trait CountsSlot {
    /// True if the user supplied the values.
    const PROVIDED: bool;
    /// True if the user asked for the computed values back.
    const REQUESTED: bool;
    /// The output component (`Vec<usize>` when requested, else `()`).
    type Out;

    /// The provided values, if any.
    fn provided(&self) -> Option<&[usize]>;

    /// Consumes the slot, turning the computed default (present iff
    /// `!PROVIDED`) into the output component.
    fn finish(self, computed: Option<Vec<usize>>) -> Self::Out;
}

impl CountsSlot for Absent {
    const PROVIDED: bool = false;
    const REQUESTED: bool = false;
    type Out = ();

    #[inline]
    fn provided(&self) -> Option<&[usize]> {
        None
    }

    #[inline]
    fn finish(self, _computed: Option<Vec<usize>>) {}
}

macro_rules! counts_slot_impls {
    ($in_ty:ident, $out_ty:ident) => {
        impl<B: AsSlice<usize>> CountsSlot for $in_ty<B> {
            const PROVIDED: bool = true;
            const REQUESTED: bool = false;
            type Out = ();

            #[inline]
            fn provided(&self) -> Option<&[usize]> {
                Some(self.0.as_slice())
            }

            #[inline]
            fn finish(self, _computed: Option<Vec<usize>>) -> () {}
        }

        impl CountsSlot for $out_ty {
            const PROVIDED: bool = false;
            const REQUESTED: bool = true;
            type Out = Vec<usize>;

            #[inline]
            fn provided(&self) -> Option<&[usize]> {
                None
            }

            #[inline]
            fn finish(self, computed: Option<Vec<usize>>) -> Vec<usize> {
                computed.expect("out-parameter must have been computed")
            }
        }
    };
}

counts_slot_impls!(SendCounts, SendCountsOut);
counts_slot_impls!(RecvCounts, RecvCountsOut);
counts_slot_impls!(SendDispls, SendDisplsOut);
counts_slot_impls!(RecvDispls, RecvDisplsOut);

/// A counts slot that *must* be user-provided because no default can be
/// computed — e.g. `send_counts` of an `alltoallv` (only the application
/// knows how its send buffer partitions across destinations).
#[diagnostic::on_unimplemented(
    message = "missing required parameter `send_counts`",
    note = "`alltoallv` cannot infer how the send buffer splits across \
            destinations; pass `send_counts(&counts)`"
)]
pub trait ProvidedCounts: CountsSlot {}

impl<B: AsSlice<usize>> ProvidedCounts for SendCounts<B> {}
impl<B: AsSlice<usize>> ProvidedCounts for RecvCounts<B> {}
impl<B: AsSlice<usize>> ProvidedCounts for SendDispls<B> {}
impl<B: AsSlice<usize>> ProvidedCounts for RecvDispls<B> {}

// ---------------------------------------------------------------------------
// Reduction operation
// ---------------------------------------------------------------------------

/// A slot that provides the reduction operation (satisfied by `op(..)`).
#[diagnostic::on_unimplemented(
    message = "missing required parameter `op` for this reduction",
    label = "this reduction needs `op(..)` over elements of type `{T}`",
    note = "pass e.g. `op(kamping::ops::Sum)` or `op(|a, b| ...)` via `kamping::params::op`"
)]
pub trait ProvidesOp<T> {
    /// The reduction operation type.
    type Op: ReduceOp<T>;

    /// Consumes the slot, yielding the operation.
    fn into_op(self) -> Self::Op;
}

impl<T, O: ReduceOp<T>> ProvidesOp<T> for OpParam<O> {
    type Op = O;

    #[inline]
    fn into_op(self) -> O {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{recv_buf, recv_counts, recv_counts_out, send_buf, send_recv_buf};

    #[test]
    fn send_data_views() {
        let v = vec![1u32, 2, 3];
        let p = send_buf(&v);
        assert_eq!(p.send_slice(), &[1, 2, 3]);
        let p = send_buf(v.clone());
        assert_eq!(ProvidesSendData::<u32>::send_slice(&p), &[1, 2, 3]);
        assert_eq!(p.reclaim(), vec![1, 2, 3]);
    }

    #[test]
    fn borrowed_send_reclaims_unit() {
        let v = vec![1u8];
        let p = send_buf(&v);
        #[allow(clippy::unused_unit)]
        let () = p.reclaim();
    }

    #[test]
    fn absent_recv_allocates() {
        let (n, out): (usize, Vec<u16>) = RecvBufSpec::<u16>::apply(Absent, 4, |s| {
            s[1] = 9;
            Ok(s.len())
        })
        .unwrap();
        assert_eq!(n, 4);
        assert_eq!(out, vec![0, 9, 0, 0]);
    }

    #[test]
    fn borrowed_recv_writes_in_place() {
        let mut storage = vec![0u8; 3];
        let p = recv_buf(&mut storage);
        let ((), ()) = p
            .apply(3, |s| {
                s[0] = 7;
                Ok(())
            })
            .unwrap();
        assert_eq!(storage, vec![7, 0, 0]);
    }

    #[test]
    fn owned_recv_moves_through() {
        let p = recv_buf(vec![0u32; 1]).resize_to_fit();
        let ((), out) = p
            .apply(2, |s| {
                s[1] = 5;
                Ok(())
            })
            .unwrap();
        assert_eq!(out, vec![0, 5]);
    }

    #[test]
    fn send_recv_buf_shapes() {
        let mut v = vec![1u64, 2];
        let p = send_recv_buf(&mut v);
        let ((), ()) = p
            .apply(|b| {
                b.push(3);
                Ok(())
            })
            .unwrap();
        assert_eq!(v, vec![1, 2, 3]);

        let p = send_recv_buf(vec![9u64]);
        let ((), out) = p
            .apply(|b| {
                b[0] += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(out, vec![10]);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // asserting the compile-time slot flags is the point
    fn counts_slot_constants() {
        assert!(!<Absent as CountsSlot>::PROVIDED);
        assert!(!<Absent as CountsSlot>::REQUESTED);
        assert!(<RecvCounts<&Vec<usize>> as CountsSlot>::PROVIDED);
        assert!(<RecvCountsOut as CountsSlot>::REQUESTED);
    }

    #[test]
    fn counts_slot_values() {
        let c = vec![1usize, 2];
        let p = recv_counts(&c);
        assert_eq!(p.provided(), Some(&c[..]));
        p.finish(None);

        let p = recv_counts_out();
        assert_eq!(p.provided(), None);
        assert_eq!(p.finish(Some(vec![3, 4])), vec![3, 4]);
    }

    #[test]
    fn op_slot_applies() {
        let p = crate::params::op(kmp_mpi::op::Sum);
        let o = ProvidesOp::<u32>::into_op(p);
        assert_eq!(o.apply(&2, &3), 5);
    }
}
