//! Named parameters.
//!
//! The paper's central interface idea (§III-A/B): parameters of an MPI
//! call are created by *factory functions* (`send_buf(..)`,
//! `recv_counts_out()`, …) and passed in any order and any subset; the
//! library checks **at compile time** which parameters are present and
//! instantiates default-computation code only for the missing ones.
//!
//! C++ KaMPIng implements this with template parameter packs. Rust has no
//! variadic generics, so the reproduction folds a tuple of parameter
//! objects into a typed [`ArgSet`] whose
//! slots are either [`Absent`] or the parameter — the same compile-time
//! information, expressed through associated types and monomorphization,
//! with the same zero-runtime-dispatch property.

pub mod argset;
pub mod containers;
pub mod output;
pub mod slots;

pub use argset::{ArgSet, EmptyArgs, IntoArgs};
pub use containers::{AsSlice, AsSliceMut, GrowOnly, NoResize, ResizePolicy, ResizeToFit};

use kmp_mpi::{CollTuning, Rank, Src, Tag};

/// Marker for an omitted parameter slot. The library computes a default
/// (possibly issuing additional communication) exactly when a slot is
/// `Absent`; the code path for provided parameters is never instantiated
/// and vice versa.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Absent;

// ---------------------------------------------------------------------------
// Buffer parameters
// ---------------------------------------------------------------------------

/// The data to send. Created by [`send_buf`].
#[derive(Debug)]
pub struct SendBuf<B>(pub(crate) B);

/// Declares the send data of an operation. Accepts borrowed slices or
/// vectors (`send_buf(&v)`) as well as owned containers (`send_buf(v)`);
/// owned containers are *moved into* the call and — for non-blocking
/// operations — returned to the caller on completion (§III-E).
pub fn send_buf<B>(data: B) -> SendBuf<B> {
    SendBuf(data)
}

/// A combined send+receive buffer for in-place operations. Created by
/// [`send_recv_buf`].
#[derive(Debug)]
pub struct SendRecvBuf<B>(pub(crate) B);

/// Declares an in-place (send+receive) buffer, replacing the error-prone
/// `MPI_IN_PLACE` idiom (§III-G): passing `send_recv_buf` instead of
/// `send_buf` selects the in-place variant of the wrapped call.
pub fn send_recv_buf<B>(data: B) -> SendRecvBuf<B> {
    SendRecvBuf(data)
}

/// A user-provided receive buffer with a resize policy. Created by
/// [`recv_buf`].
#[derive(Debug)]
pub struct RecvBuf<B, P = NoResize> {
    pub(crate) buf: B,
    pub(crate) _policy: P,
}

/// Provides storage for the received data instead of having the library
/// allocate it. Accepts `&mut Vec<T>` (data is written in place) or an
/// owned `Vec<T>` (moved in, reused, and returned by value).
///
/// The default resize policy is *no-resize* (§III-C): the buffer is
/// asserted to be large enough and never reallocated. Use
/// [`RecvBuf::resize_to_fit`] or [`RecvBuf::grow_only`] to opt into
/// automatic resizing.
pub fn recv_buf<B>(buf: B) -> RecvBuf<B, NoResize> {
    RecvBuf {
        buf,
        _policy: NoResize,
    }
}

impl<B, P> RecvBuf<B, P> {
    /// Always resize the buffer to exactly the received size.
    pub fn resize_to_fit(self) -> RecvBuf<B, ResizeToFit> {
        RecvBuf {
            buf: self.buf,
            _policy: ResizeToFit,
        }
    }

    /// Resize only if the buffer is too small; never shrink.
    pub fn grow_only(self) -> RecvBuf<B, GrowOnly> {
        RecvBuf {
            buf: self.buf,
            _policy: GrowOnly,
        }
    }

    /// Never resize; assert the buffer is large enough (the default).
    pub fn no_resize(self) -> RecvBuf<B, NoResize> {
        RecvBuf {
            buf: self.buf,
            _policy: NoResize,
        }
    }
}

macro_rules! counts_param {
    ($(#[$meta:meta])* $name:ident, $factory:ident, $(#[$ometa:meta])* $out_name:ident, $out_factory:ident) => {
        $(#[$meta])*
        #[derive(Debug)]
        pub struct $name<B>(pub(crate) B);

        $(#[$meta])*
        pub fn $factory<B>(data: B) -> $name<B> {
            $name(data)
        }

        $(#[$ometa])*
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $out_name;

        $(#[$ometa])*
        pub fn $out_factory() -> $out_name {
            $out_name
        }
    };
}

counts_param!(
    /// Per-rank send counts (in-parameter).
    SendCounts,
    send_counts,
    /// Requests the send counts the library computed to be returned by
    /// value (out-parameter).
    SendCountsOut,
    send_counts_out
);

counts_param!(
    /// Per-rank receive counts (in-parameter).
    RecvCounts,
    recv_counts,
    /// Requests the receive counts the library computed (e.g. by an
    /// `allgather` of send counts) to be returned by value.
    RecvCountsOut,
    recv_counts_out
);

counts_param!(
    /// Per-rank send displacements (in-parameter).
    SendDispls,
    send_displs,
    /// Requests the send displacements the library computed (exclusive
    /// prefix sum over send counts) to be returned by value.
    SendDisplsOut,
    send_displs_out
);

counts_param!(
    /// Per-rank receive displacements (in-parameter).
    RecvDispls,
    recv_displs,
    /// Requests the receive displacements the library computed (exclusive
    /// prefix sum over receive counts) to be returned by value.
    RecvDisplsOut,
    recv_displs_out
);

// ---------------------------------------------------------------------------
// Reduction operation
// ---------------------------------------------------------------------------

/// A reduction operation parameter. Created by [`op`].
#[derive(Clone, Copy, Debug)]
pub struct OpParam<O>(pub(crate) O);

/// Declares the reduction operation of a reduce/allreduce/scan call.
/// Accepts the built-in operations (`ops::Sum`, `ops::Min`, …) — the
/// analogue of mapping `std::plus` to `MPI_SUM` — as well as plain
/// closures and [`kmp_mpi::op::non_commutative`] lambdas.
pub fn op<O>(operation: O) -> OpParam<O> {
    OpParam(operation)
}

// ---------------------------------------------------------------------------
// Scalar parameters (validated at runtime)
// ---------------------------------------------------------------------------

/// Runtime-checked scalar parameters of a call. Buffer-shaped parameters
/// get compile-time presence checks through the [`ArgSet`] slots; scalars
/// (root, destination, source, tag, counts of single messages) are
/// carried here and validated when the call executes.
#[derive(Clone, Copy, Debug, Default)]
pub struct Meta {
    pub(crate) root: Option<Rank>,
    pub(crate) destination: Option<Rank>,
    pub(crate) source: Option<Src>,
    pub(crate) tag: Option<Tag>,
    pub(crate) recv_count: Option<usize>,
    pub(crate) send_count: Option<usize>,
    pub(crate) tuning: Option<CollTuning>,
}

macro_rules! scalar_param {
    ($(#[$meta:meta])* $name:ident, $factory:ident, $t:ty, $field:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug)]
        pub struct $name(pub(crate) $t);

        $(#[$meta])*
        pub fn $factory(value: $t) -> $name {
            $name(value)
        }
    };
}

scalar_param!(
    /// The root rank of a rooted collective (default: 0).
    Root,
    root,
    Rank,
    root
);
scalar_param!(
    /// The destination rank of a point-to-point send.
    Destination,
    destination,
    Rank,
    destination
);
scalar_param!(
    /// The number of elements a receive expects (optional; the element
    /// count otherwise travels with the message).
    RecvCount,
    recv_count,
    usize,
    recv_count
);
scalar_param!(
    /// The number of elements to send (optional; defaults to the length
    /// of the send buffer).
    SendCount,
    send_count,
    usize,
    send_count
);

/// The source rank of a receive (wildcard by default).
#[derive(Clone, Copy, Debug)]
pub struct Source(pub(crate) Src);

/// Restricts a receive to messages from `rank`.
pub fn source(rank: Rank) -> Source {
    Source(Src::Rank(rank))
}

/// Accepts messages from any rank (mirrors `MPI_ANY_SOURCE`; the default
/// for receives).
pub fn any_source() -> Source {
    Source(Src::Any)
}

/// The message tag of a point-to-point operation (default: 0).
#[derive(Clone, Copy, Debug)]
pub struct TagParam(pub(crate) Tag);

/// Sets the message tag of a send or receive.
pub fn tag(value: Tag) -> TagParam {
    TagParam(value)
}

/// A per-call collective tuning override. Created by [`tuning`].
#[derive(Clone, Copy, Debug)]
pub struct TuningParam(pub(crate) CollTuning);

/// Overrides the communicator's collective-algorithm tuning for this
/// one call (see [`kmp_mpi::CollTuning`]): force an algorithm or move
/// the size thresholds, e.g.
/// `tuning(CollTuning::default().allreduce(AllreduceAlgo::Rabenseifner))`.
/// The binding stays policy-free — the substrate's selection engine
/// reads the tuning at call time. Like every collective argument, all
/// ranks must pass the same tuning to matching calls. A persistent
/// per-communicator policy is set with
/// [`Communicator::set_tuning`](crate::Communicator::set_tuning).
pub fn tuning(t: CollTuning) -> TuningParam {
    TuningParam(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_wrap_values() {
        let v = vec![1u32, 2];
        let sb = send_buf(&v);
        assert_eq!(sb.0, &v);
        let r = root(3);
        assert_eq!(r.0, 3);
        let d = destination(1);
        assert_eq!(d.0, 1);
        let t = tag(7);
        assert_eq!(t.0, 7);
    }

    #[test]
    fn recv_buf_policy_transitions() {
        let mut storage = vec![0u8; 4];
        let p = recv_buf(&mut storage);
        let p = p.resize_to_fit();
        let p = p.grow_only();
        let _p = p.no_resize();
    }

    #[test]
    fn source_selectors() {
        assert_eq!(source(2).0, Src::Rank(2));
        assert_eq!(any_source().0, Src::Any);
    }

    #[test]
    fn meta_defaults_empty() {
        let m = Meta::default();
        assert!(m.root.is_none());
        assert!(m.destination.is_none());
        assert!(m.source.is_none());
        assert!(m.tag.is_none());
    }
}
