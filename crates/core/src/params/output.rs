//! Compile-time result assembly.
//!
//! §III-B of the paper: the receive buffer is always returned by value
//! (unless the caller provided storage by reference), and every
//! `*_out()` parameter adds one component to the returned result object,
//! which C++ callers decompose with structured bindings. The Rust
//! rendering assembles a *tuple* whose shape is computed at compile time
//! from the slot types: components in canonical order
//! (receive buffer, send counts, receive counts, send displacements,
//! receive displacements), `()`-components elided, and a single component
//! unwrapped to the bare value — so
//!
//! ```ignore
//! let v_global = comm.allgatherv(send_buf(&v))?;                  // Vec<T>
//! let (v_global, counts) =
//!     comm.allgatherv((send_buf(&v), recv_counts_out()))?;        // (Vec<T>, Vec<usize>)
//! ```
//!
//! mirrors Fig. 1 exactly, with plain `let`-destructuring playing the
//! role of structured bindings.

/// Appends a value to a tuple (type-level list append).
pub trait TuplePush<T> {
    /// The tuple with `T` appended.
    type Out;
    /// Appends `t`.
    fn push(self, t: T) -> Self::Out;
}

impl<T> TuplePush<T> for () {
    type Out = (T,);
    #[inline]
    fn push(self, t: T) -> (T,) {
        (t,)
    }
}

impl<T, A> TuplePush<T> for (A,) {
    type Out = (A, T);
    #[inline]
    fn push(self, t: T) -> (A, T) {
        (self.0, t)
    }
}

impl<T, A, B> TuplePush<T> for (A, B) {
    type Out = (A, B, T);
    #[inline]
    fn push(self, t: T) -> (A, B, T) {
        (self.0, self.1, t)
    }
}

impl<T, A, B, C> TuplePush<T> for (A, B, C) {
    type Out = (A, B, C, T);
    #[inline]
    fn push(self, t: T) -> (A, B, C, T) {
        (self.0, self.1, self.2, t)
    }
}

impl<T, A, B, C, D> TuplePush<T> for (A, B, C, D) {
    type Out = (A, B, C, D, T);
    #[inline]
    fn push(self, t: T) -> (A, B, C, D, T) {
        (self.0, self.1, self.2, self.3, t)
    }
}

/// A result component being folded into the output accumulator: unit
/// components (in-parameters, by-reference buffers) vanish; value
/// components append themselves.
pub trait PushComponent<Acc> {
    /// Accumulator after this component.
    type Pushed;
    /// Folds the component into `acc`.
    fn push_component(self, acc: Acc) -> Self::Pushed;
}

impl<Acc> PushComponent<Acc> for () {
    type Pushed = Acc;
    #[inline]
    fn push_component(self, acc: Acc) -> Acc {
        acc
    }
}

impl<Acc: TuplePush<Vec<T>>, T> PushComponent<Acc> for Vec<T> {
    type Pushed = Acc::Out;
    #[inline]
    fn push_component(self, acc: Acc) -> Acc::Out {
        acc.push(self)
    }
}

/// Final shaping of the accumulated output: a single component unwraps to
/// the bare value, everything else stays a tuple.
pub trait Finalize {
    /// The user-visible result type.
    type Out;
    /// Performs the unwrap.
    fn finalize(self) -> Self::Out;
}

impl Finalize for () {
    type Out = ();
    #[inline]
    fn finalize(self) {}
}

impl<A> Finalize for (A,) {
    type Out = A;
    #[inline]
    fn finalize(self) -> A {
        self.0
    }
}

macro_rules! finalize_identity {
    ($(($($g:ident),+))*) => {$(
        impl<$($g),+> Finalize for ($($g,)+) {
            type Out = ($($g,)+);
            #[inline]
            fn finalize(self) -> Self::Out {
                self
            }
        }
    )*};
}

finalize_identity!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

// Shorthand aliases for the associated-type chains in collective
// signatures.

/// Accumulator after pushing one component onto the empty tuple.
pub type Push1<A> = <A as PushComponent<()>>::Pushed;
/// Accumulator after pushing two components.
pub type Push2<A, B> = <B as PushComponent<Push1<A>>>::Pushed;
/// Accumulator after pushing three components.
pub type Push3<A, B, C> = <C as PushComponent<Push2<A, B>>>::Pushed;
/// Accumulator after pushing four components.
pub type Push4<A, B, C, D> = <D as PushComponent<Push3<A, B, C>>>::Pushed;
/// The finalized (unwrapped) output of an accumulator.
pub type FinalOf<X> = <X as Finalize>::Out;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_components_vanish() {
        // A chain of unit components stays unit through the fold.
        #[allow(clippy::let_unit_value)] // the unit accumulator chain is what is under test
        fn folded() {
            let acc = ();
            let acc = ().push_component(acc);
            let acc = ().push_component(acc);
            acc.finalize()
        }
        folded();
    }

    #[test]
    fn single_component_unwraps() {
        let acc = ();
        let acc = vec![1u8, 2].push_component(acc);
        let out: Vec<u8> = acc.finalize();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn mixed_components_keep_order() {
        let acc = ();
        let acc = vec![1u8].push_component(acc); // recv buf
        let acc = ().push_component(acc); // provided counts: elided
        let acc = vec![9usize].push_component(acc); // displs out
        let (buf, displs): (Vec<u8>, Vec<usize>) = acc.finalize();
        assert_eq!(buf, vec![1]);
        assert_eq!(displs, vec![9]);
    }

    #[test]
    fn three_components() {
        let acc = ();
        let acc = vec![1u8].push_component(acc);
        let acc = vec![2usize].push_component(acc);
        let acc = vec![3usize].push_component(acc);
        let (a, b, c) = acc.finalize();
        assert_eq!((a, b, c), (vec![1u8], vec![2usize], vec![3usize]));
    }

    #[test]
    fn tuple_push_shapes() {
        let t = ().push(1u8);
        let t = t.push("x");
        let t = t.push(2.5f64);
        assert_eq!(t, (1u8, "x", 2.5f64));
    }
}
