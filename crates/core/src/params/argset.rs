//! The typed argument set and the tuple-folding that builds it.
//!
//! `ArgSet` is the Rust stand-in for KaMPIng's template parameter pack: a
//! struct with one type-level slot per buffer-shaped parameter (either
//! [`Absent`] or the parameter object) plus runtime-checked scalars
//! ([`Meta`]). Users never name this type — they pass a tuple of factory
//! results, and [`IntoArgs`] folds it into an `ArgSet` at compile time.
//!
//! Passing the same buffer parameter twice fails to compile: each fold
//! step requires the target slot to be `Absent`.

use super::{
    Absent, Destination, Meta, OpParam, RecvBuf, RecvCount, RecvCounts, RecvCountsOut, RecvDispls,
    RecvDisplsOut, Root, SendBuf, SendCount, SendCounts, SendCountsOut, SendDispls, SendDisplsOut,
    SendRecvBuf, Source, TagParam, TuningParam,
};

/// The folded argument set of one operation call. Type parameters:
/// send buffer, send-recv (in-place) buffer, receive buffer, send counts,
/// receive counts, send displacements, receive displacements, reduction
/// operation. Each is [`Absent`] or a parameter object.
#[derive(Debug)]
pub struct ArgSet<SB, SRB, RB, SC, RC, SD, RD, OP> {
    pub(crate) send_buf: SB,
    pub(crate) send_recv_buf: SRB,
    pub(crate) recv_buf: RB,
    pub(crate) send_counts: SC,
    pub(crate) recv_counts: RC,
    pub(crate) send_displs: SD,
    pub(crate) recv_displs: RD,
    pub(crate) op: OP,
    pub(crate) meta: Meta,
}

/// The argument set with every slot empty.
pub type EmptyArgs = ArgSet<Absent, Absent, Absent, Absent, Absent, Absent, Absent, Absent>;

impl Default for EmptyArgs {
    fn default() -> Self {
        ArgSet {
            send_buf: Absent,
            send_recv_buf: Absent,
            recv_buf: Absent,
            send_counts: Absent,
            recv_counts: Absent,
            send_displs: Absent,
            recv_displs: Absent,
            op: Absent,
            meta: Meta::default(),
        }
    }
}

/// Folds one parameter object into an argument set. One implementation
/// exists per (parameter kind, empty target slot) pair, so passing a
/// buffer parameter twice — or passing a parameter an operation does not
/// accept — is a compile-time error.
#[diagnostic::on_unimplemented(
    message = "cannot add this parameter to the call: duplicate parameter or invalid parameter tuple",
    note = "each named parameter (send_buf, recv_buf, recv_counts, ...) may be passed at most once"
)]
pub trait ApplyParam<A> {
    /// The argument set after folding.
    type Out;
    /// Performs the fold.
    fn apply(self, args: A) -> Self::Out;
}

impl<B, SRB, RB, SC, RC, SD, RD, OP> ApplyParam<ArgSet<Absent, SRB, RB, SC, RC, SD, RD, OP>>
    for SendBuf<B>
{
    type Out = ArgSet<SendBuf<B>, SRB, RB, SC, RC, SD, RD, OP>;

    #[inline]
    fn apply(self, a: ArgSet<Absent, SRB, RB, SC, RC, SD, RD, OP>) -> Self::Out {
        ArgSet {
            send_buf: self,
            send_recv_buf: a.send_recv_buf,
            recv_buf: a.recv_buf,
            send_counts: a.send_counts,
            recv_counts: a.recv_counts,
            send_displs: a.send_displs,
            recv_displs: a.recv_displs,
            op: a.op,
            meta: a.meta,
        }
    }
}

impl<B, SB, RB, SC, RC, SD, RD, OP> ApplyParam<ArgSet<SB, Absent, RB, SC, RC, SD, RD, OP>>
    for SendRecvBuf<B>
{
    type Out = ArgSet<SB, SendRecvBuf<B>, RB, SC, RC, SD, RD, OP>;

    #[inline]
    fn apply(self, a: ArgSet<SB, Absent, RB, SC, RC, SD, RD, OP>) -> Self::Out {
        ArgSet {
            send_buf: a.send_buf,
            send_recv_buf: self,
            recv_buf: a.recv_buf,
            send_counts: a.send_counts,
            recv_counts: a.recv_counts,
            send_displs: a.send_displs,
            recv_displs: a.recv_displs,
            op: a.op,
            meta: a.meta,
        }
    }
}

impl<B, P, SB, SRB, SC, RC, SD, RD, OP> ApplyParam<ArgSet<SB, SRB, Absent, SC, RC, SD, RD, OP>>
    for RecvBuf<B, P>
{
    type Out = ArgSet<SB, SRB, RecvBuf<B, P>, SC, RC, SD, RD, OP>;

    #[inline]
    fn apply(self, a: ArgSet<SB, SRB, Absent, SC, RC, SD, RD, OP>) -> Self::Out {
        ArgSet {
            send_buf: a.send_buf,
            send_recv_buf: a.send_recv_buf,
            recv_buf: self,
            send_counts: a.send_counts,
            recv_counts: a.recv_counts,
            send_displs: a.send_displs,
            recv_displs: a.recv_displs,
            op: a.op,
            meta: a.meta,
        }
    }
}

macro_rules! apply_send_counts {
    ($param:ty, [$($gen:ident),*]) => {
        impl<$($gen,)* SB, SRB, RB, RC, SD, RD, OP>
            ApplyParam<ArgSet<SB, SRB, RB, Absent, RC, SD, RD, OP>> for $param
        {
            type Out = ArgSet<SB, SRB, RB, $param, RC, SD, RD, OP>;

            #[inline]
            fn apply(self, a: ArgSet<SB, SRB, RB, Absent, RC, SD, RD, OP>) -> Self::Out {
                ArgSet {
                    send_buf: a.send_buf,
                    send_recv_buf: a.send_recv_buf,
                    recv_buf: a.recv_buf,
                    send_counts: self,
                    recv_counts: a.recv_counts,
                    send_displs: a.send_displs,
                    recv_displs: a.recv_displs,
                    op: a.op,
                    meta: a.meta,
                }
            }
        }
    };
}

macro_rules! apply_recv_counts {
    ($param:ty, [$($gen:ident),*]) => {
        impl<$($gen,)* SB, SRB, RB, SC, SD, RD, OP>
            ApplyParam<ArgSet<SB, SRB, RB, SC, Absent, SD, RD, OP>> for $param
        {
            type Out = ArgSet<SB, SRB, RB, SC, $param, SD, RD, OP>;

            #[inline]
            fn apply(self, a: ArgSet<SB, SRB, RB, SC, Absent, SD, RD, OP>) -> Self::Out {
                ArgSet {
                    send_buf: a.send_buf,
                    send_recv_buf: a.send_recv_buf,
                    recv_buf: a.recv_buf,
                    send_counts: a.send_counts,
                    recv_counts: self,
                    send_displs: a.send_displs,
                    recv_displs: a.recv_displs,
                    op: a.op,
                    meta: a.meta,
                }
            }
        }
    };
}

macro_rules! apply_send_displs {
    ($param:ty, [$($gen:ident),*]) => {
        impl<$($gen,)* SB, SRB, RB, SC, RC, RD, OP>
            ApplyParam<ArgSet<SB, SRB, RB, SC, RC, Absent, RD, OP>> for $param
        {
            type Out = ArgSet<SB, SRB, RB, SC, RC, $param, RD, OP>;

            #[inline]
            fn apply(self, a: ArgSet<SB, SRB, RB, SC, RC, Absent, RD, OP>) -> Self::Out {
                ArgSet {
                    send_buf: a.send_buf,
                    send_recv_buf: a.send_recv_buf,
                    recv_buf: a.recv_buf,
                    send_counts: a.send_counts,
                    recv_counts: a.recv_counts,
                    send_displs: self,
                    recv_displs: a.recv_displs,
                    op: a.op,
                    meta: a.meta,
                }
            }
        }
    };
}

macro_rules! apply_recv_displs {
    ($param:ty, [$($gen:ident),*]) => {
        impl<$($gen,)* SB, SRB, RB, SC, RC, SD, OP>
            ApplyParam<ArgSet<SB, SRB, RB, SC, RC, SD, Absent, OP>> for $param
        {
            type Out = ArgSet<SB, SRB, RB, SC, RC, SD, $param, OP>;

            #[inline]
            fn apply(self, a: ArgSet<SB, SRB, RB, SC, RC, SD, Absent, OP>) -> Self::Out {
                ArgSet {
                    send_buf: a.send_buf,
                    send_recv_buf: a.send_recv_buf,
                    recv_buf: a.recv_buf,
                    send_counts: a.send_counts,
                    recv_counts: a.recv_counts,
                    send_displs: a.send_displs,
                    recv_displs: self,
                    op: a.op,
                    meta: a.meta,
                }
            }
        }
    };
}

apply_send_counts!(SendCounts<B>, [B]);
apply_send_counts!(SendCountsOut, []);
apply_recv_counts!(RecvCounts<B>, [B]);
apply_recv_counts!(RecvCountsOut, []);
apply_send_displs!(SendDispls<B>, [B]);
apply_send_displs!(SendDisplsOut, []);
apply_recv_displs!(RecvDispls<B>, [B]);
apply_recv_displs!(RecvDisplsOut, []);

impl<O, SB, SRB, RB, SC, RC, SD, RD> ApplyParam<ArgSet<SB, SRB, RB, SC, RC, SD, RD, Absent>>
    for OpParam<O>
{
    type Out = ArgSet<SB, SRB, RB, SC, RC, SD, RD, OpParam<O>>;

    #[inline]
    fn apply(self, a: ArgSet<SB, SRB, RB, SC, RC, SD, RD, Absent>) -> Self::Out {
        ArgSet {
            send_buf: a.send_buf,
            send_recv_buf: a.send_recv_buf,
            recv_buf: a.recv_buf,
            send_counts: a.send_counts,
            recv_counts: a.recv_counts,
            send_displs: a.send_displs,
            recv_displs: a.recv_displs,
            op: self,
            meta: a.meta,
        }
    }
}

// Scalar parameters fold into `meta` and leave the slot types unchanged.
macro_rules! apply_scalar_param {
    ($param:ty, $field:ident, $name:literal) => {
        impl<SB, SRB, RB, SC, RC, SD, RD, OP> ApplyParam<ArgSet<SB, SRB, RB, SC, RC, SD, RD, OP>>
            for $param
        {
            type Out = ArgSet<SB, SRB, RB, SC, RC, SD, RD, OP>;

            #[inline]
            fn apply(self, mut args: ArgSet<SB, SRB, RB, SC, RC, SD, RD, OP>) -> Self::Out {
                assert!(
                    args.meta.$field.is_none(),
                    concat!("duplicate `", $name, "` parameter")
                );
                args.meta.$field = Some(self.0);
                args
            }
        }
    };
}

apply_scalar_param!(Root, root, "root");
apply_scalar_param!(Destination, destination, "destination");
apply_scalar_param!(Source, source, "source");
apply_scalar_param!(TagParam, tag, "tag");
apply_scalar_param!(RecvCount, recv_count, "recv_count");
apply_scalar_param!(SendCount, send_count, "send_count");
apply_scalar_param!(TuningParam, tuning, "tuning");

/// Anything that can be turned into an argument set: a single parameter
/// object or a tuple of them (in any order).
#[diagnostic::on_unimplemented(
    message = "this is not a valid parameter (tuple) for a kamping operation",
    note = "pass factory results like `send_buf(&v)` or tuples like `(send_buf(&v), recv_counts_out())`"
)]
pub trait IntoArgs {
    /// The folded argument set type.
    type Out;
    /// Folds the parameters.
    fn into_args(self) -> Self::Out;
}

impl IntoArgs for () {
    type Out = EmptyArgs;
    #[inline]
    fn into_args(self) -> EmptyArgs {
        EmptyArgs::default()
    }
}

macro_rules! into_args_single {
    ($param:ty, [$($gen:ident),*]) => {
        impl<$($gen),*> IntoArgs for $param
        where
            $param: ApplyParam<EmptyArgs>,
        {
            type Out = <$param as ApplyParam<EmptyArgs>>::Out;
            #[inline]
            fn into_args(self) -> Self::Out {
                self.apply(EmptyArgs::default())
            }
        }
    };
}

into_args_single!(SendBuf<B>, [B]);
into_args_single!(SendRecvBuf<B>, [B]);
into_args_single!(RecvBuf<B, P>, [B, P]);
into_args_single!(SendCounts<B>, [B]);
into_args_single!(SendCountsOut, []);
into_args_single!(RecvCounts<B>, [B]);
into_args_single!(RecvCountsOut, []);
into_args_single!(SendDispls<B>, [B]);
into_args_single!(SendDisplsOut, []);
into_args_single!(RecvDispls<B>, [B]);
into_args_single!(RecvDisplsOut, []);
into_args_single!(OpParam<O>, [O]);
into_args_single!(Root, []);
into_args_single!(Destination, []);
into_args_single!(Source, []);
into_args_single!(TagParam, []);
into_args_single!(RecvCount, []);
into_args_single!(SendCount, []);
into_args_single!(TuningParam, []);

/// Left-fold of a parameter tuple into an argument set: the head is
/// applied, then the tail tuple folds into the result. This recursive
/// formulation keeps each impl's bounds structural (two predicates), so
/// tuples of any supported arity compose without spelling out the
/// intermediate argument-set types.
pub trait Fold<Acc> {
    /// The argument set after folding all elements.
    type Out;
    /// Performs the fold.
    fn fold(self, acc: Acc) -> Self::Out;
}

impl<Acc> Fold<Acc> for () {
    type Out = Acc;
    #[inline]
    fn fold(self, acc: Acc) -> Acc {
        acc
    }
}

macro_rules! fold_tuple {
    ($head:ident, $head_idx:tt $(, $tail:ident, $tail_idx:tt)*) => {
        impl<Acc, $head $(, $tail)*> Fold<Acc> for ($head, $($tail,)*)
        where
            $head: ApplyParam<Acc>,
            ($($tail,)*): Fold<<$head as ApplyParam<Acc>>::Out>,
        {
            type Out = <($($tail,)*) as Fold<<$head as ApplyParam<Acc>>::Out>>::Out;

            #[inline]
            fn fold(self, acc: Acc) -> Self::Out {
                let acc = self.$head_idx.apply(acc);
                ($(self.$tail_idx,)*).fold(acc)
            }
        }

        impl<$head $(, $tail)*> IntoArgs for ($head, $($tail,)*)
        where
            ($head, $($tail,)*): Fold<EmptyArgs>,
        {
            type Out = <($head, $($tail,)*) as Fold<EmptyArgs>>::Out;

            #[inline]
            fn into_args(self) -> Self::Out {
                self.fold(EmptyArgs::default())
            }
        }
    };
}

fold_tuple!(P0, 0);
fold_tuple!(P0, 0, P1, 1);
fold_tuple!(P0, 0, P1, 1, P2, 2);
fold_tuple!(P0, 0, P1, 1, P2, 2, P3, 3);
fold_tuple!(P0, 0, P1, 1, P2, 2, P3, 3, P4, 4);
fold_tuple!(P0, 0, P1, 1, P2, 2, P3, 3, P4, 4, P5, 5);
fold_tuple!(P0, 0, P1, 1, P2, 2, P3, 3, P4, 4, P5, 5, P6, 6);
fold_tuple!(P0, 0, P1, 1, P2, 2, P3, 3, P4, 4, P5, 5, P6, 6, P7, 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::slots::{CountsSlot, ProvidesOp, ProvidesSendData};
    use crate::params::{destination, op, recv_counts, recv_counts_out, root, send_buf, tag};
    use kmp_mpi::op::ReduceOp;

    #[test]
    fn empty_args_all_absent() {
        let a = EmptyArgs::default();
        assert_eq!(a.send_buf, Absent);
        assert_eq!(a.recv_buf, Absent);
        assert!(a.meta.root.is_none());
    }

    #[test]
    fn single_param_folds() {
        let v = vec![1u8, 2];
        let args = send_buf(&v).into_args();
        assert_eq!(args.send_buf.send_slice(), &[1, 2]);
        assert_eq!(args.recv_counts, Absent);
    }

    #[test]
    fn tuple_folds_in_any_order() {
        let v = vec![1u32];
        let c = vec![1usize];
        let a1 = (send_buf(&v), recv_counts(&c), root(2)).into_args();
        let a2 = (root(2), recv_counts(&c), send_buf(&v)).into_args();
        assert_eq!(a1.meta.root, Some(2));
        assert_eq!(a2.meta.root, Some(2));
        assert_eq!(a1.recv_counts.provided(), Some(&c[..]));
        assert_eq!(a2.recv_counts.provided(), Some(&c[..]));
    }

    #[test]
    fn out_params_fold() {
        let v = vec![1u8];
        let args = (send_buf(&v), recv_counts_out()).into_args();
        assert_eq!(args.recv_counts.finish(Some(vec![5])), vec![5]);
    }

    #[test]
    fn scalars_fold_into_meta() {
        let args = (destination(3), tag(9)).into_args();
        assert_eq!(args.meta.destination, Some(3));
        assert_eq!(args.meta.tag, Some(9));
    }

    #[test]
    #[should_panic(expected = "duplicate `root`")]
    fn duplicate_scalar_panics() {
        let _ = (root(1), root(2)).into_args();
    }

    #[test]
    fn op_param_folds() {
        let args = op(kmp_mpi::op::Sum).into_args();
        let o = ProvidesOp::<u32>::into_op(args.op);
        assert_eq!(o.apply(&1, &2), 3);
    }

    #[test]
    fn five_param_tuple() {
        let v = vec![1u8];
        let c = vec![1usize];
        let d = vec![0usize];
        let args = (
            send_buf(&v),
            recv_counts(&c),
            crate::params::recv_displs(&d),
            root(0),
            tag(1),
        )
            .into_args();
        assert_eq!(args.meta.tag, Some(1));
        assert_eq!(args.recv_displs.provided(), Some(&d[..]));
    }
}
