//! Container abstractions and resize policies.
//!
//! KaMPIng accepts "every container that models
//! `std::contiguous_range`" (§III); the Rust analogue is the [`AsSlice`]
//! family below, implemented for slices, vectors (borrowed and owned) and
//! arrays. Resize policies (§III-C) control whether the library may
//! reallocate a user-provided buffer.

use kmp_mpi::Plain;

/// Read access to contiguous typed storage.
pub trait AsSlice<T> {
    /// The data as a slice.
    fn as_slice(&self) -> &[T];
}

impl<T> AsSlice<T> for &[T] {
    fn as_slice(&self) -> &[T] {
        self
    }
}

impl<T> AsSlice<T> for &Vec<T> {
    fn as_slice(&self) -> &[T] {
        self
    }
}

impl<T> AsSlice<T> for Vec<T> {
    fn as_slice(&self) -> &[T] {
        self
    }
}

impl<T, const N: usize> AsSlice<T> for [T; N] {
    fn as_slice(&self) -> &[T] {
        self
    }
}

impl<T, const N: usize> AsSlice<T> for &[T; N] {
    fn as_slice(&self) -> &[T] {
        *self
    }
}

/// Mutable access to contiguous typed storage.
pub trait AsSliceMut<T>: AsSlice<T> {
    /// The data as a mutable slice.
    fn as_slice_mut(&mut self) -> &mut [T];
}

impl<T> AsSliceMut<T> for Vec<T> {
    fn as_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

impl<T, const N: usize> AsSliceMut<T> for [T; N] {
    fn as_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

/// A buffer resize policy (§III-C). Chosen *at compile time* per
/// parameter; only the selected policy's code is instantiated.
pub trait ResizePolicy {
    /// Prepares `buf` to hold `needed` elements according to the policy.
    ///
    /// `NoResize` reports an undersized buffer as
    /// [`MpiError::Truncated`](kmp_mpi::MpiError::Truncated) — the Rust
    /// rendering of KaMPIng's "no checking, assume capacity is large
    /// enough" default, upgraded from undefined behaviour to a
    /// recoverable error.
    fn prepare<T: Plain>(buf: &mut Vec<T>, needed: usize) -> kmp_mpi::Result<()>;

    /// Human-readable policy name (used in diagnostics).
    const NAME: &'static str;
}

/// Never resize; error if the buffer is already too small (default).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoResize;

/// Resize to exactly the needed size.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResizeToFit;

/// Grow to the needed size if too small; never shrink.
#[derive(Clone, Copy, Debug, Default)]
pub struct GrowOnly;

impl ResizePolicy for NoResize {
    fn prepare<T: Plain>(buf: &mut Vec<T>, needed: usize) -> kmp_mpi::Result<()> {
        if buf.len() < needed {
            return Err(kmp_mpi::MpiError::Truncated {
                message_bytes: needed * std::mem::size_of::<T>(),
                buffer_bytes: std::mem::size_of_val(buf.as_slice()),
            });
        }
        Ok(())
    }
    const NAME: &'static str = "no_resize";
}

impl ResizePolicy for ResizeToFit {
    fn prepare<T: Plain>(buf: &mut Vec<T>, needed: usize) -> kmp_mpi::Result<()> {
        // `T: Plain` guarantees the zero pattern is a valid value.
        buf.clear();
        buf.resize_with(needed, || kmp_mpi::plain::zeroed::<T>());
        Ok(())
    }
    const NAME: &'static str = "resize_to_fit";
}

impl ResizePolicy for GrowOnly {
    fn prepare<T: Plain>(buf: &mut Vec<T>, needed: usize) -> kmp_mpi::Result<()> {
        if buf.len() < needed {
            buf.resize_with(needed, || kmp_mpi::plain::zeroed::<T>());
        }
        Ok(())
    }
    const NAME: &'static str = "grow_only";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_slice_forms() {
        let v = vec![1u8, 2, 3];
        assert_eq!(AsSlice::as_slice(&&v), &[1, 2, 3]);
        assert_eq!(AsSlice::as_slice(&v.clone()), &[1, 2, 3]);
        assert_eq!(AsSlice::as_slice(&&v[..]), &[1, 2, 3]);
        assert_eq!(AsSlice::as_slice(&[9u8, 8]), &[9, 8]);
    }

    #[test]
    fn as_slice_mut_forms() {
        let mut v = vec![1u8, 2];
        v.as_slice_mut()[0] = 9;
        assert_eq!(v, vec![9, 2]);
        let mut a = [1u16, 2];
        a.as_slice_mut()[1] = 7;
        assert_eq!(a, [1, 7]);
    }

    #[test]
    fn resize_to_fit_always_matches() {
        let mut v = vec![5u32; 10];
        ResizeToFit::prepare(&mut v, 3).unwrap();
        assert_eq!(v.len(), 3);
        ResizeToFit::prepare(&mut v, 8).unwrap();
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn grow_only_never_shrinks() {
        let mut v = vec![5u32; 10];
        GrowOnly::prepare(&mut v, 3).unwrap();
        assert_eq!(v.len(), 10);
        GrowOnly::prepare(&mut v, 20).unwrap();
        assert_eq!(v.len(), 20);
        assert_eq!(&v[..10], &[5; 10]);
    }

    #[test]
    fn no_resize_accepts_fitting_buffer() {
        let mut v = vec![0u8; 4];
        NoResize::prepare(&mut v, 4).unwrap();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn no_resize_errors_when_too_small() {
        let mut v = vec![0u8; 2];
        let err = NoResize::prepare(&mut v, 4).unwrap_err();
        assert!(
            matches!(
                err,
                kmp_mpi::MpiError::Truncated {
                    message_bytes: 4,
                    buffer_bytes: 2
                }
            ),
            "undersized no_resize buffers report Truncated, got {err}"
        );
    }
}
