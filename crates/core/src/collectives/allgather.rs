//! `allgather` / `allgatherv` with named parameters.

use kmp_mpi::collectives::displacements_from_counts;
use kmp_mpi::{Plain, Result};

use crate::communicator::Communicator;
use crate::params::argset::{ArgSet, IntoArgs};
use crate::params::output::{FinalOf, Finalize, Push1, Push2, Push3, PushComponent};
use crate::params::slots::{CountsSlot, ProvidesSendData, RecvBufSpec, SendRecvBufSpec};
use crate::params::{Absent, SendBuf, SendRecvBuf};

/// Valid argument sets for [`Communicator::allgatherv`].
pub trait AllgathervArgs<T: Plain> {
    /// The call's result shape, computed from the slots at compile time.
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B, RB, RC, RD> AllgathervArgs<T>
    for ArgSet<SendBuf<B>, Absent, RB, Absent, RC, Absent, RD, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    RC: CountsSlot,
    RD: CountsSlot,
    RB::Out: PushComponent<()>,
    RC::Out: PushComponent<Push1<RB::Out>>,
    RD::Out: PushComponent<Push2<RB::Out, RC::Out>>,
    Push3<RB::Out, RC::Out, RD::Out>: Finalize,
{
    type Output = FinalOf<Push3<RB::Out, RC::Out, RD::Out>>;

    fn run(self, comm: &Communicator) -> Result<Self::Output> {
        let send = self.send_buf.send_slice();

        // Default recv counts: allgather each rank's send count — the
        // boilerplate of Fig. 2, issued only when the parameter is absent
        // (RC::PROVIDED is a compile-time constant).
        let computed_counts: Option<Vec<usize>> = if RC::PROVIDED {
            None
        } else {
            Some(comm.raw().allgather_vec(&[send.len()])?)
        };
        let counts: &[usize] = match self.recv_counts.provided() {
            Some(c) => c,
            None => computed_counts
                .as_deref()
                .expect("computed when not provided"),
        };

        // Default recv displacements: exclusive prefix sum (local).
        let computed_displs: Option<Vec<usize>> = if RD::PROVIDED {
            None
        } else {
            Some(displacements_from_counts(counts))
        };
        let displs: &[usize] = match self.recv_displs.provided() {
            Some(d) => d,
            None => computed_displs
                .as_deref()
                .expect("computed when not provided"),
        };

        let needed = displs
            .iter()
            .zip(counts)
            .map(|(d, c)| d + c)
            .max()
            .unwrap_or(0);
        let raw = comm.raw();
        let ((), rb_out) = self.recv_buf.apply(needed, |storage| {
            raw.allgatherv_into(send, storage, counts, displs)
        })?;

        let acc = ();
        let acc = rb_out.push_component(acc);
        let acc = self.recv_counts.finish(computed_counts).push_component(acc);
        let acc = self.recv_displs.finish(computed_displs).push_component(acc);
        Ok(acc.finalize())
    }
}

/// Valid argument sets for [`Communicator::allgather`] with explicit send
/// data.
pub trait AllgatherArgs<T: Plain> {
    /// The call's result shape.
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B, RB> AllgatherArgs<T>
    for ArgSet<SendBuf<B>, Absent, RB, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    RB::Out: PushComponent<()>,
    Push1<RB::Out>: Finalize,
{
    type Output = FinalOf<Push1<RB::Out>>;

    fn run(self, comm: &Communicator) -> Result<Self::Output> {
        let send = self.send_buf.send_slice();
        let needed = send.len() * comm.size();
        let raw = comm.raw();
        let ((), rb_out) = self
            .recv_buf
            .apply(needed, |storage| raw.allgather_into(send, storage))?;
        Ok(rb_out.push_component(()).finalize())
    }
}

/// Valid argument sets for the in-place [`Communicator::allgather`]
/// (`send_recv_buf`, §III-G): the buffer holds `p` blocks; the own block
/// is read from position `rank` and all blocks are filled.
pub trait AllgatherInPlaceArgs<T: Plain> {
    /// The call's result shape (`Vec<T>` for owned buffers, `()` for
    /// borrowed ones).
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B> AllgatherInPlaceArgs<T>
    for ArgSet<Absent, SendRecvBuf<B>, Absent, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendRecvBuf<B>: SendRecvBufSpec<T>,
    <SendRecvBuf<B> as SendRecvBufSpec<T>>::Out: PushComponent<()>,
    Push1<<SendRecvBuf<B> as SendRecvBufSpec<T>>::Out>: Finalize,
{
    type Output = FinalOf<Push1<<SendRecvBuf<B> as SendRecvBufSpec<T>>::Out>>;

    fn run(self, comm: &Communicator) -> Result<Self::Output> {
        let raw = comm.raw();
        let ((), out) = self
            .send_recv_buf
            .apply(|buf| raw.allgather_in_place(buf))?;
        Ok(out.push_component(()).finalize())
    }
}

impl Communicator {
    /// Gathers variable-sized contributions from all ranks to all ranks
    /// (wraps `MPI_Allgatherv`, §III-A's running example).
    ///
    /// Accepted parameters: `send_buf` (required), `recv_buf`,
    /// `recv_counts`/`recv_counts_out`, `recv_displs`/`recv_displs_out`.
    ///
    /// ```
    /// use kamping::prelude::*;
    ///
    /// kmp_mpi::Universe::run(3, |comm| {
    ///     let comm = Communicator::new(comm);
    ///     let mine = vec![comm.rank() as u32; comm.rank() + 1];
    ///     // Fig. 1 (1): concise call with computed defaults.
    ///     let all: Vec<u32> = comm.allgatherv(send_buf(&mine)).unwrap();
    ///     assert_eq!(all, vec![0, 1, 1, 2, 2, 2]);
    ///     // Fig. 1 (2): request the computed counts back.
    ///     let (all, counts) =
    ///         comm.allgatherv((send_buf(&mine), recv_counts_out())).unwrap();
    ///     assert_eq!(all.len(), 6);
    ///     assert_eq!(counts, vec![1, 2, 3]);
    /// });
    /// ```
    pub fn allgatherv<T, A>(&self, args: A) -> Result<<A::Out as AllgathervArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: AllgathervArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Gathers equal-sized contributions from all ranks to all ranks
    /// (wraps `MPI_Allgather`). With `send_buf`, the concatenation is
    /// returned (or written to `recv_buf`); with `send_recv_buf`, the
    /// in-place variant is selected (§III-G).
    pub fn allgather<T, A>(&self, args: A) -> Result<<A::Out as AllgatherDispatch<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: AllgatherDispatch<T>,
    {
        args.into_args().dispatch(self)
    }
}

/// Dispatch between the explicit (`send_buf`) and in-place
/// (`send_recv_buf`) forms of `allgather`, decided by which slot is
/// occupied — the compile-time replacement for `MPI_IN_PLACE`.
pub trait AllgatherDispatch<T: Plain> {
    /// The call's result shape.
    type Output;
    /// Executes the selected variant.
    fn dispatch(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B, RB> AllgatherDispatch<T>
    for ArgSet<SendBuf<B>, Absent, RB, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    RB::Out: PushComponent<()>,
    Push1<RB::Out>: Finalize,
{
    type Output = <Self as AllgatherArgs<T>>::Output;

    fn dispatch(self, comm: &Communicator) -> Result<Self::Output> {
        AllgatherArgs::run(self, comm)
    }
}

impl<T, B> AllgatherDispatch<T>
    for ArgSet<Absent, SendRecvBuf<B>, Absent, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendRecvBuf<B>: SendRecvBufSpec<T>,
    <SendRecvBuf<B> as SendRecvBufSpec<T>>::Out: PushComponent<()>,
    Push1<<SendRecvBuf<B> as SendRecvBufSpec<T>>::Out>: Finalize,
{
    type Output = <Self as AllgatherInPlaceArgs<T>>::Output;

    fn dispatch(self, comm: &Communicator) -> Result<Self::Output> {
        AllgatherInPlaceArgs::run(self, comm)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::Universe;

    #[test]
    fn allgatherv_defaults_only() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u64; comm.rank()];
            let all: Vec<u64> = comm.allgatherv(send_buf(&mine)).unwrap();
            assert_eq!(all, vec![1, 2, 2, 3, 3, 3]);
        });
    }

    #[test]
    fn allgatherv_with_counts_out_and_displs_out() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![7u32; comm.rank() + 1];
            let (all, counts, displs) = comm
                .allgatherv((send_buf(&mine), recv_counts_out(), recv_displs_out()))
                .unwrap();
            assert_eq!(all.len(), 6);
            assert_eq!(counts, vec![1, 2, 3]);
            assert_eq!(displs, vec![0, 1, 3]);
        });
    }

    #[test]
    fn allgatherv_with_provided_counts_issues_no_extra_allgather() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u8; 2];
            let counts = vec![2usize; 3];
            let before = comm.call_counts();
            let all: Vec<u8> = comm
                .allgatherv((send_buf(&mine), recv_counts(&counts)))
                .unwrap();
            let delta = comm.call_counts().since(&before);
            // Exactly one allgatherv, zero count-exchanging allgathers:
            // the PMPI-style check of §III-H.
            assert_eq!(delta.get("allgatherv"), 1);
            assert_eq!(delta.get("allgather"), 0);
            assert_eq!(all, vec![0, 0, 1, 1, 2, 2]);
        });
    }

    #[test]
    fn allgatherv_omitted_counts_issue_exactly_one_allgather() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![1u8; comm.rank()];
            let before = comm.call_counts();
            let _: Vec<u8> = comm.allgatherv(send_buf(&mine)).unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("allgather"), 1);
            assert_eq!(delta.get("allgatherv"), 1);
            assert_eq!(delta.total(), 2);
        });
    }

    #[test]
    fn allgatherv_into_borrowed_buffer_resize_to_fit() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u16; comm.rank() + 1];
            let mut out = Vec::new();
            // Version 2 of Fig. 3: explicit recv_buf with resize policy.
            comm.allgatherv((send_buf(&mine), recv_buf(&mut out).resize_to_fit()))
                .unwrap();
            assert_eq!(out, vec![0, 1, 1, 2, 2, 2]);
        });
    }

    #[test]
    fn allgatherv_moved_container_is_returned() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u64];
            let storage = Vec::with_capacity(64);
            let out: Vec<u64> = comm
                .allgatherv((send_buf(&mine), recv_buf(storage).resize_to_fit()))
                .unwrap();
            assert_eq!(out, vec![0, 1]);
            // The reused allocation survives the move in and out.
            assert!(out.capacity() >= 64);
        });
    }

    #[test]
    fn allgather_equal_blocks() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mine = [comm.rank() as u32; 2];
            let all: Vec<u32> = comm.allgather(send_buf(&mine[..])).unwrap();
            assert_eq!(all, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        });
    }

    #[test]
    fn allgather_in_place_fig3_version1() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            // The count-exchange pattern of Fig. 3, version 1.
            let mut rc = vec![0usize; comm.size()];
            rc[comm.rank()] = comm.rank() * 10;
            comm.allgather(send_recv_buf(&mut rc)).unwrap();
            assert_eq!(rc, vec![0, 10, 20, 30]);
        });
    }

    #[test]
    fn allgather_in_place_moved_fig_simplified_inplace() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            // §III-G: data = comm.allgather(send_recv_buf(std::move(data)))
            let mut data = vec![0u64; comm.size()];
            data[comm.rank()] = comm.rank() as u64 + 1;
            let data: Vec<u64> = comm.allgather(send_recv_buf(data)).unwrap();
            assert_eq!(data, vec![1, 2, 3]);
        });
    }

    #[test]
    fn allgatherv_empty_contribution() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mine: Vec<u8> = if comm.rank() == 1 { vec![9] } else { vec![] };
            let all: Vec<u8> = comm.allgatherv(send_buf(&mine)).unwrap();
            assert_eq!(all, vec![9]);
        });
    }

    #[test]
    fn allgatherv_single_rank() {
        Universe::run(1, |comm| {
            let comm = Communicator::new(comm);
            let all: Vec<u32> = comm.allgatherv(send_buf(&vec![1u32, 2])).unwrap();
            assert_eq!(all, vec![1, 2]);
        });
    }
}
