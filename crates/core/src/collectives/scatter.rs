//! `scatter` / `scatterv` with named parameters.

use kmp_mpi::collectives::displacements_from_counts;
use kmp_mpi::{Plain, Result};

use crate::communicator::Communicator;
use crate::params::argset::{ArgSet, IntoArgs};
use crate::params::output::{FinalOf, Finalize, Push1, Push2, PushComponent};
use crate::params::slots::{CountsSlot, ProvidesSendData, RecvBufSpec};
use crate::params::{Absent, SendBuf};

/// Valid argument sets for [`Communicator::scatter`].
pub trait ScatterArgs<T: Plain> {
    /// The call's result shape.
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B, RB> ScatterArgs<T>
    for ArgSet<SendBuf<B>, Absent, RB, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    RB::Out: PushComponent<()>,
    Push1<RB::Out>: Finalize,
{
    type Output = FinalOf<Push1<RB::Out>>;

    fn run(self, comm: &Communicator) -> Result<Self::Output> {
        let root = self.meta.root.unwrap_or(0);
        let send = self.send_buf.send_slice();
        // The block travels with its length, so non-root ranks need no
        // recv_count parameter.
        let block = comm
            .raw()
            .scatter_vec((comm.rank() == root).then_some(send), root)?;
        let ((), rb_out) = self.recv_buf.apply(block.len(), |storage| {
            storage[..block.len()].copy_from_slice(&block);
            Ok(())
        })?;
        Ok(rb_out.push_component(()).finalize())
    }
}

/// Valid argument sets for [`Communicator::scatterv`].
pub trait ScattervArgs<T: Plain> {
    /// The call's result shape.
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B, RB, SC, SD> ScattervArgs<T>
    for ArgSet<SendBuf<B>, Absent, RB, SC, Absent, SD, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    SC: CountsSlot,
    SD: CountsSlot,
    RB::Out: PushComponent<()>,
    SD::Out: PushComponent<Push1<RB::Out>>,
    Push2<RB::Out, SD::Out>: Finalize,
{
    type Output = FinalOf<Push2<RB::Out, SD::Out>>;

    fn run(self, comm: &Communicator) -> Result<Self::Output> {
        let root = self.meta.root.unwrap_or(0);
        let is_root = comm.rank() == root;
        let send = self.send_buf.send_slice();
        let counts = self.send_counts.provided();
        assert!(
            !is_root || counts.is_some(),
            "scatterv: the root must provide `send_counts`"
        );

        let computed_sd: Option<Vec<usize>> = if SD::PROVIDED {
            None
        } else if is_root {
            Some(displacements_from_counts(counts.expect("checked above")))
        } else {
            Some(Vec::new())
        };
        let send_displs: &[usize] = match self.send_displs.provided() {
            Some(d) => d,
            None => computed_sd.as_deref().expect("computed when not provided"),
        };

        let block = comm.raw().scatterv_vec(
            is_root.then(|| (send, counts.expect("checked above"), send_displs)),
            root,
        )?;
        let ((), rb_out) = self.recv_buf.apply(block.len(), |storage| {
            storage[..block.len()].copy_from_slice(&block);
            Ok(())
        })?;

        let acc = ();
        let acc = rb_out.push_component(acc);
        let acc = self.send_displs.finish(computed_sd).push_component(acc);
        Ok(acc.finalize())
    }
}

impl Communicator {
    /// Scatters equal-sized blocks of the root's buffer to all ranks
    /// (wraps `MPI_Scatter`). Parameters: `send_buf` (significant at the
    /// root), `recv_buf`, `root` (default 0). The block length travels
    /// with the message, so receivers need not know it in advance.
    pub fn scatter<T, A>(&self, args: A) -> Result<<A::Out as ScatterArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: ScatterArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Scatters variable-sized blocks (wraps `MPI_Scatterv`). Parameters:
    /// `send_buf` and `send_counts` (significant at the root),
    /// `send_displs`(`_out`), `recv_buf`, `root` (default 0).
    pub fn scatterv<T, A>(&self, args: A) -> Result<<A::Out as ScattervArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: ScattervArgs<T>,
    {
        args.into_args().run(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::Universe;

    #[test]
    fn scatter_equal_blocks() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let send: Vec<u32> = if comm.rank() == 0 {
                (0..8).collect()
            } else {
                vec![]
            };
            let mine: Vec<u32> = comm.scatter(send_buf(&send)).unwrap();
            assert_eq!(
                mine,
                vec![2 * comm.rank() as u32, 2 * comm.rank() as u32 + 1]
            );
        });
    }

    #[test]
    fn scatterv_variable_blocks() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let send: Vec<u64> = if comm.rank() == 1 {
                (0..6).collect()
            } else {
                vec![]
            };
            let counts = vec![3usize, 1, 2];
            let mine: Vec<u64> = comm
                .scatterv((send_buf(&send), send_counts(&counts), root(1)))
                .unwrap();
            match comm.rank() {
                0 => assert_eq!(mine, vec![0, 1, 2]),
                1 => assert_eq!(mine, vec![3]),
                2 => assert_eq!(mine, vec![4, 5]),
                _ => unreachable!(),
            }
        });
    }

    #[test]
    fn scatterv_displs_out_at_root() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let send: Vec<u8> = if comm.rank() == 0 {
                vec![1, 2, 3]
            } else {
                vec![]
            };
            let counts = vec![1usize, 2];
            let (mine, sd) = comm
                .scatterv((send_buf(&send), send_counts(&counts), send_displs_out()))
                .unwrap();
            if comm.rank() == 0 {
                assert_eq!(mine, vec![1]);
                assert_eq!(sd, vec![0, 1]);
            } else {
                assert_eq!(mine, vec![2, 3]);
                assert!(sd.is_empty());
            }
        });
    }

    #[test]
    fn scatter_into_growable_buffer() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let send: Vec<u16> = if comm.rank() == 0 { vec![7, 8] } else { vec![] };
            let mut out = Vec::new();
            comm.scatter((send_buf(&send), recv_buf(&mut out).grow_only()))
                .unwrap();
            assert_eq!(out, vec![7 + comm.rank() as u16]);
        });
    }
}
