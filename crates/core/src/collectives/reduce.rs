//! `reduce` / `allreduce` / `scan` / `exscan` with named parameters.

use kmp_mpi::{Plain, Result};

use crate::communicator::Communicator;
use crate::params::argset::{ArgSet, IntoArgs};
use crate::params::output::{FinalOf, Finalize, Push1, PushComponent};
use crate::params::slots::{ProvidesOp, ProvidesSendData, RecvBufSpec};
use crate::params::{Absent, OpParam, SendBuf};

macro_rules! reduction_family {
    ($(#[$doc:meta])* $trait_name:ident, $runner:ident) => {
        $(#[$doc])*
        pub trait $trait_name<T: Plain> {
            /// The call's result shape.
            type Output;
            /// Executes the call.
            fn run(self, comm: &Communicator) -> Result<Self::Output>;
        }

        impl<T, B, RB, O> $trait_name<T>
            for ArgSet<SendBuf<B>, Absent, RB, Absent, Absent, Absent, Absent, OpParam<O>>
        where
            T: Plain,
            SendBuf<B>: ProvidesSendData<T>,
            RB: RecvBufSpec<T>,
            OpParam<O>: ProvidesOp<T>,
            RB::Out: PushComponent<()>,
            Push1<RB::Out>: Finalize,
        {
            type Output = FinalOf<Push1<RB::Out>>;

            fn run(self, comm: &Communicator) -> Result<Self::Output> {
                let rb_out = $runner(comm, self)?;
                Ok(rb_out.push_component(()).finalize())
            }
        }
    };
}

fn run_reduce<T, B, RB, O>(
    comm: &Communicator,
    args: ArgSet<SendBuf<B>, Absent, RB, Absent, Absent, Absent, Absent, OpParam<O>>,
) -> Result<RB::Out>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    OpParam<O>: ProvidesOp<T>,
{
    let _tuning = comm.raw().tuning_guard(args.meta.tuning);
    let root = args.meta.root.unwrap_or(0);
    let send = args.send_buf.send_slice();
    let op = args.op.into_op();
    let needed = if comm.rank() == root { send.len() } else { 0 };
    let raw = comm.raw();
    let ((), rb_out) = args
        .recv_buf
        .apply(needed, |storage| raw.reduce_into(send, storage, op, root))?;
    Ok(rb_out)
}

fn run_allreduce<T, B, RB, O>(
    comm: &Communicator,
    args: ArgSet<SendBuf<B>, Absent, RB, Absent, Absent, Absent, Absent, OpParam<O>>,
) -> Result<RB::Out>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    OpParam<O>: ProvidesOp<T>,
{
    let _tuning = comm.raw().tuning_guard(args.meta.tuning);
    let send = args.send_buf.send_slice();
    let op = args.op.into_op();
    let raw = comm.raw();
    let ((), rb_out) = args
        .recv_buf
        .apply(send.len(), |storage| raw.allreduce_into(send, storage, op))?;
    Ok(rb_out)
}

fn run_scan<T, B, RB, O>(
    comm: &Communicator,
    args: ArgSet<SendBuf<B>, Absent, RB, Absent, Absent, Absent, Absent, OpParam<O>>,
) -> Result<RB::Out>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    OpParam<O>: ProvidesOp<T>,
{
    let _tuning = comm.raw().tuning_guard(args.meta.tuning);
    let send = args.send_buf.send_slice();
    let op = args.op.into_op();
    let raw = comm.raw();
    let ((), rb_out) = args
        .recv_buf
        .apply(send.len(), |storage| raw.scan_into(send, storage, op))?;
    Ok(rb_out)
}

fn run_exscan<T, B, RB, O>(
    comm: &Communicator,
    args: ArgSet<SendBuf<B>, Absent, RB, Absent, Absent, Absent, Absent, OpParam<O>>,
) -> Result<RB::Out>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    OpParam<O>: ProvidesOp<T>,
{
    let _tuning = comm.raw().tuning_guard(args.meta.tuning);
    let send = args.send_buf.send_slice();
    let op = args.op.into_op();
    let raw = comm.raw();
    let ((), rb_out) = args.recv_buf.apply(send.len(), |storage| {
        let prefix = raw.exscan_vec(send, op)?;
        // MPI leaves rank 0 undefined; kamping defaults it to the input
        // values (the natural identity for prefix sums over own data is
        // "nothing reduced yet" — we keep the storage zeroed).
        if let Some(prefix) = prefix {
            storage[..prefix.len()].copy_from_slice(&prefix);
        }
        Ok(())
    })?;
    Ok(rb_out)
}

reduction_family!(
    /// Valid argument sets for [`Communicator::reduce`].
    ReduceArgs,
    run_reduce
);
reduction_family!(
    /// Valid argument sets for [`Communicator::allreduce`].
    AllreduceArgs,
    run_allreduce
);
reduction_family!(
    /// Valid argument sets for [`Communicator::scan`].
    ScanArgs,
    run_scan
);
reduction_family!(
    /// Valid argument sets for [`Communicator::exscan`].
    ExscanArgs,
    run_exscan
);

/// Valid argument sets for [`Communicator::allreduce_single`].
pub trait AllreduceSingleArgs<T: Plain> {
    /// The single reduced value.
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B, O> AllreduceSingleArgs<T>
    for ArgSet<SendBuf<B>, Absent, Absent, Absent, Absent, Absent, Absent, OpParam<O>>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    OpParam<O>: ProvidesOp<T>,
{
    type Output = T;

    fn run(self, comm: &Communicator) -> Result<T> {
        let send = self.send_buf.send_slice();
        assert_eq!(
            send.len(),
            1,
            "allreduce_single requires exactly one element"
        );
        let op = self.op.into_op();
        comm.raw().allreduce_one(send[0], op)
    }
}

impl Communicator {
    /// Elementwise reduction to the root (wraps `MPI_Reduce`). Non-root
    /// ranks receive an empty vector. Parameters: `send_buf` and `op`
    /// (required), `recv_buf`, `root` (default 0).
    pub fn reduce<T, A>(&self, args: A) -> Result<<A::Out as ReduceArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: ReduceArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Elementwise reduction to all ranks (wraps `MPI_Allreduce`).
    /// Parameters: `send_buf` and `op` (required), `recv_buf`.
    pub fn allreduce<T, A>(&self, args: A) -> Result<<A::Out as AllreduceArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: AllreduceArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Reduces a single element to all ranks, returning the bare value
    /// (the `allreduce_single` of Fig. 9).
    pub fn allreduce_single<T, A>(
        &self,
        args: A,
    ) -> Result<<A::Out as AllreduceSingleArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: AllreduceSingleArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Inclusive prefix reduction (wraps `MPI_Scan`). Parameters:
    /// `send_buf` and `op` (required), `recv_buf`.
    pub fn scan<T, A>(&self, args: A) -> Result<<A::Out as ScanArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: ScanArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Exclusive prefix reduction (wraps `MPI_Exscan`). Rank 0 receives
    /// zeroed values (MPI leaves it undefined). Parameters: `send_buf`
    /// and `op` (required), `recv_buf`.
    pub fn exscan<T, A>(&self, args: A) -> Result<<A::Out as ExscanArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: ExscanArgs<T>,
    {
        args.into_args().run(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::Universe;

    #[test]
    fn allreduce_sum_vector() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u64, 1];
            let total: Vec<u64> = comm.allreduce((send_buf(&mine), op(ops::Sum))).unwrap();
            assert_eq!(total, vec![6, 4]);
        });
    }

    #[test]
    fn allreduce_single_logical_and() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            // The is_empty() idiom from the paper's BFS (Fig. 9).
            let local_empty = 1u8;
            let all_empty = comm
                .allreduce_single((send_buf(&[local_empty]), op(ops::LogicalAnd)))
                .unwrap();
            assert_eq!(all_empty, 1);
        });
    }

    #[test]
    fn allreduce_with_lambda() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            // Reduction via lambda — a feature the MPI forum wishlist
            // calls out (§II).
            let mine = vec![comm.rank() as u32 + 1];
            let prod: Vec<u32> = comm
                .allreduce((
                    send_buf(&mine),
                    op(ops::commutative(|a: &u32, b: &u32| a * b)),
                ))
                .unwrap();
            assert_eq!(prod, vec![6]);
        });
    }

    #[test]
    fn reduce_to_root_only() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![1u32];
            let out: Vec<u32> = comm
                .reduce((send_buf(&mine), op(ops::Sum), root(2)))
                .unwrap();
            if comm.rank() == 2 {
                assert_eq!(out, vec![4]);
            } else {
                assert!(out.is_empty());
            }
        });
    }

    #[test]
    fn scan_running_max() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![(comm.rank() as i64 - 1).abs()];
            let running: Vec<i64> = comm.scan((send_buf(&mine), op(ops::Max))).unwrap();
            // Values: 1, 0, 1, 2 -> running max 1, 1, 1, 2.
            let expected = [1, 1, 1, 2][comm.rank()];
            assert_eq!(running, vec![expected]);
        });
    }

    #[test]
    fn exscan_prefix_sums() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u64 + 1];
            let prefix: Vec<u64> = comm.exscan((send_buf(&mine), op(ops::Sum))).unwrap();
            let r = comm.rank() as u64;
            assert_eq!(prefix, vec![r * (r + 1) / 2]);
        });
    }

    #[test]
    fn allreduce_into_provided_storage() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![2.5f64];
            let mut out = vec![0.0f64];
            comm.allreduce((send_buf(&mine), op(ops::Sum), recv_buf(&mut out)))
                .unwrap();
            assert_eq!(out, vec![5.0]);
        });
    }
}
