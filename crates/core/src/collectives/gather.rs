//! `gather` / `gatherv` with named parameters.

use kmp_mpi::collectives::displacements_from_counts;
use kmp_mpi::{Plain, Result};

use crate::communicator::Communicator;
use crate::params::argset::{ArgSet, IntoArgs};
use crate::params::output::{FinalOf, Finalize, Push1, Push2, Push3, PushComponent};
use crate::params::slots::{CountsSlot, ProvidesSendData, RecvBufSpec};
use crate::params::{Absent, SendBuf};

/// Valid argument sets for [`Communicator::gatherv`].
pub trait GathervArgs<T: Plain> {
    /// The call's result shape.
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B, RB, RC, RD> GathervArgs<T>
    for ArgSet<SendBuf<B>, Absent, RB, Absent, RC, Absent, RD, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    RC: CountsSlot,
    RD: CountsSlot,
    RB::Out: PushComponent<()>,
    RC::Out: PushComponent<Push1<RB::Out>>,
    RD::Out: PushComponent<Push2<RB::Out, RC::Out>>,
    Push3<RB::Out, RC::Out, RD::Out>: Finalize,
{
    type Output = FinalOf<Push3<RB::Out, RC::Out, RD::Out>>;

    fn run(self, comm: &Communicator) -> Result<Self::Output> {
        let root = self.meta.root.unwrap_or(0);
        let send = self.send_buf.send_slice();
        let is_root = comm.rank() == root;

        // Default recv counts: gather each rank's send count to the root.
        let computed_counts: Option<Vec<usize>> = if RC::PROVIDED {
            None
        } else {
            let mut counts = if is_root {
                vec![0usize; comm.size()]
            } else {
                vec![]
            };
            comm.raw().gather_into(&[send.len()], &mut counts, root)?;
            Some(counts)
        };
        let counts: &[usize] = match self.recv_counts.provided() {
            Some(c) => c,
            None => computed_counts
                .as_deref()
                .expect("computed when not provided"),
        };

        // Default displacements at the root: exclusive prefix sum.
        let computed_displs: Option<Vec<usize>> = if RD::PROVIDED {
            None
        } else if is_root {
            Some(displacements_from_counts(counts))
        } else {
            Some(Vec::new())
        };
        let displs: &[usize] = match self.recv_displs.provided() {
            Some(d) => d,
            None => computed_displs
                .as_deref()
                .expect("computed when not provided"),
        };

        let needed = if is_root {
            displs
                .iter()
                .zip(counts)
                .map(|(d, c)| d + c)
                .max()
                .unwrap_or(0)
        } else {
            0
        };
        let raw = comm.raw();
        let ((), rb_out) = self.recv_buf.apply(needed, |storage| {
            raw.gatherv_into(send, storage, counts, displs, root)
        })?;

        let acc = ();
        let acc = rb_out.push_component(acc);
        let acc = self.recv_counts.finish(computed_counts).push_component(acc);
        let acc = self.recv_displs.finish(computed_displs).push_component(acc);
        Ok(acc.finalize())
    }
}

/// Valid argument sets for [`Communicator::gather`].
pub trait GatherArgs<T: Plain> {
    /// The call's result shape.
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B, RB> GatherArgs<T>
    for ArgSet<SendBuf<B>, Absent, RB, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    RB::Out: PushComponent<()>,
    Push1<RB::Out>: Finalize,
{
    type Output = FinalOf<Push1<RB::Out>>;

    fn run(self, comm: &Communicator) -> Result<Self::Output> {
        let root = self.meta.root.unwrap_or(0);
        let send = self.send_buf.send_slice();
        let needed = if comm.rank() == root {
            send.len() * comm.size()
        } else {
            0
        };
        let raw = comm.raw();
        let ((), rb_out) = self
            .recv_buf
            .apply(needed, |storage| raw.gather_into(send, storage, root))?;
        Ok(rb_out.push_component(()).finalize())
    }
}

impl Communicator {
    /// Gathers equal-sized contributions to the root (wraps `MPI_Gather`).
    /// Non-root ranks receive an empty vector. Parameters: `send_buf`
    /// (required), `recv_buf`, `root` (default 0).
    pub fn gather<T, A>(&self, args: A) -> Result<<A::Out as GatherArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: GatherArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Gathers variable-sized contributions to the root (wraps
    /// `MPI_Gatherv`). Omitted receive counts are gathered from the send
    /// counts; omitted displacements are prefix sums. Parameters:
    /// `send_buf` (required), `recv_buf`, `recv_counts`(`_out`),
    /// `recv_displs`(`_out`), `root` (default 0).
    pub fn gatherv<T, A>(&self, args: A) -> Result<<A::Out as GathervArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: GathervArgs<T>,
    {
        args.into_args().run(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::Universe;

    #[test]
    fn gather_to_default_root() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let all: Vec<u32> = comm.gather(send_buf(&[comm.rank() as u32])).unwrap();
            if comm.rank() == 0 {
                assert_eq!(all, vec![0, 1, 2]);
            } else {
                assert!(all.is_empty());
            }
        });
    }

    #[test]
    fn gather_to_explicit_root() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let all: Vec<u32> = comm
                .gather((send_buf(&[comm.rank() as u32 * 2]), root(2)))
                .unwrap();
            if comm.rank() == 2 {
                assert_eq!(all, vec![0, 2, 4]);
            } else {
                assert!(all.is_empty());
            }
        });
    }

    #[test]
    fn gatherv_with_computed_counts() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u8; comm.rank()];
            let (all, counts) = comm.gatherv((send_buf(&mine), recv_counts_out())).unwrap();
            if comm.rank() == 0 {
                assert_eq!(all, vec![1, 2, 2]);
                assert_eq!(counts, vec![0, 1, 2]);
            } else {
                assert!(all.is_empty());
            }
        });
    }

    #[test]
    fn gatherv_counts_exchange_is_one_gather() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![1u8; comm.rank() + 1];
            let before = comm.call_counts();
            let _: Vec<u8> = comm.gatherv(send_buf(&mine)).unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("gather"), 1);
            assert_eq!(delta.get("gatherv"), 1);
            assert_eq!(delta.total(), 2);
        });
    }

    #[test]
    fn gatherv_into_preallocated_root_buffer() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u64 + 5];
            let mut out = Vec::new();
            comm.gatherv((send_buf(&mine), recv_buf(&mut out).resize_to_fit()))
                .unwrap();
            if comm.rank() == 0 {
                assert_eq!(out, vec![5, 6]);
            } else {
                assert!(out.is_empty());
            }
        });
    }
}
