//! Non-blocking collectives with named parameters (§III-E of the paper,
//! extended from point-to-point to collectives).
//!
//! Every `i*` operation returns a **typed future** that owns whatever the
//! caller moved into the call:
//!
//! - [`NonBlockingCollective`] (for `iallgatherv` / `iallgather` /
//!   `ialltoallv` / `iallreduce`): [`NonBlockingCollective::wait`]
//!   returns `(received_data, moved_in_send_buffer)` — the send buffer
//!   comes back to the caller exactly like Fig. 6's `v = r1.wait()`, and
//!   the received data *does not exist* before completion, so neither
//!   §III-E hazard (mutating an in-flight send buffer, reading an
//!   incomplete receive buffer) can be expressed.
//! - [`NonBlockingBcast`] (for `ibcast`): takes the `send_recv_buf` by
//!   value (owned `Vec<T>` only — a borrowed buffer would be accessible
//!   while in flight, so it does not compile) and hands the broadcast
//!   content back on `wait()`.
//!
//! Unlike their blocking counterparts, the variable-size operations need
//! **no receive counts at all** — not even a hidden count exchange: the
//! substrate engine discovers block sizes from the messages themselves,
//! and `wait_with_counts()` hands them back for free. Compare
//! `allgatherv`, which issues an extra `allgather` when counts are
//! omitted (Fig. 2).
//!
//! All futures compose with [`RequestPool`](crate::p2p::RequestPool) and
//! [`BoundedRequestPool`](crate::p2p::BoundedRequestPool) via
//! `submit_collective` / `submit_bcast`.

use std::marker::PhantomData;

use kmp_mpi::request::{Completion, Request, TestOutcome};
use kmp_mpi::{Plain, Result};

use crate::communicator::Communicator;
use crate::params::argset::{ArgSet, IntoArgs};
use crate::params::slots::{ProvidedCounts, ProvidesOp, ReclaimHold, SendToTransport};
use crate::params::{Absent, OpParam, SendBuf, SendRecvBuf};

/// Decodes a completed collective into `(data, per-rank counts)`: each
/// delivered block is copied **once**, straight into the final vector.
fn decode<T: Plain>(completion: Completion) -> (Vec<T>, Vec<usize>) {
    match completion.into_blocks() {
        None => (Vec::new(), Vec::new()),
        Some(blocks) => {
            let mut data = Vec::with_capacity(
                blocks.iter().map(|b| b.len()).sum::<usize>() / std::mem::size_of::<T>().max(1),
            );
            let mut counts = Vec::with_capacity(blocks.len());
            for b in &blocks {
                counts.push(kmp_mpi::plain::extend_vec_from_bytes(&mut data, b));
            }
            (data, counts)
        }
    }
}

/// A non-blocking collective in flight. An owned send container has
/// **moved into the transport** (the wire payload aliases its
/// allocation — zero call-time copies); the stored [`ReclaimHold`]
/// resolves back to it on completion, and the received data is produced
/// by `wait()`.
#[must_use = "non-blocking operations must be completed with wait() or test()"]
pub struct NonBlockingCollective<'a, T: Plain, H> {
    req: Request<'a>,
    hold: H,
    _elem: PhantomData<T>,
}

impl<'a, T: Plain, H: ReclaimHold> NonBlockingCollective<'a, T, H> {
    /// Blocks until the collective completes; returns the received data
    /// and hands back the moved-in send buffer.
    pub fn wait(self) -> Result<(Vec<T>, H::Back)> {
        let (data, _counts) = decode::<T>(self.req.wait()?);
        Ok((data, self.hold.finish()))
    }

    /// Like [`NonBlockingCollective::wait`], additionally returning the
    /// per-rank element counts (the v-collectives' receive counts,
    /// discovered from the messages — no extra communication).
    pub fn wait_with_counts(self) -> Result<(Vec<T>, Vec<usize>, H::Back)> {
        let (data, counts) = decode::<T>(self.req.wait()?);
        Ok((data, counts, self.hold.finish()))
    }

    /// Completion test: `Ok(Ok((data, buffer)))` when complete,
    /// `Ok(Err(self))` when still pending.
    #[allow(clippy::type_complexity)]
    pub fn test(self) -> Result<std::result::Result<(Vec<T>, H::Back), Self>> {
        match self.req.test()? {
            TestOutcome::Ready(c) => {
                let (data, _counts) = decode::<T>(c);
                Ok(Ok((data, self.hold.finish())))
            }
            TestOutcome::Pending(req) => Ok(Err(NonBlockingCollective {
                req,
                hold: self.hold,
                _elem: PhantomData,
            })),
        }
    }

    pub(crate) fn wait_discard(self) -> Result<()> {
        self.req.wait()?;
        Ok(())
    }

    pub(crate) fn test_discard(self) -> Result<std::result::Result<(), Self>> {
        match self.req.test()? {
            TestOutcome::Ready(_) => Ok(Ok(())),
            TestOutcome::Pending(req) => Ok(Err(NonBlockingCollective {
                req,
                hold: self.hold,
                _elem: PhantomData,
            })),
        }
    }

    pub(crate) fn raw_request(&self) -> &Request<'a> {
        &self.req
    }
}

/// A non-blocking broadcast in flight: the root's moved-in buffer is
/// the wire payload itself (zero call-time copies), reclaimed and
/// handed back by `wait()`.
#[must_use = "non-blocking operations must be completed with wait() or test()"]
pub struct NonBlockingBcast<'a, T: Plain> {
    req: Request<'a>,
    /// The root's moved-in buffer, aliased by the in-flight payload.
    root_buf: Option<kmp_mpi::SharedPayload<T>>,
}

impl<'a, T: Plain> NonBlockingBcast<'a, T> {
    /// Blocks until the broadcast completes; returns the broadcast
    /// content (on the root: the moved-in vector itself).
    pub fn wait(self) -> Result<Vec<T>> {
        let completion = self.req.wait()?;
        match self.root_buf {
            Some(buf) => {
                // Release the engine's view of the payload before
                // reclaiming, so the handback stays zero-copy.
                drop(completion);
                Ok(buf.take())
            }
            None => {
                let (data, _) = decode::<T>(completion);
                Ok(data)
            }
        }
    }

    /// Completion test: `Ok(Ok(content))` when complete, `Ok(Err(self))`
    /// when still pending.
    pub fn test(self) -> Result<std::result::Result<Vec<T>, Self>> {
        match self.req.test()? {
            TestOutcome::Ready(c) => match self.root_buf {
                Some(buf) => {
                    drop(c);
                    Ok(Ok(buf.take()))
                }
                None => {
                    let (data, _) = decode::<T>(c);
                    Ok(Ok(data))
                }
            },
            TestOutcome::Pending(req) => Ok(Err(NonBlockingBcast {
                req,
                root_buf: self.root_buf,
            })),
        }
    }

    pub(crate) fn wait_discard(self) -> Result<()> {
        self.req.wait()?;
        Ok(())
    }

    pub(crate) fn test_discard(self) -> Result<std::result::Result<(), Self>> {
        match self.req.test()? {
            TestOutcome::Ready(_) => Ok(Ok(())),
            TestOutcome::Pending(req) => Ok(Err(NonBlockingBcast {
                req,
                root_buf: self.root_buf,
            })),
        }
    }

    pub(crate) fn raw_request(&self) -> &Request<'a> {
        &self.req
    }
}

// ---------------------------------------------------------------------------
// Argument traits
// ---------------------------------------------------------------------------

/// Valid argument sets for [`Communicator::iallgatherv`] /
/// [`Communicator::iallgather`]: `send_buf` only — receive storage is
/// produced by the completion (§III-E: results by value), and receive
/// counts are discovered, not exchanged.
pub trait IallgatherArgs<T: Plain> {
    /// The handback token resolved by `wait()` to the moved-in send
    /// container (or `()` for borrowed buffers).
    type Hold: ReclaimHold;
    /// Starts the operation (`equal_blocks` selects allgather vs
    /// allgatherv call counting).
    fn run<'c>(
        self,
        comm: &'c Communicator,
        equal_blocks: bool,
    ) -> Result<NonBlockingCollective<'c, T, Self::Hold>>;
}

impl<T, B> IallgatherArgs<T>
    for ArgSet<SendBuf<B>, Absent, Absent, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: SendToTransport<T>,
{
    type Hold = <SendBuf<B> as SendToTransport<T>>::Hold;

    fn run<'c>(
        self,
        comm: &'c Communicator,
        equal_blocks: bool,
    ) -> Result<NonBlockingCollective<'c, T, Self::Hold>> {
        let _tuning = comm.raw().tuning_guard(self.meta.tuning);
        // Owned buffers move into the transport: zero call-time copies.
        let (payload, hold) = self.send_buf.into_payload();
        let req = if equal_blocks {
            comm.raw().iallgather_bytes(payload)?
        } else {
            comm.raw().iallgatherv_bytes(payload)?
        };
        Ok(NonBlockingCollective {
            req,
            hold,
            _elem: PhantomData,
        })
    }
}

/// Valid argument sets for [`Communicator::ialltoallv`]: `send_buf` and
/// `send_counts` (required), `send_displs` (optional; omitted means the
/// send buffer is packed contiguously in rank order).
pub trait IalltoallvArgs<T: Plain> {
    /// The handback token resolved by `wait()` to the moved-in send
    /// container (or `()` for borrowed buffers).
    type Hold: ReclaimHold;
    /// Starts the operation.
    fn run<'c>(self, comm: &'c Communicator) -> Result<NonBlockingCollective<'c, T, Self::Hold>>;
}

impl<T, B, SC, SD> IalltoallvArgs<T>
    for ArgSet<SendBuf<B>, Absent, Absent, SC, Absent, SD, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: SendToTransport<T>,
    SC: ProvidedCounts,
    SD: crate::params::slots::CountsSlot,
{
    type Hold = <SendBuf<B> as SendToTransport<T>>::Hold;

    fn run<'c>(self, comm: &'c Communicator) -> Result<NonBlockingCollective<'c, T, Self::Hold>> {
        let _tuning = comm.raw().tuning_guard(self.meta.tuning);
        let counts = self
            .send_counts
            .provided()
            .expect("send_counts is required")
            .to_vec();
        let elem = std::mem::size_of::<T>();
        let byte_counts: Vec<usize> = counts.iter().map(|&c| c * elem).collect();
        let (payload, hold) = match self.send_displs.provided().map(<[usize]>::to_vec) {
            // Contiguous rank order: the buffer is the wire payload
            // (zero copies for owned containers); per-peer blocks are
            // refcount slices.
            None => self.send_buf.into_payload(),
            Some(displs) => {
                // Repack into contiguous rank order so displacement gaps
                // (or overlaps) never travel; the original container is
                // still handed back by `wait()`.
                self.send_buf.into_packed(|send| {
                    let mut packed = Vec::with_capacity(counts.iter().sum());
                    for (r, &c) in counts.iter().enumerate() {
                        let d = displs[r];
                        packed.extend_from_slice(&send[d..d + c]);
                    }
                    packed
                })
            }
        };
        let req = comm.raw().ialltoallv_bytes(payload, &byte_counts)?;
        Ok(NonBlockingCollective {
            req,
            hold,
            _elem: PhantomData,
        })
    }
}

/// Valid argument sets for [`Communicator::ibcast`]: an **owned**
/// `send_recv_buf(Vec<T>)` plus optional `root`. Borrowed buffers do not
/// compile — while the broadcast is in flight nothing may read or write
/// the buffer (§III-E), which ownership transfer enforces for free.
pub trait IbcastArgs<T: Plain> {
    /// Starts the operation.
    fn run(self, comm: &Communicator) -> Result<NonBlockingBcast<'_, T>>;
}

impl<T> IbcastArgs<T>
    for ArgSet<Absent, SendRecvBuf<Vec<T>>, Absent, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
{
    fn run(self, comm: &Communicator) -> Result<NonBlockingBcast<'_, T>> {
        let root = self.meta.root.unwrap_or(0);
        crate::assertions::check_same_root(comm, root)?;
        let _tuning = comm.raw().tuning_guard(self.meta.tuning);
        let buf = self.send_recv_buf.0;
        if comm.rank() == root {
            // The moved-in vector is the wire payload (zero call-time
            // copies); it is reclaimed and handed back by `wait()`.
            let (hold, payload) = kmp_mpi::SharedPayload::new(buf);
            let req = comm.raw().ibcast_bytes(Some(payload), root)?;
            Ok(NonBlockingBcast {
                req,
                root_buf: Some(hold),
            })
        } else {
            let req = comm.raw().ibcast_bytes(None, root)?;
            Ok(NonBlockingBcast {
                req,
                root_buf: None,
            })
        }
    }
}

/// Valid argument sets for [`Communicator::iallreduce`]: `send_buf` and
/// `op` (both required).
pub trait IallreduceArgs<T: Plain> {
    /// The handback token resolved by `wait()` to the moved-in send
    /// container (or `()` for borrowed buffers).
    type Hold: ReclaimHold;
    /// Starts the operation.
    fn run<'c>(self, comm: &'c Communicator) -> Result<NonBlockingCollective<'c, T, Self::Hold>>;
}

impl<T, B, O> IallreduceArgs<T>
    for ArgSet<SendBuf<B>, Absent, Absent, Absent, Absent, Absent, Absent, OpParam<O>>
where
    T: Plain,
    SendBuf<B>: SendToTransport<T>,
    OpParam<O>: ProvidesOp<T>,
    <OpParam<O> as ProvidesOp<T>>::Op: 'static,
{
    type Hold = <SendBuf<B> as SendToTransport<T>>::Hold;

    fn run<'c>(self, comm: &'c Communicator) -> Result<NonBlockingCollective<'c, T, Self::Hold>> {
        // The algorithm is selected at call time, so the guard-scoped
        // override covers engine construction (e.g. a forced
        // `ReduceAlgo::BinomialTree` engages the tree engine).
        let _tuning = comm.raw().tuning_guard(self.meta.tuning);
        let op = self.op.into_op();
        let (payload, hold) = self.send_buf.into_payload();
        let req = comm.raw().iallreduce_bytes::<T, _>(payload, op)?;
        Ok(NonBlockingCollective {
            req,
            hold,
            _elem: PhantomData,
        })
    }
}

// ---------------------------------------------------------------------------
// Communicator methods
// ---------------------------------------------------------------------------

impl Communicator {
    /// Starts a non-blocking allgatherv (wraps `MPI_Iallgatherv`).
    ///
    /// Parameters: `send_buf` (required; owned containers are moved in
    /// and handed back by `wait()`). Returns a
    /// [`NonBlockingCollective`]; the concatenated data (and, via
    /// `wait_with_counts()`, the per-rank counts) only exist after
    /// completion.
    ///
    /// ```
    /// use kamping::prelude::*;
    ///
    /// kmp_mpi::Universe::run(3, |comm| {
    ///     let comm = Communicator::new(comm);
    ///     let mine = vec![comm.rank() as u64; comm.rank() + 1];
    ///     let fut = comm.iallgatherv(send_buf(mine)).unwrap();
    ///     // ... overlap local work here ...
    ///     let (all, mine) = fut.wait().unwrap();
    ///     assert_eq!(all, vec![0, 1, 1, 2, 2, 2]);
    ///     assert_eq!(mine.len(), comm.rank() + 1); // moved-in buffer is back
    /// });
    /// ```
    pub fn iallgatherv<T, A>(
        &self,
        args: A,
    ) -> Result<NonBlockingCollective<'_, T, <A::Out as IallgatherArgs<T>>::Hold>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: IallgatherArgs<T>,
    {
        args.into_args().run(self, false)
    }

    /// Starts a non-blocking allgather of equal-size blocks (wraps
    /// `MPI_Iallgather`). Same parameters and future as
    /// [`Communicator::iallgatherv`].
    pub fn iallgather<T, A>(
        &self,
        args: A,
    ) -> Result<NonBlockingCollective<'_, T, <A::Out as IallgatherArgs<T>>::Hold>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: IallgatherArgs<T>,
    {
        args.into_args().run(self, true)
    }

    /// Starts a non-blocking personalized all-to-all (wraps
    /// `MPI_Ialltoallv`).
    ///
    /// Parameters: `send_buf` and `send_counts` (required),
    /// `send_displs` (optional). No receive-side parameters exist: counts
    /// are discovered from the incoming messages and the data is returned
    /// by `wait()` — `wait_with_counts()` also yields the per-source
    /// counts.
    pub fn ialltoallv<T, A>(
        &self,
        args: A,
    ) -> Result<NonBlockingCollective<'_, T, <A::Out as IalltoallvArgs<T>>::Hold>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: IalltoallvArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Starts a non-blocking broadcast (wraps `MPI_Ibcast`).
    ///
    /// Parameters: `send_recv_buf` holding an **owned** `Vec<T>` (moved
    /// in; borrowed buffers do not compile — §III-E), `root` (default 0).
    /// `wait()` returns the broadcast content on every rank.
    pub fn ibcast<T, A>(&self, args: A) -> Result<NonBlockingBcast<'_, T>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: IbcastArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Starts a non-blocking all-reduce (wraps `MPI_Iallreduce`).
    ///
    /// Parameters: `send_buf` and `op` (required). `wait()` returns the
    /// elementwise reduction over all ranks (strict rank order — safe for
    /// non-commutative operations) plus the moved-in send buffer.
    pub fn iallreduce<T, A>(
        &self,
        args: A,
    ) -> Result<NonBlockingCollective<'_, T, <A::Out as IallreduceArgs<T>>::Hold>>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: IallreduceArgs<T>,
    {
        args.into_args().run(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::Universe;

    #[test]
    fn iallgatherv_returns_data_and_buffer() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u32; comm.rank() + 1];
            let fut = comm.iallgatherv(send_buf(mine)).unwrap();
            let (all, mine) = fut.wait().unwrap();
            assert_eq!(all, vec![0, 1, 1, 2, 2, 2]);
            assert_eq!(mine, vec![comm.rank() as u32; comm.rank() + 1]);
        });
    }

    #[test]
    fn iallgatherv_borrowed_send_buf_returns_unit() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u8];
            let fut = comm.iallgatherv(send_buf(&mine)).unwrap();
            let (all, ()) = fut.wait().unwrap();
            assert_eq!(all, vec![0, 1]);
            // `mine` stayed accessible: it was only borrowed.
            assert_eq!(mine, vec![comm.rank() as u8]);
        });
    }

    #[test]
    fn iallgatherv_counts_discovered_without_exchange() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![9u16; comm.rank()];
            let before = comm.call_counts();
            let fut = comm.iallgatherv(send_buf(mine)).unwrap();
            let (all, counts, _mine) = fut.wait_with_counts().unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(all.len(), 3);
            assert_eq!(counts, vec![0, 1, 2]);
            // One iallgatherv; zero count-exchanging allgathers (compare
            // the blocking path, which issues one when counts are
            // omitted).
            assert_eq!(delta.get("iallgatherv"), 1);
            assert_eq!(delta.get("allgather"), 0);
            assert_eq!(delta.total(), 1);
        });
    }

    #[test]
    fn ialltoallv_roundtrip_with_counts() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let send = vec![comm.rank() as u64 * 10, comm.rank() as u64 * 10 + 1];
            let counts = vec![1usize, 1];
            let fut = comm
                .ialltoallv((send_buf(send), send_counts(&counts)))
                .unwrap();
            let (data, rc, send) = fut.wait_with_counts().unwrap();
            assert_eq!(data, vec![comm.rank() as u64, 10 + comm.rank() as u64]);
            assert_eq!(rc, vec![1, 1]);
            assert_eq!(send.len(), 2, "moved-in send buffer handed back");
        });
    }

    #[test]
    fn ialltoallv_with_explicit_send_displs() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            // Junk prefix skipped by displacements.
            let send = vec![99u32, comm.rank() as u32, comm.rank() as u32 + 10];
            let counts = vec![1usize, 1];
            let displs = vec![1usize, 2];
            let fut = comm
                .ialltoallv((send_buf(&send), send_counts(&counts), send_displs(&displs)))
                .unwrap();
            let (got, ()) = fut.wait().unwrap();
            let offset = comm.rank() as u32 * 10;
            assert_eq!(got, vec![offset, offset + 1]);
        });
    }

    #[test]
    fn ibcast_owned_roundtrip() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let data = if comm.rank() == 1 {
                vec![5u64, 6, 7]
            } else {
                vec![]
            };
            let fut = comm.ibcast((send_recv_buf(data), root(1))).unwrap();
            let data = fut.wait().unwrap();
            assert_eq!(data, vec![5, 6, 7]);
        });
    }

    #[test]
    fn iallreduce_with_op() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u64 + 1, 1];
            let fut = comm.iallreduce((send_buf(mine), op(ops::Sum))).unwrap();
            let (total, mine) = fut.wait().unwrap();
            assert_eq!(total, vec![10, 4]);
            assert_eq!(mine.len(), 2);
        });
    }

    #[test]
    fn iallreduce_non_commutative_lambda() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let concat = ops::non_commutative(|a: &u64, b: &u64| a * 10 + b);
            let fut = comm
                .iallreduce((send_buf(vec![comm.rank() as u64 + 1]), op(concat)))
                .unwrap();
            let (folded, _) = fut.wait().unwrap();
            assert_eq!(folded, vec![123]);
        });
    }

    #[test]
    fn test_polls_to_completion() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let mut fut = comm
                .iallreduce((send_buf(vec![1u32]), op(ops::Sum)))
                .unwrap();
            let (sum, _) = loop {
                match fut.test().unwrap() {
                    Ok(done) => break done,
                    Err(pending) => {
                        fut = pending;
                        std::thread::yield_now();
                    }
                }
            };
            assert_eq!(sum, vec![2]);
        });
    }

    #[test]
    fn overlap_compute_between_start_and_wait() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![comm.rank() as u64; 256];
            let fut = comm.iallgatherv(send_buf(mine)).unwrap();
            // The communication is in flight; do real local work.
            let mut acc = 0u64;
            for i in 0..50_000u64 {
                acc = acc.wrapping_add(i.wrapping_mul(i));
            }
            std::hint::black_box(acc);
            let (all, _) = fut.wait().unwrap();
            assert_eq!(all.len(), 4 * 256);
        });
    }
}
