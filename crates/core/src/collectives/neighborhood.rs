//! Neighborhood collectives with named parameters (MPI-3 §7.6 shape,
//! KaMPIng §III interface).
//!
//! A [`NeighborhoodCommunicator`] wraps one of the substrate's topology
//! communicators ([`kmp_mpi::CartComm`] / [`kmp_mpi::DistGraphComm`]) and
//! offers `neighbor_alltoallv` / `neighbor_allgatherv` with the same
//! named-parameter surface as their dense counterparts — any subset of
//! the parameters, in any order, with defaults computed only for omitted
//! slots. The crucial difference from the dense calls sits in those
//! defaults: where `alltoallv` transposes its counts with an O(p)
//! `alltoall`, the neighborhood builder exchanges counts **only along the
//! topology's edges** — O(degree) messages — so a sparse exchange stays
//! sparse even when the user lets the library compute the receive side.
//!
//! Counts and displacements are indexed by *neighbor position*, not by
//! rank: `send_counts[k]` belongs to `destinations()[k]`, and the block
//! from `sources()[j]` lands at `recv[recv_displs[j]..][..recv_counts[j]]`.

use kmp_mpi::collectives::displacements_from_counts;
use kmp_mpi::{CartComm, DistGraphComm, Neighborhood, NeighborhoodColl, Plain, Rank, Result};

use crate::communicator::Communicator;
use crate::params::argset::{ArgSet, IntoArgs};
use crate::params::output::{FinalOf, Finalize, Push1, Push2, Push3, Push4, PushComponent};
use crate::params::slots::{CountsSlot, ProvidedCounts, ProvidesSendData, RecvBufSpec};
use crate::params::{Absent, SendBuf};

/// A communicator with an attached virtual topology. Created by
/// [`Communicator::create_cart`], [`Communicator::create_dist_graph`] or
/// [`Communicator::create_dist_graph_adjacent`]; generic over the
/// topology kind so the same builders serve both.
pub struct NeighborhoodCommunicator<N: Neighborhood> {
    topo: N,
}

impl<N: Neighborhood> NeighborhoodCommunicator<N> {
    /// Wraps an already-constructed substrate topology.
    pub fn new(topo: N) -> Self {
        Self { topo }
    }

    /// The underlying topology communicator, for substrate-level calls
    /// (`cart_shift`, `ineighbor_*`, `neighbor_*_init`, …).
    pub fn topology(&self) -> &N {
        &self.topo
    }

    /// Unwraps back into the substrate topology.
    pub fn into_inner(self) -> N {
        self.topo
    }

    /// This rank's id in the topology's communicator.
    pub fn rank(&self) -> Rank {
        self.topo.comm().rank()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.topo.comm().size()
    }

    /// Number of in-neighbors (ranks this rank receives from).
    pub fn in_degree(&self) -> usize {
        self.topo.sources().len()
    }

    /// Number of out-neighbors (ranks this rank sends to).
    pub fn out_degree(&self) -> usize {
        self.topo.destinations().len()
    }

    /// Sparse personalized exchange along the topology's edges (mirrors
    /// `MPI_Neighbor_alltoallv`).
    ///
    /// Accepted parameters: `send_buf` and `send_counts` (required, one
    /// count per out-neighbor), `send_displs`(`_out`), `recv_buf`,
    /// `recv_counts`(`_out`), `recv_displs`(`_out`), `tuning`. Omitted
    /// displacements are prefix sums; omitted receive counts are
    /// exchanged **along the edges only** — O(degree) messages where the
    /// dense `alltoallv` default pays O(p).
    pub fn neighbor_alltoallv<T, A>(
        &self,
        args: A,
    ) -> Result<<A::Out as NeighborAlltoallvArgs<T, N>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: NeighborAlltoallvArgs<T, N>,
    {
        args.into_args().run(self)
    }

    /// Gathers each neighbor's (possibly differently-sized) contribution
    /// (mirrors `MPI_Neighbor_allgatherv`): sends `send_buf` to every
    /// out-neighbor, receives one block per in-neighbor.
    ///
    /// Accepted parameters: `send_buf` (required), `recv_buf`,
    /// `recv_counts`(`_out`), `recv_displs`(`_out`), `tuning`. Omitted
    /// receive counts cost one O(degree) edge exchange.
    pub fn neighbor_allgatherv<T, A>(
        &self,
        args: A,
    ) -> Result<<A::Out as NeighborAllgathervArgs<T, N>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: NeighborAllgathervArgs<T, N>,
    {
        args.into_args().run(self)
    }
}

impl Communicator {
    /// Attaches a cartesian grid topology (mirrors `MPI_Cart_create`)
    /// and returns a neighborhood communicator over it; the grid's
    /// neighbor lists are the ±1 shifts along every dimension.
    pub fn create_cart(
        &self,
        dims: &[usize],
        periods: &[bool],
        reorder: bool,
    ) -> Result<NeighborhoodCommunicator<CartComm>> {
        Ok(NeighborhoodCommunicator::new(
            self.raw().create_cart(dims, periods, reorder)?,
        ))
    }

    /// Attaches a general distributed graph topology (mirrors
    /// `MPI_Dist_graph_create`): every rank may contribute any subset of
    /// the edges; the union is distributed collectively.
    pub fn create_dist_graph(
        &self,
        edges: &[(Rank, Rank)],
    ) -> Result<NeighborhoodCommunicator<DistGraphComm>> {
        Ok(NeighborhoodCommunicator::new(
            self.raw().create_dist_graph(edges)?,
        ))
    }

    /// Attaches a distributed graph topology from each rank's own
    /// adjacency (mirrors `MPI_Dist_graph_create_adjacent`).
    pub fn create_dist_graph_adjacent(
        &self,
        sources: &[Rank],
        destinations: &[Rank],
    ) -> Result<NeighborhoodCommunicator<DistGraphComm>> {
        Ok(NeighborhoodCommunicator::new(
            self.raw()
                .create_dist_graph_adjacent(sources, destinations)?,
        ))
    }
}

/// Exchanges one `usize` per topology edge: rank `r` sends `values[k]`
/// to `destinations()[k]` and the result holds one value per source, in
/// `sources()` order. This is the O(degree) count exchange backing every
/// computed receive-side default in this module.
fn exchange_edge_counts<N: Neighborhood>(topo: &N, values: &[usize]) -> Result<Vec<usize>> {
    let sends: Vec<Vec<u64>> = values.iter().map(|&v| vec![v as u64]).collect();
    let per_source = topo.neighbor_alltoall_vecs(&sends)?;
    Ok(per_source.iter().map(|v| v[0] as usize).collect())
}

/// Heavy (communicating) check: the counts each sender will deliver
/// along the topology's edges must match what the receiver was told to
/// expect. The neighborhood analogue of
/// [`crate::assertions::check_count_matrix`] — but it verifies over the
/// edges, so even the assertion costs only O(degree) messages.
fn check_neighbor_counts<N: Neighborhood>(
    topo: &N,
    send_counts: &[usize],
    recv_counts: &[usize],
) -> Result<()> {
    use crate::assertions::{assertions_enabled, AssertionLevel};
    if !assertions_enabled(AssertionLevel::Heavy) {
        return Ok(());
    }
    let delivered = exchange_edge_counts(topo, send_counts)?;
    if delivered != recv_counts {
        return Err(kmp_mpi::MpiError::InvalidLayout(format!(
            "heavy assertion failed: inconsistent neighbor_alltoallv counts on rank {}: \
             neighbors will deliver {delivered:?} but recv_counts say {recv_counts:?}",
            topo.comm().rank()
        )));
    }
    Ok(())
}

/// Valid argument sets for
/// [`NeighborhoodCommunicator::neighbor_alltoallv`].
pub trait NeighborAlltoallvArgs<T: Plain, N: Neighborhood> {
    /// The call's result shape.
    type Output;
    /// Executes the call.
    fn run(self, comm: &NeighborhoodCommunicator<N>) -> Result<Self::Output>;
}

impl<T, N, B, RB, SC, RC, SD, RD> NeighborAlltoallvArgs<T, N>
    for ArgSet<SendBuf<B>, Absent, RB, SC, RC, SD, RD, Absent>
where
    T: Plain,
    N: Neighborhood,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    SC: ProvidedCounts,
    RC: CountsSlot,
    SD: CountsSlot,
    RD: CountsSlot,
    RB::Out: PushComponent<()>,
    SD::Out: PushComponent<Push1<RB::Out>>,
    RC::Out: PushComponent<Push2<RB::Out, SD::Out>>,
    RD::Out: PushComponent<Push3<RB::Out, SD::Out, RC::Out>>,
    Push4<RB::Out, SD::Out, RC::Out, RD::Out>: Finalize,
{
    type Output = FinalOf<Push4<RB::Out, SD::Out, RC::Out, RD::Out>>;

    fn run(self, comm: &NeighborhoodCommunicator<N>) -> Result<Self::Output> {
        let topo = comm.topology();
        let _tuning = topo.comm().tuning_guard(self.meta.tuning);
        let send = self.send_buf.send_slice();
        let send_counts = self
            .send_counts
            .provided()
            .expect("send_counts is required");

        // Default send displacements: local exclusive prefix sum over
        // the out-neighbor blocks.
        let computed_sd: Option<Vec<usize>> = if SD::PROVIDED {
            None
        } else {
            Some(displacements_from_counts(send_counts))
        };
        let send_displs: &[usize] = match self.send_displs.provided() {
            Some(d) => d,
            None => computed_sd.as_deref().expect("computed when not provided"),
        };

        // Default recv counts: one count travels along each edge —
        // O(degree) messages, never the dense O(p) transpose.
        let computed_rc: Option<Vec<usize>> = if RC::PROVIDED {
            None
        } else {
            Some(exchange_edge_counts(topo, send_counts)?)
        };
        let recv_counts: &[usize] = match self.recv_counts.provided() {
            Some(c) => c,
            None => computed_rc.as_deref().expect("computed when not provided"),
        };

        let computed_rd: Option<Vec<usize>> = if RD::PROVIDED {
            None
        } else {
            Some(displacements_from_counts(recv_counts))
        };
        let recv_displs: &[usize] = match self.recv_displs.provided() {
            Some(d) => d,
            None => computed_rd.as_deref().expect("computed when not provided"),
        };

        // Heavy assertion (§III-G): user-provided receive counts must
        // match what the in-neighbors will send. Free when counts were
        // computed (they are the delivered counts by construction).
        if RC::PROVIDED {
            check_neighbor_counts(topo, send_counts, recv_counts)?;
        }

        let needed = recv_displs
            .iter()
            .zip(recv_counts)
            .map(|(d, c)| d + c)
            .max()
            .unwrap_or(0);
        let ((), rb_out) = self.recv_buf.apply(needed, |storage| {
            topo.neighbor_alltoallv_into(
                send,
                send_counts,
                send_displs,
                storage,
                recv_counts,
                recv_displs,
            )
        })?;

        let acc = ();
        let acc = rb_out.push_component(acc);
        let acc = self.send_displs.finish(computed_sd).push_component(acc);
        let acc = self.recv_counts.finish(computed_rc).push_component(acc);
        let acc = self.recv_displs.finish(computed_rd).push_component(acc);
        Ok(acc.finalize())
    }
}

/// Valid argument sets for
/// [`NeighborhoodCommunicator::neighbor_allgatherv`].
pub trait NeighborAllgathervArgs<T: Plain, N: Neighborhood> {
    /// The call's result shape.
    type Output;
    /// Executes the call.
    fn run(self, comm: &NeighborhoodCommunicator<N>) -> Result<Self::Output>;
}

impl<T, N, B, RB, RC, RD> NeighborAllgathervArgs<T, N>
    for ArgSet<SendBuf<B>, Absent, RB, Absent, RC, Absent, RD, Absent>
where
    T: Plain,
    N: Neighborhood,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    RC: CountsSlot,
    RD: CountsSlot,
    RB::Out: PushComponent<()>,
    RC::Out: PushComponent<Push1<RB::Out>>,
    RD::Out: PushComponent<Push2<RB::Out, RC::Out>>,
    Push3<RB::Out, RC::Out, RD::Out>: Finalize,
{
    type Output = FinalOf<Push3<RB::Out, RC::Out, RD::Out>>;

    fn run(self, comm: &NeighborhoodCommunicator<N>) -> Result<Self::Output> {
        let topo = comm.topology();
        let _tuning = topo.comm().tuning_guard(self.meta.tuning);
        let send = self.send_buf.send_slice();

        // Default recv counts: each rank announces its send count along
        // its out-edges — the in-neighbors' counts arrive over theirs.
        let computed_rc: Option<Vec<usize>> = if RC::PROVIDED {
            None
        } else {
            let mine = vec![send.len(); topo.destinations().len()];
            Some(exchange_edge_counts(topo, &mine)?)
        };
        let recv_counts: &[usize] = match self.recv_counts.provided() {
            Some(c) => c,
            None => computed_rc.as_deref().expect("computed when not provided"),
        };

        let computed_rd: Option<Vec<usize>> = if RD::PROVIDED {
            None
        } else {
            Some(displacements_from_counts(recv_counts))
        };
        let recv_displs: &[usize] = match self.recv_displs.provided() {
            Some(d) => d,
            None => computed_rd.as_deref().expect("computed when not provided"),
        };

        let needed = recv_displs
            .iter()
            .zip(recv_counts)
            .map(|(d, c)| d + c)
            .max()
            .unwrap_or(0);
        let ((), rb_out) = self.recv_buf.apply(needed, |storage| {
            topo.neighbor_allgatherv_into(send, storage, recv_counts, recv_displs)
        })?;

        let acc = ();
        let acc = rb_out.push_component(acc);
        let acc = self.recv_counts.finish(computed_rc).push_component(acc);
        let acc = self.recv_displs.finish(computed_rd).push_component(acc);
        Ok(acc.finalize())
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::{NeighborhoodAlgo, Universe};

    #[test]
    fn neighbor_alltoallv_directed_ring() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let g = comm.create_dist_graph_adjacent(&[left], &[right]).unwrap();
            assert_eq!(g.in_degree(), 1);
            assert_eq!(g.out_degree(), 1);
            // rank+1 elements to the right neighbor; counts computed.
            let send: Vec<u64> = vec![comm.rank() as u64; comm.rank() + 1];
            let counts = vec![send.len()];
            let got: Vec<u64> = g
                .neighbor_alltoallv((send_buf(&send), send_counts(&counts)))
                .unwrap();
            assert_eq!(got, vec![left as u64; left + 1]);
        });
    }

    #[test]
    fn neighbor_alltoallv_all_outs() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let p = comm.size();
            let others: Vec<usize> = (0..p).filter(|&r| r != comm.rank()).collect();
            let g = comm.create_dist_graph_adjacent(&others, &others).unwrap();
            // k+1 elements for the k-th destination.
            let counts: Vec<usize> = (0..others.len()).map(|k| k + 1).collect();
            let send: Vec<u32> = (0..others.len())
                .flat_map(|k| vec![comm.rank() as u32 * 10 + k as u32; k + 1])
                .collect();
            let (data, sd, rc, rd) = g
                .neighbor_alltoallv((
                    send_buf(&send),
                    send_counts(&counts),
                    send_displs_out(),
                    recv_counts_out(),
                    recv_displs_out(),
                ))
                .unwrap();
            assert_eq!(sd, vec![0, 1]);
            assert_eq!(rd, vec![0, rc[0]]);
            // Source j lists this rank at position k in *its* neighbor
            // list; it sends k+1 copies of j*10+k.
            let mut expected = Vec::new();
            let mut expected_rc = Vec::new();
            for &src in g.topology().sources() {
                let peers: Vec<usize> = (0..p).filter(|&r| r != src).collect();
                let k = peers.iter().position(|&r| r == comm.rank()).unwrap();
                expected.extend(vec![src as u32 * 10 + k as u32; k + 1]);
                expected_rc.push(k + 1);
            }
            assert_eq!(rc, expected_rc);
            assert_eq!(data, expected);
        });
    }

    #[test]
    fn neighbor_alltoallv_provided_recv_counts_skips_exchange() {
        // Heavy assertions would add an edge exchange of their own.
        let _g = crate::assertions::LEVEL_GUARD.lock().unwrap();
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let g = comm.create_dist_graph_adjacent(&[left], &[right]).unwrap();
            let send = vec![comm.rank() as u16; 2];
            // Counters are per world rank, so the parent communicator's
            // snapshot sees the topology dup's traffic too.
            let before = comm.call_counts();
            let _: Vec<u16> = g
                .neighbor_alltoallv((send_buf(&send), send_counts(&[2]), recv_counts(&[2])))
                .unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("neighbor_alltoallv"), 1);
            assert_eq!(delta.get("neighbor_alltoall"), 0, "no edge count exchange");

            let before = comm.call_counts();
            let _: Vec<u16> = g
                .neighbor_alltoallv((send_buf(&send), send_counts(&[2])))
                .unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("neighbor_alltoallv"), 1);
            assert_eq!(delta.get("neighbor_alltoall"), 1, "one O(degree) exchange");
            assert_eq!(delta.get("alltoall"), 0, "never the dense O(p) transpose");
        });
    }

    #[test]
    fn neighbor_allgatherv_over_cart() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            // Periodic 4-ring: neighbors are left and right.
            let g = comm.create_cart(&[4], &[true], false).unwrap();
            let send: Vec<u64> = vec![comm.rank() as u64; comm.rank() + 1];
            let (data, rc) = g
                .neighbor_allgatherv((send_buf(&send), recv_counts_out()))
                .unwrap();
            let mut expected = Vec::new();
            let mut expected_rc = Vec::new();
            for &src in g.topology().sources() {
                expected.extend(vec![src as u64; src + 1]);
                expected_rc.push(src + 1);
            }
            assert_eq!(rc, expected_rc);
            assert_eq!(data, expected);
        });
    }

    #[test]
    fn neighbor_alltoallv_into_borrowed_resized_buffer() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            let g = comm.create_dist_graph_adjacent(&[left], &[right]).unwrap();
            let send = vec![comm.rank() as u8 + 1; 3];
            let mut out: Vec<u8> = Vec::new();
            g.neighbor_alltoallv((
                send_buf(&send),
                send_counts(&[3]),
                recv_buf(&mut out).resize_to_fit(),
            ))
            .unwrap();
            assert_eq!(out, vec![left as u8 + 1; 3]);
        });
    }

    #[test]
    fn neighbor_alltoallv_forced_dense_same_result() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let p = comm.size();
            let others: Vec<usize> = (0..p).filter(|&r| r != comm.rank()).collect();
            let g = comm.create_dist_graph_adjacent(&others, &others).unwrap();
            let counts = vec![1usize; others.len()];
            let send: Vec<u32> = others.iter().map(|&d| d as u32).collect();
            let run = |t: NeighborhoodAlgo| -> Vec<u32> {
                g.neighbor_alltoallv((
                    send_buf(&send),
                    send_counts(&counts),
                    tuning(CollTuning::default().neighborhood(t)),
                ))
                .unwrap()
            };
            let sparse = run(NeighborhoodAlgo::Sparse);
            let dense = run(NeighborhoodAlgo::Dense);
            assert_eq!(sparse, dense);
            assert_eq!(sparse, vec![comm.rank() as u32; others.len()]);
        });
    }

    #[test]
    fn heavy_detects_neighbor_count_mismatch() {
        use crate::assertions::{assertion_level, set_assertion_level, AssertionLevel};
        // The level is process-global; restore it even on panic paths.
        let _g = crate::assertions::LEVEL_GUARD.lock().unwrap();
        let prev = assertion_level();
        set_assertion_level(AssertionLevel::Heavy);
        let result = std::panic::catch_unwind(|| {
            Universe::run(2, |comm| {
                let comm = Communicator::new(comm);
                let other = 1 - comm.rank();
                let g = comm.create_dist_graph_adjacent(&[other], &[other]).unwrap();
                let send = vec![5u8; 1];
                let r: kmp_mpi::Result<Vec<u8>> = g.neighbor_alltoallv((
                    send_buf(&send),
                    send_counts(&[1]),
                    recv_counts(&[2]), // neighbor only delivers 1
                ));
                assert!(r.is_err(), "heavy assertion must reject the mismatch");
            });
        });
        set_assertion_level(prev);
        result.unwrap();
    }
}
