//! Collective operations with named parameters and computed defaults.
//!
//! Each operation is a method on [`Communicator`](crate::Communicator)
//! accepting a parameter tuple; a per-operation trait (implemented once
//! over the folded [`ArgSet`](crate::params::ArgSet)) resolves every slot
//! at compile time. The table below lists the defaults each operation
//! computes for omitted parameters (§III-A/B of the paper):
//!
//! | operation    | computed defaults                                               |
//! |--------------|-----------------------------------------------------------------|
//! | `allgatherv` | recv counts (allgather of send count), recv displs (prefix sum) |
//! | `alltoallv`  | send displs (prefix sum), recv counts (alltoall of send counts), recv displs (prefix sum) |
//! | `gatherv`    | recv counts (gather of send count), recv displs (prefix sum)    |
//! | `scatterv`   | send displs (prefix sum), recv count (via scatter of counts)    |
//! | `allgather`/`alltoall`/`gather`/`scatter`/`bcast`/`reduce`/`allreduce`/`scan`/`exscan` | receive storage sizing |
//! | `neighbor_allgatherv`/`neighbor_alltoallv` | recv counts by an **O(degree)** edge exchange, displs (prefix sums) — see [`neighborhood`] |
//!
//! The receive buffer is implicitly returned by value unless storage was
//! passed by reference; `*_out()` parameters append further components to
//! the returned tuple.

mod allgather;
mod alltoall;
mod bcast;
mod gather;
pub mod neighborhood;
pub mod nonblocking;
mod reduce;
mod scatter;

pub use allgather::{AllgatherArgs, AllgatherInPlaceArgs, AllgathervArgs};
pub use alltoall::{AlltoallArgs, AlltoallvArgs};
pub use bcast::{BcastArgs, BcastSingleArgs};
pub use gather::{GatherArgs, GathervArgs};
pub use neighborhood::{NeighborAllgathervArgs, NeighborAlltoallvArgs, NeighborhoodCommunicator};
pub use nonblocking::{
    IallgatherArgs, IallreduceArgs, IalltoallvArgs, IbcastArgs, NonBlockingBcast,
    NonBlockingCollective,
};
pub use reduce::{AllreduceArgs, AllreduceSingleArgs, ExscanArgs, ReduceArgs, ScanArgs};
pub use scatter::{ScatterArgs, ScattervArgs};
