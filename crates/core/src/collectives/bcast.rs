//! `bcast` with named parameters.

use kmp_mpi::{Plain, Rank, Result};

use crate::communicator::Communicator;
use crate::params::argset::{ArgSet, IntoArgs};
use crate::params::output::{FinalOf, Finalize, Push1, PushComponent};
use crate::params::slots::SendRecvBufSpec;
use crate::params::{Absent, SendRecvBuf};

/// Valid argument sets for [`Communicator::bcast`].
pub trait BcastArgs<T: Plain> {
    /// The call's result shape.
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B> BcastArgs<T>
    for ArgSet<Absent, SendRecvBuf<B>, Absent, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendRecvBuf<B>: SendRecvBufSpec<T>,
    <SendRecvBuf<B> as SendRecvBufSpec<T>>::Out: PushComponent<()>,
    Push1<<SendRecvBuf<B> as SendRecvBufSpec<T>>::Out>: Finalize,
{
    type Output = FinalOf<Push1<<SendRecvBuf<B> as SendRecvBufSpec<T>>::Out>>;

    fn run(self, comm: &Communicator) -> Result<Self::Output> {
        let root = self.meta.root.unwrap_or(0);
        crate::assertions::check_same_root(comm, root)?;
        let _tuning = comm.raw().tuning_guard(self.meta.tuning);
        let recv_count = self.meta.recv_count;
        let raw = comm.raw();
        let is_root = comm.rank() == root;
        let ((), out) = self.send_recv_buf.apply(|buf| {
            if let Some(n) = recv_count {
                // Sized broadcast: `recv_count(n)` tells every rank the
                // payload size up front, which lets the substrate's
                // tuning select the large-message algorithm — without
                // it, non-roots cannot agree on a size they have not
                // received yet and the binomial tree is the only safe
                // choice.
                let size = n * std::mem::size_of::<T>();
                if is_root && buf.len() != n {
                    return Err(kmp_mpi::MpiError::InvalidLayout(format!(
                        "bcast: root buffer holds {} elements but recv_count says {n}",
                        buf.len()
                    )));
                }
                let payload = is_root.then(|| kmp_mpi::bytes_from_slice(&buf[..]));
                let parts = raw.bcast_parts(payload, size, root)?;
                if !is_root {
                    // The root dictates the payload; it must match this
                    // rank's recv_count claim (the scatter+allgather
                    // branch enforces this on the wire already — keep
                    // the binomial branch equally strict).
                    if parts.len() != size {
                        return Err(kmp_mpi::MpiError::Truncated {
                            message_bytes: parts.len(),
                            buffer_bytes: size,
                        });
                    }
                    // One copy of `r`, whichever shape was delivered —
                    // into the caller's storage when it is already
                    // correctly sized, else into one fresh allocation.
                    if buf.len() == n {
                        parts.write_into(kmp_mpi::plain::as_bytes_mut(&mut buf[..]))?;
                    } else {
                        *buf = parts.into_vec();
                    }
                }
            } else if is_root {
                raw.bcast_bytes(Some(kmp_mpi::bytes_from_slice(&buf[..])), root)?;
            } else {
                // Adopt the delivered payload straight into the buffer:
                // a single copy, no intermediate vector. The broadcast
                // length is dictated by the root (bcast has no
                // independent receive sizing).
                let incoming = raw.bcast_bytes(None, root)?;
                buf.clear();
                kmp_mpi::plain::extend_vec_from_bytes(buf, &incoming);
            }
            Ok(())
        })?;
        Ok(out.push_component(()).finalize())
    }
}

impl Communicator {
    /// Broadcasts the root's buffer to all ranks (wraps `MPI_Bcast`).
    ///
    /// The buffer is passed as `send_recv_buf` on every rank — read at
    /// the root, overwritten elsewhere — following the paper's unified
    /// in-place semantics (§III-G). Parameters: `send_recv_buf`
    /// (required), `root` (default 0), `recv_count` (optional: declares
    /// the element count on every rank, enabling size-based algorithm
    /// selection for large messages), `tuning` (optional per-call
    /// algorithm override).
    ///
    /// ```
    /// use kamping::prelude::*;
    ///
    /// kmp_mpi::Universe::run(3, |comm| {
    ///     let comm = Communicator::new(comm);
    ///     let mut data = if comm.rank() == 0 { vec![1u32, 2, 3] } else { vec![] };
    ///     comm.bcast((send_recv_buf(&mut data),)).unwrap();
    ///     assert_eq!(data, vec![1, 2, 3]);
    /// });
    /// ```
    pub fn bcast<T, A>(&self, args: A) -> Result<<A::Out as BcastArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: BcastArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Broadcasts a single value from the root; a convenience shortcut
    /// (mirrors kamping's `bcast_single`).
    pub fn bcast_single<T: Plain>(&self, value: T, root: Rank) -> Result<T> {
        self.raw().bcast_one(value, root)
    }
}

/// Marker trait kept for the module's public surface; `bcast_single` is a
/// plain method, not parameter-driven.
pub trait BcastSingleArgs<T> {}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::Universe;

    #[test]
    fn bcast_overwrites_non_roots() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mut data = if comm.rank() == 0 {
                vec![5u64, 6]
            } else {
                vec![0; 9]
            };
            comm.bcast((send_recv_buf(&mut data),)).unwrap();
            assert_eq!(data, vec![5, 6]);
        });
    }

    #[test]
    fn bcast_from_explicit_root_with_move() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let data = if comm.rank() == 2 { vec![9u8] } else { vec![] };
            let data: Vec<u8> = comm.bcast((send_recv_buf(data), root(2))).unwrap();
            assert_eq!(data, vec![9]);
        });
    }

    #[test]
    fn bcast_single_value() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let v = comm
                .bcast_single(if comm.rank() == 1 { 42u32 } else { 0 }, 1)
                .unwrap();
            assert_eq!(v, 42);
        });
    }

    #[test]
    fn bcast_counts_one_op() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let mut data = vec![comm.rank() as u8];
            let before = comm.call_counts();
            comm.bcast((send_recv_buf(&mut data),)).unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("bcast"), 1);
            assert_eq!(delta.total(), 1);
        });
    }
}
