//! `alltoall` / `alltoallv` with named parameters.

use kmp_mpi::collectives::displacements_from_counts;
use kmp_mpi::{Plain, Result};

use crate::communicator::Communicator;
use crate::params::argset::{ArgSet, IntoArgs};
use crate::params::output::{FinalOf, Finalize, Push1, Push2, Push3, Push4, PushComponent};
use crate::params::slots::{CountsSlot, ProvidedCounts, ProvidesSendData, RecvBufSpec};
use crate::params::{Absent, SendBuf};

/// Valid argument sets for [`Communicator::alltoallv`].
pub trait AlltoallvArgs<T: Plain> {
    /// The call's result shape.
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B, RB, SC, RC, SD, RD> AlltoallvArgs<T>
    for ArgSet<SendBuf<B>, Absent, RB, SC, RC, SD, RD, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    SC: ProvidedCounts,
    RC: CountsSlot,
    SD: CountsSlot,
    RD: CountsSlot,
    RB::Out: PushComponent<()>,
    SD::Out: PushComponent<Push1<RB::Out>>,
    RC::Out: PushComponent<Push2<RB::Out, SD::Out>>,
    RD::Out: PushComponent<Push3<RB::Out, SD::Out, RC::Out>>,
    Push4<RB::Out, SD::Out, RC::Out, RD::Out>: Finalize,
{
    type Output = FinalOf<Push4<RB::Out, SD::Out, RC::Out, RD::Out>>;

    fn run(self, comm: &Communicator) -> Result<Self::Output> {
        let _tuning = comm.raw().tuning_guard(self.meta.tuning);
        let send = self.send_buf.send_slice();
        let send_counts = self
            .send_counts
            .provided()
            .expect("send_counts is required");

        // Default send displacements: local exclusive prefix sum.
        let computed_sd: Option<Vec<usize>> = if SD::PROVIDED {
            None
        } else {
            Some(displacements_from_counts(send_counts))
        };
        let send_displs: &[usize] = match self.send_displs.provided() {
            Some(d) => d,
            None => computed_sd.as_deref().expect("computed when not provided"),
        };

        // Default recv counts: transpose the send counts with an alltoall
        // — the count exchange the paper's BFS/sample-sort baselines have
        // to write by hand.
        let computed_rc: Option<Vec<usize>> = if RC::PROVIDED {
            None
        } else {
            let mut rc = vec![0usize; comm.size()];
            comm.raw().alltoall_into(send_counts, &mut rc)?;
            Some(rc)
        };
        let recv_counts: &[usize] = match self.recv_counts.provided() {
            Some(c) => c,
            None => computed_rc.as_deref().expect("computed when not provided"),
        };

        let computed_rd: Option<Vec<usize>> = if RD::PROVIDED {
            None
        } else {
            Some(displacements_from_counts(recv_counts))
        };
        let recv_displs: &[usize] = match self.recv_displs.provided() {
            Some(d) => d,
            None => computed_rd.as_deref().expect("computed when not provided"),
        };

        // Heavy assertion (§III-G): user-provided receive counts must
        // match the transposed send counts. Free when counts were
        // computed (they are the transpose by construction) or below the
        // Heavy level.
        if RC::PROVIDED {
            crate::assertions::check_count_matrix(comm, send_counts, recv_counts)?;
        }

        let needed = recv_displs
            .iter()
            .zip(recv_counts)
            .map(|(d, c)| d + c)
            .max()
            .unwrap_or(0);
        let raw = comm.raw();
        let ((), rb_out) = self.recv_buf.apply(needed, |storage| {
            raw.alltoallv_into(
                send,
                send_counts,
                send_displs,
                storage,
                recv_counts,
                recv_displs,
            )
        })?;

        let acc = ();
        let acc = rb_out.push_component(acc);
        let acc = self.send_displs.finish(computed_sd).push_component(acc);
        let acc = self.recv_counts.finish(computed_rc).push_component(acc);
        let acc = self.recv_displs.finish(computed_rd).push_component(acc);
        Ok(acc.finalize())
    }
}

/// Valid argument sets for [`Communicator::alltoall`] (equal-sized
/// blocks).
pub trait AlltoallArgs<T: Plain> {
    /// The call's result shape.
    type Output;
    /// Executes the call.
    fn run(self, comm: &Communicator) -> Result<Self::Output>;
}

impl<T, B, RB> AlltoallArgs<T>
    for ArgSet<SendBuf<B>, Absent, RB, Absent, Absent, Absent, Absent, Absent>
where
    T: Plain,
    SendBuf<B>: ProvidesSendData<T>,
    RB: RecvBufSpec<T>,
    RB::Out: PushComponent<()>,
    Push1<RB::Out>: Finalize,
{
    type Output = FinalOf<Push1<RB::Out>>;

    fn run(self, comm: &Communicator) -> Result<Self::Output> {
        let _tuning = comm.raw().tuning_guard(self.meta.tuning);
        let send = self.send_buf.send_slice();
        let raw = comm.raw();
        let ((), rb_out) = self
            .recv_buf
            .apply(send.len(), |storage| raw.alltoall_into(send, storage))?;
        Ok(rb_out.push_component(()).finalize())
    }
}

impl Communicator {
    /// Personalized all-to-all with per-destination counts (wraps
    /// `MPI_Alltoallv`).
    ///
    /// Accepted parameters: `send_buf` and `send_counts` (required),
    /// `send_displs`(`_out`), `recv_buf`, `recv_counts`(`_out`),
    /// `recv_displs`(`_out`). Omitted displacements are computed as
    /// prefix sums; omitted receive counts by transposing the send counts
    /// with one `alltoall`.
    ///
    /// This is the call at the heart of the paper's sample sort (Fig. 7):
    /// `data = comm.alltoallv(send_buf(data), send_counts(scounts))`.
    pub fn alltoallv<T, A>(&self, args: A) -> Result<<A::Out as AlltoallvArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: AlltoallvArgs<T>,
    {
        args.into_args().run(self)
    }

    /// Personalized all-to-all of equal-sized blocks (wraps
    /// `MPI_Alltoall`).
    pub fn alltoall<T, A>(&self, args: A) -> Result<<A::Out as AlltoallArgs<T>>::Output>
    where
        T: Plain,
        A: IntoArgs,
        A::Out: AlltoallArgs<T>,
    {
        args.into_args().run(self)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::Universe;

    #[test]
    fn alltoallv_sample_sort_idiom() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            // Rank r sends r copies of its rank id to every peer.
            let r = comm.rank();
            let send: Vec<u64> = vec![r as u64; 3 * r];
            let counts = vec![r; 3];
            let data: Vec<u64> = comm
                .alltoallv((send_buf(&send), send_counts(&counts)))
                .unwrap();
            // Receives j copies of j from each rank j.
            assert_eq!(data, vec![1, 2, 2]);
        });
    }

    #[test]
    fn alltoallv_moved_send_buffer() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let send = vec![comm.rank() as u32 * 10, comm.rank() as u32 * 10 + 1];
            let counts = vec![1usize, 1];
            // data = comm.alltoallv(send_buf(data), send_counts(...)) from Fig. 7.
            let data: Vec<u32> = comm
                .alltoallv((send_buf(send), send_counts(counts)))
                .unwrap();
            assert_eq!(data, vec![comm.rank() as u32, 10 + comm.rank() as u32]);
        });
    }

    #[test]
    fn alltoallv_all_outs() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let send = vec![7u8; 2];
            let counts = vec![1usize, 1];
            let (data, sd, rc, rd) = comm
                .alltoallv((
                    send_buf(&send),
                    send_counts(&counts),
                    send_displs_out(),
                    recv_counts_out(),
                    recv_displs_out(),
                ))
                .unwrap();
            assert_eq!(data, vec![7, 7]);
            assert_eq!(sd, vec![0, 1]);
            assert_eq!(rc, vec![1, 1]);
            assert_eq!(rd, vec![0, 1]);
        });
    }

    #[test]
    fn alltoallv_provided_recv_counts_skips_exchange() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let send = vec![comm.rank() as u16; 2];
            let counts = vec![1usize, 1];
            let before = comm.call_counts();
            let _: Vec<u16> = comm
                .alltoallv((send_buf(&send), send_counts(&counts), recv_counts(&counts)))
                .unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("alltoallv"), 1);
            assert_eq!(delta.get("alltoall"), 0, "no count transpose when provided");
        });
    }

    #[test]
    fn alltoallv_computed_recv_counts_issues_one_alltoall() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let send = vec![comm.rank() as u16; 2];
            let counts = vec![1usize, 1];
            let before = comm.call_counts();
            let _: Vec<u16> = comm
                .alltoallv((send_buf(&send), send_counts(&counts)))
                .unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("alltoall"), 1);
            assert_eq!(delta.get("alltoallv"), 1);
            assert_eq!(delta.total(), 2);
        });
    }

    #[test]
    fn alltoall_equal_blocks() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let send: Vec<u32> = (0..4).map(|i| comm.rank() as u32 * 10 + i).collect();
            let recv: Vec<u32> = comm.alltoall(send_buf(&send)).unwrap();
            let expected: Vec<u32> = (0..4).map(|j| j * 10 + comm.rank() as u32).collect();
            assert_eq!(recv, expected);
        });
    }

    #[test]
    fn alltoallv_into_borrowed_resized_buffer() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let send = vec![comm.rank() as u8 + 1; 3];
            let counts = vec![2usize, 1];
            let mut out: Vec<u8> = Vec::new();
            comm.alltoallv((
                send_buf(&send),
                send_counts(&counts),
                recv_buf(&mut out).resize_to_fit(),
            ))
            .unwrap();
            // Both ranks send 2 elements to rank 0 and 1 to rank 1, so
            // rank 0 receives [1,1,2,2] and rank 1 receives [1,2].
            if comm.rank() == 0 {
                assert_eq!(out, vec![1, 1, 2, 2]);
            } else {
                assert_eq!(out, vec![1, 2]);
            }
        });
    }
}
