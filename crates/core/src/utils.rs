//! Utility building blocks.
//!
//! [`with_flattened`] is the helper the paper's BFS (Fig. 9) leans on:
//! it turns a mapping `destination -> messages` into the contiguous
//! send buffer + send counts an `alltoallv` needs.

use std::collections::BTreeMap;
use std::collections::HashMap;

use kmp_mpi::Rank;

/// Flattens a `destination -> messages` map into `(data, send_counts)`
/// suitable for `alltoallv((send_buf(data), send_counts(counts)))`.
///
/// Works with any iterable of `(rank, Vec<T>)`; entries for absent ranks
/// get a zero count.
pub fn flatten<T, I>(messages: I, comm_size: usize) -> (Vec<T>, Vec<usize>)
where
    I: IntoIterator<Item = (Rank, Vec<T>)>,
{
    // Collect into rank order first (HashMap iteration order is
    // arbitrary, but alltoallv block k must target rank k).
    let mut by_rank: Vec<Vec<T>> = (0..comm_size).map(|_| Vec::new()).collect();
    for (rank, mut msgs) in messages {
        assert!(
            rank < comm_size,
            "destination {rank} out of range for size {comm_size}"
        );
        by_rank[rank].append(&mut msgs);
    }
    let counts: Vec<usize> = by_rank.iter().map(Vec::len).collect();
    let mut data = Vec::with_capacity(counts.iter().sum());
    for mut block in by_rank {
        data.append(&mut block);
    }
    (data, counts)
}

/// The paper's `with_flattened(frontier, comm.size()).call(...)` idiom:
/// flattens the message map and passes `(data, counts)` to `f`.
///
/// ```
/// use std::collections::HashMap;
/// use kamping::prelude::*;
///
/// kmp_mpi::Universe::run(2, |comm| {
///     let comm = Communicator::new(comm);
///     let mut next: HashMap<usize, Vec<u64>> = HashMap::new();
///     next.entry(1 - comm.rank()).or_default().push(comm.rank() as u64);
///     let got: Vec<u64> = with_flattened(next, comm.size(), |data, counts| {
///         comm.alltoallv((send_buf(data), send_counts(counts)))
///     })
///     .unwrap();
///     assert_eq!(got, vec![1 - comm.rank() as u64]);
/// });
/// ```
pub fn with_flattened<T, R>(
    messages: HashMap<Rank, Vec<T>>,
    comm_size: usize,
    f: impl FnOnce(Vec<T>, Vec<usize>) -> R,
) -> R {
    let (data, counts) = flatten(messages, comm_size);
    f(data, counts)
}

/// [`with_flattened`] for ordered maps.
pub fn with_flattened_btree<T, R>(
    messages: BTreeMap<Rank, Vec<T>>,
    comm_size: usize,
    f: impl FnOnce(Vec<T>, Vec<usize>) -> R,
) -> R {
    let (data, counts) = flatten(messages, comm_size);
    f(data, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_orders_by_rank() {
        let mut m: HashMap<Rank, Vec<u8>> = HashMap::new();
        m.insert(2, vec![5, 6]);
        m.insert(0, vec![1]);
        let (data, counts) = flatten(m, 3);
        assert_eq!(data, vec![1, 5, 6]);
        assert_eq!(counts, vec![1, 0, 2]);
    }

    #[test]
    fn flatten_merges_duplicate_destinations() {
        let entries = vec![(1usize, vec![1u32]), (1, vec![2])];
        let (data, counts) = flatten(entries, 2);
        assert_eq!(data, vec![1, 2]);
        assert_eq!(counts, vec![0, 2]);
    }

    #[test]
    fn flatten_empty() {
        let (data, counts) = flatten(Vec::<(Rank, Vec<u8>)>::new(), 4);
        assert!(data.is_empty());
        assert_eq!(counts, vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flatten_rejects_bad_rank() {
        flatten(vec![(7usize, vec![1u8])], 2);
    }

    #[test]
    fn with_flattened_btree_works() {
        let mut m: BTreeMap<Rank, Vec<u16>> = BTreeMap::new();
        m.insert(0, vec![9]);
        let total = with_flattened_btree(m, 1, |data, counts| {
            assert_eq!(counts, vec![1]);
            data.len()
        });
        assert_eq!(total, 1);
    }
}
