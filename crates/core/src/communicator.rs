//! The kamping communicator.

use kmp_mpi::{CallCounts, CollTuning, Comm, Rank, Result};

/// A communicator wrapping a substrate [`Comm`], the entry point for all
/// kamping operations.
///
/// Mirrors the paper's `kamping::Communicator`: it is constructed *from a
/// native communicator handle* (`Communicator comm(mpi_comm)` in Fig. 7),
/// so existing code can adopt kamping incrementally (§III-F), and the
/// native handle stays accessible through [`Communicator::raw`] for the
/// parts that have not been migrated yet.
pub struct Communicator {
    raw: Comm,
    /// Epoch counter for sparse (NBX) exchanges: successive exchanges use
    /// distinct tags so that a fast rank's next round cannot be consumed
    /// as current-round traffic by a slow one.
    pub(crate) sparse_epoch: std::cell::Cell<u64>,
}

impl Communicator {
    /// Wraps a substrate communicator (the `Communicator comm(comm_)`
    /// idiom from the paper's sample sort, Fig. 7).
    pub fn new(raw: Comm) -> Self {
        Communicator {
            raw,
            sparse_epoch: std::cell::Cell::new(0),
        }
    }

    /// The underlying substrate communicator, for interoperability with
    /// non-kamping code (§III-F: "fully compatible with native MPI
    /// objects").
    pub fn raw(&self) -> &Comm {
        &self.raw
    }

    /// This rank's rank.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.raw.rank()
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.raw.size()
    }

    /// True on rank 0.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.raw.is_root()
    }

    /// Synchronizes all ranks (mirrors `MPI_Barrier`).
    pub fn barrier(&self) -> Result<()> {
        self.raw.barrier()
    }

    /// Duplicates the communicator into a fresh context.
    pub fn dup(&self) -> Result<Communicator> {
        Ok(Communicator::new(self.raw.dup()?))
    }

    /// Splits the communicator by color, ordered by `(key, rank)`.
    pub fn split(&self, color: Option<u64>, key: i64) -> Result<Option<Communicator>> {
        Ok(self.raw.split(color, key)?.map(Communicator::new))
    }

    /// Snapshot of the PMPI-style per-operation call counts of this rank
    /// (used to verify that kamping issues only the expected MPI calls,
    /// §III-H).
    pub fn call_counts(&self) -> CallCounts {
        self.raw.call_counts()
    }

    /// The communicator's collective-algorithm tuning policy.
    pub fn tuning(&self) -> CollTuning {
        self.raw.tuning()
    }

    /// Sets the communicator's collective-algorithm tuning policy for
    /// all subsequent calls (a single call is overridden with the
    /// [`tuning(...)`](crate::params::tuning) named parameter). All
    /// ranks must agree on the tuning of matching calls.
    pub fn set_tuning(&self, tuning: CollTuning) {
        self.raw.set_tuning(tuning);
    }

    /// This communicator's current published cost-model snapshot: the
    /// per-algorithm `(alpha, beta)` estimates every rank agreed on at
    /// the last epoch boundary. Identical on all ranks between matching
    /// collective calls.
    pub fn model_snapshot(&self) -> kmp_mpi::ModelSnapshot {
        self.raw.model_snapshot()
    }

    /// Discards this communicator's learned cost model (estimates and
    /// pending observations), restarting the warm-up phase. Rank-local;
    /// call collectively to keep selections symmetric.
    pub fn reset_model(&self) {
        self.raw.reset_model();
    }

    /// This rank's cumulative self-tuning counters (decisions by pick
    /// kind, observations, snapshot publishes) across all communicators.
    pub fn tuning_stats(&self) -> kmp_mpi::TuningStats {
        self.raw.tuning_stats()
    }

    /// Current virtual time of this rank (see `kmp_mpi::clock`).
    pub fn clock_now_ns(&self) -> u64 {
        self.raw.clock_now_ns()
    }

    /// Collectively frees the communicator (mirrors `MPI_Comm_free`):
    /// synchronizes all members, then reclaims the per-context matching
    /// shards on every rank. Outstanding requests and persistent handles
    /// borrow the communicator, so the borrow checker enforces MPI's
    /// "free only after completing all requests" rule at compile time.
    pub fn free(self) -> Result<()> {
        self.raw.free()
    }
}

impl From<Comm> for Communicator {
    fn from(raw: Comm) -> Self {
        Communicator::new(raw)
    }
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("rank", &self.rank())
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;

    #[test]
    fn wraps_raw_comm() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            assert_eq!(comm.size(), 3);
            assert!(comm.rank() < 3);
            assert_eq!(comm.is_root(), comm.rank() == 0);
            comm.barrier().unwrap();
        });
    }

    #[test]
    fn raw_interop() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            // Mixed usage: raw substrate call through the wrapper.
            if comm.rank() == 0 {
                comm.raw().send(&[1u8], 1, 0).unwrap();
            } else {
                let (v, _) = comm.raw().recv_vec::<u8>(0, 0).unwrap();
                assert_eq!(v, vec![1]);
            }
        });
    }

    #[test]
    fn dup_and_split() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let dup = comm.dup().unwrap();
            assert_eq!(dup.size(), 4);
            let half = comm
                .split(Some((comm.rank() / 2) as u64), 0)
                .unwrap()
                .unwrap();
            assert_eq!(half.size(), 2);
        });
    }
}
