//! # kamping — flexible and (near) zero-overhead message-passing bindings
//!
//! Rust reproduction of the binding library from *"KaMPIng: Flexible and
//! (Near) Zero-Overhead C++ Bindings for MPI"* (SC'24). It layers the
//! paper's interface concepts over the [`kmp_mpi`] substrate:
//!
//! - **Named parameters** (§III-A): operations take any subset of their
//!   parameters, in any order, created by factory functions —
//!   [`params::send_buf`], [`params::recv_counts_out`], … Omitted
//!   parameters are computed (possibly with extra communication), and the
//!   code path for that computation exists only when the parameter is
//!   omitted (compile-time resolution, zero runtime dispatch).
//! - **In/out parameters and results by value** (§III-B): the receive
//!   buffer is always returned by value; each `*_out()` parameter appends
//!   a component to the returned tuple, destructured with plain `let` —
//!   the Rust form of structured bindings.
//! - **Allocation control** (§III-C): resize policies
//!   (`no_resize`/`grow_only`/`resize_to_fit`) per buffer, move-in /
//!   move-out container reuse.
//! - **Non-blocking safety** (§III-E): `isend` takes ownership of the
//!   send buffer and hands it back on `wait()`; received data is only
//!   accessible after completion.
//! - **Non-blocking collectives** (§III-E, extended): `iallgatherv`,
//!   `iallgather`, `ialltoallv`, `ibcast` and `iallreduce` return typed
//!   futures ([`collectives::NonBlockingCollective`] /
//!   [`collectives::NonBlockingBcast`]) that own the moved-in send
//!   buffers and produce the received data on `wait()` — so local work
//!   placed between the call and `wait()` genuinely overlaps with the
//!   collective (all outgoing traffic is posted eagerly by the
//!   substrate), and no §III-E hazard is expressible. The v-collectives
//!   need **no receive counts**, not even a hidden exchange: block sizes
//!   are discovered from the messages and `wait_with_counts()` returns
//!   them for free. Futures compose with [`p2p::RequestPool`] /
//!   [`p2p::BoundedRequestPool`] (including `wait_any` / `wait_some`).
//! - **Persistent operations** (MPI-4, [`persistent`]): `send_init` /
//!   `recv_init` / `bcast_init` / `allreduce_init` / `allgather_init` /
//!   `alltoallv_init` freeze the communication plan once; every
//!   `start()`/`wait()` cycle then runs with zero per-call setup — no
//!   algorithm re-selection, no waiter re-registration.
//! - **Algorithm tuning**: the binding stays policy-free while the
//!   substrate's selection engine
//!   ([`kmp_mpi::collectives::algos`]) picks per-collective algorithms
//!   by message size (Rabenseifner allreduce, van de Geijn bcast, Bruck
//!   alltoall, in-place binomial reduce). A per-call override travels
//!   as the [`params::tuning`] named parameter; a per-communicator
//!   policy is set with [`Communicator::set_tuning`].
//! - **Serialization** (§III-D3): explicit, via
//!   [`serialization::as_serialized`] /
//!   [`serialization::as_deserializable`].
//! - **Plugins** (§III-F, §V): grid all-to-all, sparse (NBX) all-to-all,
//!   reproducible reduce, ULFM fault tolerance, and a distributed sorter,
//!   each an extension trait on [`Communicator`].
//!
//! ## Quickstart
//!
//! ```
//! use kamping::prelude::*;
//!
//! kmp_mpi::Universe::run(4, |comm| {
//!     let comm = Communicator::new(comm);
//!     // Each rank contributes a differently-sized vector; counts and
//!     // displacements are computed internally (Fig. 1 of the paper).
//!     let mine = vec![comm.rank() as u64; comm.rank() + 1];
//!     let all: Vec<u64> = comm.allgatherv(send_buf(&mine)).unwrap();
//!     assert_eq!(all.len(), 1 + 2 + 3 + 4);
//! });
//! ```

pub mod assertions;
pub mod collectives;
pub mod communicator;
pub mod compile_checks;
pub mod p2p;
pub mod params;
pub mod persistent;
pub mod plugins;
pub mod serialization;
pub mod utils;

pub use collectives::NeighborhoodCommunicator;
pub use communicator::Communicator;
pub use kmp_mpi::{
    AlgoClass, AllreduceAlgo, AlltoallAlgo, BcastAlgo, ClassEstimate, CollTuning, ModelConfig,
    ModelSnapshot, MpiError, Neighborhood, NeighborhoodAlgo, Plain, Rank, ReduceAlgo, Result,
    Select, Tag, TuningStats,
};

/// The substrate's tracing subsystem (event rings, histograms, Chrome
/// trace export). See [`trace_span`] for annotating application phases.
pub use kmp_mpi::trace;

/// Opens a user-level trace span over an application phase (a BFS
/// level, a sort pass, …). The span records itself when the returned
/// guard drops; with the `trace` feature off this is a zero-sized no-op
/// that compiles away entirely.
///
/// ```ignore
/// let _phase = kamping::trace_span("bfs_level");
/// // ... exchange frontier ...
/// ```
#[inline]
pub fn trace_span(name: &'static str) -> trace::SpanGuard {
    trace::span(trace::cat::USER, name, 0, 0)
}

/// Reduction operations (re-exported from the substrate): built-ins
/// ([`ops::Sum`], [`ops::Min`], …) that play the role of `MPI_SUM` etc.,
/// plus combinators for user lambdas.
pub mod ops {
    pub use kmp_mpi::op::{
        commutative, non_commutative, BitAnd, BitOr, BitXor, Lambda, LogicalAnd, LogicalOr, Max,
        Min, Prod, ReduceOp, Sum,
    };
}

/// Everything needed to write kamping code: the communicator, the
/// parameter factories, the non-blocking futures and pools, and the
/// plugin traits.
pub mod prelude {
    pub use crate::collectives::{
        NeighborhoodCommunicator, NonBlockingBcast, NonBlockingCollective,
    };
    pub use crate::communicator::Communicator;
    pub use crate::ops;
    pub use crate::p2p::{BoundedRequestPool, RequestPool};
    pub use crate::params::{
        any_source, destination, op, recv_buf, recv_count, recv_counts, recv_counts_out,
        recv_displs, recv_displs_out, root, send_buf, send_count, send_counts, send_counts_out,
        send_displs, send_displs_out, send_recv_buf, source, tag, tuning,
    };
    pub use crate::persistent::Persistent;
    pub use crate::plugins::grid::GridAlltoall;
    pub use crate::plugins::repro_reduce::ReproducibleReduce;
    pub use crate::plugins::sorter::Sorter;
    pub use crate::plugins::sparse::SparseAlltoall;
    pub use crate::plugins::ulfm::FaultTolerant;
    pub use crate::serialization::{as_deserializable, as_serialized, as_serialized_inout};
    pub use crate::utils::{flatten, with_flattened};
    pub use kmp_mpi::{
        AllreduceAlgo, AlltoallAlgo, BcastAlgo, CollTuning, ModelConfig, Neighborhood,
        NeighborhoodAlgo, NeighborhoodColl, ReduceAlgo,
    };
}
