//! Plugins: library extensions outside the core (§III-F, §V).
//!
//! KaMPIng keeps its core small and ships additional functionality as
//! *plugins* that extend the communicator without touching application
//! code. In C++ a plugin is a CRTP mixin adding member functions; the
//! Rust rendering is an **extension trait** implemented for
//! [`Communicator`](crate::Communicator) — bring the trait into scope and
//! the communicator gains the operations:
//!
//! - [`sorter::Sorter`] — an STL-like distributed sample sort
//!   (`comm.sort(&mut data)`, §IV-A);
//! - [`sparse::SparseAlltoall`] — sparse all-to-all using the NBX
//!   algorithm of Hoefler et al. (§V-A);
//! - [`grid::GridAlltoall`] — two-dimensional grid all-to-all trading
//!   2x communication volume for `O(sqrt p)` message startups (§V-A);
//! - [`repro_reduce::ReproducibleReduce`] — a reduction with a fixed
//!   binary-tree evaluation order, bit-identical for every rank count
//!   (§V-C);
//! - [`ulfm::FaultTolerant`] — User-Level Failure Mitigation: revoke,
//!   shrink, agree, and failure-aware collectives (§V-B).

pub mod grid;
pub mod repro_reduce;
pub mod sorter;
pub mod sparse;
pub mod ulfm;
