//! User-Level Failure Mitigation plugin (§V-B, Fig. 12).
//!
//! The upcoming MPI 5.0 standard lets applications survive process
//! failures via ULFM. This plugin exposes the recovery operations as
//! idiomatic methods on the communicator, turning the check-return-code
//! style of the proposal into the error-driven flow of Fig. 12:
//!
//! ```
//! use kamping::prelude::*;
//!
//! let out = kmp_mpi::Universe::run_with(kmp_mpi::Config::new(4), |comm| {
//!     let mut comm = Communicator::new(comm);
//!     if comm.rank() == 3 {
//!         comm.fail_now(); // simulated crash
//!     }
//!     // Fig. 12: catch the failure, revoke, shrink, continue.
//!     if let Err(e) = comm.allreduce_single((send_buf(&[1u64]), op(ops::Sum))) {
//!         assert!(Communicator::is_failure(&e) || e == kamping::MpiError::Revoked);
//!         if !comm.is_revoked() {
//!             comm.revoke();
//!         }
//!         comm = comm.shrink().unwrap();
//!     }
//!     comm.allreduce_single((send_buf(&[1u64]), op(ops::Sum))).unwrap()
//! });
//! // The three survivors agree on the shrunken communicator's sum.
//! assert_eq!(out.iter().filter_map(|o| o.clone().completed()).sum::<u64>(), 9);
//! ```

use kmp_mpi::{MpiError, Result};

use crate::communicator::Communicator;

/// ULFM operations as a communicator extension.
pub trait FaultTolerant: Sized {
    /// Simulates a crash of the calling rank (failure injection for
    /// tests and benchmarks). Never returns.
    fn fail_now(&self) -> !;

    /// Revokes the communicator: all pending and future operations on it
    /// fail with [`MpiError::Revoked`] on every rank (mirrors
    /// `MPI_Comm_revoke`).
    fn revoke(&self);

    /// True if this communicator has been revoked.
    fn is_revoked(&self) -> bool;

    /// True if the given rank is known to have failed.
    fn is_rank_failed(&self, rank: kmp_mpi::Rank) -> bool;

    /// Shrinks to the surviving ranks, returning a fresh working
    /// communicator (mirrors `MPI_Comm_shrink`). Works on revoked
    /// communicators.
    fn shrink(&self) -> Result<Self>;

    /// Failure-aware agreement: logical AND of `flag` over all surviving
    /// ranks (mirrors `MPI_Comm_agree`).
    fn agree(&self, flag: bool) -> Result<bool>;

    /// True if `e` indicates a process failure (the recoverable error
    /// class of §V-B, as opposed to usage errors).
    fn is_failure(e: &MpiError) -> bool {
        matches!(e, MpiError::ProcessFailed { .. })
    }
}

impl FaultTolerant for Communicator {
    fn fail_now(&self) -> ! {
        self.raw().fail_here()
    }

    fn revoke(&self) {
        self.raw().revoke()
    }

    fn is_revoked(&self) -> bool {
        self.raw().is_revoked()
    }

    fn is_rank_failed(&self, rank: kmp_mpi::Rank) -> bool {
        self.raw().is_failed(rank)
    }

    fn shrink(&self) -> Result<Communicator> {
        Ok(Communicator::new(self.raw().shrink()?))
    }

    fn agree(&self, flag: bool) -> Result<bool> {
        self.raw().agree_and(flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use kmp_mpi::{Config, RankOutcome, Universe};

    #[test]
    fn fig12_recovery_flow() {
        let out = Universe::run_with(Config::new(4), |comm| {
            let mut comm = Communicator::new(comm);
            if comm.rank() == 1 {
                comm.fail_now();
            }
            let r = comm.allreduce_single((send_buf(&[1u64]), op(ops::Sum)));
            if let Err(e) = r {
                assert!(
                    Communicator::is_failure(&e) || e == MpiError::Revoked,
                    "unexpected error class: {e}"
                );
                if !comm.is_revoked() {
                    comm.revoke();
                }
                comm = comm.shrink().unwrap();
            }
            // The shrunken communicator works.
            comm.allreduce_single((send_buf(&[1u64]), op(ops::Sum)))
                .unwrap()
        });
        let survivors: Vec<u64> = out.into_iter().filter_map(|o| o.completed()).collect();
        assert_eq!(survivors, vec![3, 3, 3]);
    }

    #[test]
    fn agree_excludes_failed_ranks() {
        let out = Universe::run_with(Config::new(3), |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 2 {
                comm.fail_now();
            }
            comm.agree(true).unwrap()
        });
        assert_eq!(out[0], RankOutcome::Completed(true));
        assert_eq!(out[1], RankOutcome::Completed(true));
        assert_eq!(out[2], RankOutcome::Failed);
    }

    #[test]
    fn failure_classification() {
        assert!(Communicator::is_failure(&MpiError::ProcessFailed {
            world_rank: 1
        }));
        assert!(!Communicator::is_failure(&MpiError::Revoked));
        assert!(!Communicator::is_failure(&MpiError::InvalidTag { tag: -1 }));
    }

    #[test]
    fn shrink_without_failures_is_identity_sized() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let shrunk = comm.shrink().unwrap();
            assert_eq!(shrunk.size(), 3);
            assert_eq!(shrunk.rank(), comm.rank());
        });
    }
}
