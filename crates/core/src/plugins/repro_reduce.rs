//! Reproducible reduction plugin (§V-C, Fig. 13).
//!
//! IEEE 754 addition is not associative, so the result of a parallel sum
//! usually depends on the number of ranks — a reproducibility hazard for
//! scientific code. This plugin evaluates the reduction along a **fixed
//! binary tree over global element indices** (Fig. 13), independent of
//! how the elements are distributed: running with 1, 3 or 64 ranks gives
//! the bit-identical result, while still reducing in parallel with only a
//! few messages (binary-tree scheme of Villa et al. / Stelz).
//!
//! Tree shape: a range of length `len` splits after
//! `next_power_of_two(len) / 2` elements, i.e. the left child is the
//! largest complete power-of-two subtree (for 7 elements: `(4, (2, 1))`,
//! exactly the tree in Fig. 13).

use kmp_mpi::op::ReduceOp;
use kmp_mpi::{Plain, Rank, Result, Tag};

use crate::communicator::Communicator;

/// Tag reserved for reproducible-reduce partials.
pub const REPRO_REDUCE_TAG: Tag = 0x7A5C_0002;

/// Reproducible reduction as a communicator extension.
pub trait ReproducibleReduce {
    /// Reduces the distributed array (this rank holds `local`, the
    /// global layout is contiguous blocks in rank order) to a single
    /// value with a distribution-independent evaluation order. Every rank
    /// receives the result.
    ///
    /// The operation must be associative for the result to be meaningful;
    /// it need **not** be commutative, and for floating-point addition
    /// the evaluation order — and hence the rounding — is fixed.
    fn reproducible_reduce<T: Plain, O: ReduceOp<T>>(&self, local: &[T], op: O) -> Result<T>;
}

impl ReproducibleReduce for Communicator {
    fn reproducible_reduce<T: Plain, O: ReduceOp<T>>(&self, local: &[T], op: O) -> Result<T> {
        // Establish the global layout: block starts per rank.
        let counts: Vec<usize> = self.raw().allgather_vec(&[local.len()])?;
        let mut starts = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0usize;
        for &c in &counts {
            starts.push(acc);
            acc += c;
        }
        starts.push(acc);
        let n = acc;
        assert!(n > 0, "reproducible_reduce needs at least one element");

        let ctx = TreeCtx {
            comm: self,
            starts: &starts,
            my_start: starts[self.rank()],
            my_end: starts[self.rank() + 1],
            local,
            op: &op,
        };
        let root_value = ctx.reduce_range(0, n)?;

        // The tree root lands on the owner of element 0; share it.
        let owner0 = ctx.owner(0);
        let result = self
            .raw()
            .bcast_one(root_value.unwrap_or_else(kmp_mpi::plain::zeroed), owner0)?;
        Ok(result)
    }
}

struct TreeCtx<'a, T, O> {
    comm: &'a Communicator,
    starts: &'a [usize],
    my_start: usize,
    my_end: usize,
    local: &'a [T],
    op: &'a O,
}

impl<'a, T: Plain, O: ReduceOp<T>> TreeCtx<'a, T, O> {
    /// Rank owning global element `i`.
    fn owner(&self, i: usize) -> Rank {
        // starts is sorted; the owner is the last rank whose start <= i.
        // Empty blocks make several ranks share a start; partition_point
        // finds the first start > i, and we step back over empty blocks.
        let mut r = self.starts.partition_point(|&s| s <= i) - 1;
        // Skip empty blocks (start == end) backwards-compatible: the
        // owner must actually contain i.
        while self.starts[r + 1] <= i {
            r += 1;
        }
        r
    }

    /// Deterministic fold of a fully-local range along the fixed tree,
    /// implemented as the classic binary-counter stack (same bracketing
    /// as the recursion, O(len) time, O(log len) space).
    fn fold_local(&self, lo: usize, hi: usize) -> T {
        let slice = &self.local[lo - self.my_start..hi - self.my_start];
        // Stack of (subtree_size, value); merging equal sizes yields the
        // power-of-two subtrees, and the final right-to-left collapse
        // reproduces the `(big, (smaller, ...))` bracketing.
        let mut stack: Vec<(usize, T)> = Vec::with_capacity(64);
        for &x in slice {
            let mut size = 1usize;
            let mut val = x;
            while let Some(&(top_size, top_val)) = stack.last() {
                if top_size != size {
                    break;
                }
                stack.pop();
                val = self.op.apply(&top_val, &val);
                size *= 2;
            }
            stack.push((size, val));
        }
        let (_, mut acc) = stack.pop().expect("non-empty range");
        while let Some((_, v)) = stack.pop() {
            acc = self.op.apply(&v, &acc);
        }
        acc
    }

    /// Reduces global range `[lo, hi)`; returns `Some(value)` on the rank
    /// owning `lo`, `None` elsewhere.
    fn reduce_range(&self, lo: usize, hi: usize) -> Result<Option<T>> {
        // Ranks with no stake in this range do nothing.
        let overlaps = self.my_start < hi && self.my_end > lo;
        if !overlaps {
            return Ok(None);
        }
        // Fully local: deterministic tree fold without communication.
        if lo >= self.my_start && hi <= self.my_end {
            return Ok(Some(self.fold_local(lo, hi)));
        }

        let len = hi - lo;
        let half = (len.next_power_of_two()) / 2;
        let mid = lo + half;
        let left = self.reduce_range(lo, mid)?;
        let right = self.reduce_range(mid, hi)?;

        let owner_lo = self.owner(lo);
        let owner_mid = self.owner(mid);
        let me = self.comm.rank();

        if owner_lo == owner_mid {
            if me == owner_lo {
                let l = left.expect("owner of lo holds the left result");
                let r = right.expect("owner of mid holds the right result");
                return Ok(Some(self.op.apply(&l, &r)));
            }
            return Ok(None);
        }

        if me == owner_mid {
            let r = right.expect("owner of mid holds the right result");
            self.comm.raw().send_one(r, owner_lo, REPRO_REDUCE_TAG)?;
            return Ok(None);
        }
        if me == owner_lo {
            let l = left.expect("owner of lo holds the left result");
            let (r, _) = self.comm.raw().recv_one::<T>(owner_mid, REPRO_REDUCE_TAG)?;
            return Ok(Some(self.op.apply(&l, &r)));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use kmp_mpi::Universe;
    use rand::prelude::*;

    /// Reference: the same fixed tree, computed sequentially.
    fn tree_fold(values: &[f64]) -> f64 {
        fn rec(v: &[f64]) -> f64 {
            if v.len() == 1 {
                return v[0];
            }
            let half = v.len().next_power_of_two() / 2;
            rec(&v[..half]) + rec(&v[half..])
        }
        rec(values)
    }

    fn adversarial_values(n: usize, seed: u64) -> Vec<f64> {
        // Mixed magnitudes make float addition order-sensitive.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mag = rng.random_range(-12..12);
                rng.random::<f64>() * 10f64.powi(mag) * if rng.random() { 1.0 } else { -1.0 }
            })
            .collect()
    }

    fn distribute(values: &[f64], p: usize, skew: bool) -> Vec<Vec<f64>> {
        // Either balanced blocks or heavily skewed ones.
        let n = values.len();
        let mut blocks = Vec::new();
        let mut start = 0;
        for r in 0..p {
            let len = if skew {
                if r == 0 {
                    n - (p - 1).min(n)
                } else {
                    usize::from(start < n)
                }
            } else {
                n / p + usize::from(r < n % p)
            };
            blocks.push(values[start..start + len].to_vec());
            start += len;
        }
        assert_eq!(start, n);
        blocks
    }

    #[test]
    fn bit_identical_across_rank_counts() {
        let values = adversarial_values(257, 7);
        let reference = tree_fold(&values);
        for p in [1usize, 2, 3, 4, 5, 8] {
            let blocks = distribute(&values, p, false);
            let results = Universe::run(p, |comm| {
                let comm = Communicator::new(comm);
                comm.reproducible_reduce(&blocks[comm.rank()], ops::Sum)
                    .unwrap()
            });
            for r in results {
                assert_eq!(
                    r.to_bits(),
                    reference.to_bits(),
                    "result must be bit-identical for p = {p}"
                );
            }
        }
    }

    #[test]
    fn bit_identical_under_skewed_distribution() {
        let values = adversarial_values(100, 13);
        let reference = tree_fold(&values);
        let blocks = distribute(&values, 4, true);
        let results = Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            comm.reproducible_reduce(&blocks[comm.rank()], ops::Sum)
                .unwrap()
        });
        for r in results {
            assert_eq!(r.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn plain_allreduce_may_differ_but_repro_does_not() {
        // Demonstrates the problem being solved: naive reductions change
        // with p; the reproducible one does not.
        let values = adversarial_values(64, 3);
        let reference = tree_fold(&values);
        for p in [2usize, 4] {
            let blocks = distribute(&values, p, false);
            let repro = Universe::run(p, |comm| {
                let comm = Communicator::new(comm);
                comm.reproducible_reduce(&blocks[comm.rank()], ops::Sum)
                    .unwrap()
            });
            assert!(repro.iter().all(|r| r.to_bits() == reference.to_bits()));
        }
    }

    #[test]
    fn works_with_integer_ops() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let local: Vec<u64> = vec![comm.rank() as u64 + 1; 4];
            let total = comm.reproducible_reduce(&local, ops::Sum).unwrap();
            assert_eq!(total, 4 * (1 + 2 + 3));
        });
    }

    #[test]
    fn empty_block_on_some_ranks() {
        let results = Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let local: Vec<f64> = if comm.rank() == 1 {
                vec![]
            } else {
                vec![1.5, 2.5]
            };
            comm.reproducible_reduce(&local, ops::Sum).unwrap()
        });
        for r in results {
            assert_eq!(r, 8.0);
        }
    }

    #[test]
    fn seven_elements_match_fig13_tree() {
        // Fig. 13: 7 elements on 3 ranks (3, 2, 2).
        let values: Vec<f64> = vec![1e16, 1.0, -1e16, 2.0, 3.0, -2.0, 0.5];
        let reference = tree_fold(&values);
        let blocks: [Vec<f64>; 3] = [vec![1e16, 1.0, -1e16], vec![2.0, 3.0], vec![-2.0, 0.5]];
        let results = Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            comm.reproducible_reduce(&blocks[comm.rank()], ops::Sum)
                .unwrap()
        });
        for r in results {
            assert_eq!(r.to_bits(), reference.to_bits());
        }
    }
}
