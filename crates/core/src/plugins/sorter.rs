//! STL-like distributed sorter plugin (§V intro, §IV-A).
//!
//! `comm.sort(&mut data)` sorts data distributed across all ranks: after
//! the call, each rank holds a sorted run and every element on rank `i`
//! is `<=` every element on rank `i+1`. The implementation is the
//! textbook sample sort of §IV-A (Fig. 7) — regular sampling, splitter
//! selection, bucket exchange via `alltoallv`, local sort.

use kmp_mpi::{Plain, Result};

use crate::communicator::Communicator;
use crate::params::{send_buf, send_counts};

/// Distributed sorting as a communicator extension.
pub trait Sorter {
    /// Sorts distributed data in place (globally: rank order = value
    /// order). The local vector is replaced by this rank's sorted bucket;
    /// bucket sizes may differ from the input sizes.
    fn sort<T: Plain + Ord>(&self, data: &mut Vec<T>) -> Result<()>;
}

impl Sorter for Communicator {
    fn sort<T: Plain + Ord>(&self, data: &mut Vec<T>) -> Result<()> {
        let p = self.size();
        if p == 1 {
            data.sort_unstable();
            return Ok(());
        }

        // Deterministic regular sampling: s evenly spaced local samples
        // (oversampling factor chosen as in the paper's sample sort:
        // 16 log2 p + 1).
        let num_samples = (16 * p.ilog2() as usize + 1).min(data.len().max(1));
        let mut local = std::mem::take(data);
        local.sort_unstable();
        let mut samples: Vec<T> = Vec::with_capacity(num_samples);
        if !local.is_empty() {
            for k in 0..num_samples {
                let idx = (k * local.len()) / num_samples;
                samples.push(local[idx]);
            }
        }

        // Global splitter selection from all samples.
        let mut gsamples: Vec<T> = self.allgatherv(send_buf(&samples))?;
        gsamples.sort_unstable();
        let splitters: Vec<T> = if gsamples.is_empty() {
            Vec::new()
        } else {
            (1..p).map(|i| gsamples[(i * gsamples.len()) / p]).collect()
        };

        // Partition into buckets; bucket i gets values in
        // (splitter[i-1], splitter[i]].
        let mut counts = vec![0usize; p];
        for v in &local {
            let b = splitters.partition_point(|s| s < v);
            counts[b] += 1;
        }

        // local is sorted and partition_point is monotone, so the bucket
        // layout is exactly the sorted order: ship it as-is.
        let mut received: Vec<T> = self.alltoallv((send_buf(local), send_counts(counts)))?;
        received.sort_unstable();
        *data = received;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;
    use rand::prelude::*;

    fn check_sorted_distributed(outputs: &[Vec<u64>], mut expected: Vec<u64>) {
        expected.sort_unstable();
        // Concatenation in rank order must equal the sorted input.
        let got: Vec<u64> = outputs.iter().flatten().copied().collect();
        assert_eq!(got, expected);
        for run in outputs {
            assert!(run.is_sorted());
        }
    }

    #[test]
    fn sorts_random_u64() {
        let per_rank = 500;
        let p = 4;
        let outputs = Universe::run(p, |comm| {
            let comm = Communicator::new(comm);
            let mut rng = StdRng::seed_from_u64(42 + comm.rank() as u64);
            let mut data: Vec<u64> = (0..per_rank).map(|_| rng.random()).collect();
            comm.sort(&mut data).unwrap();
            data
        });
        let mut all = Vec::new();
        for r in 0..p {
            let mut rng = StdRng::seed_from_u64(42 + r as u64);
            all.extend((0..per_rank).map(|_| rng.random::<u64>()));
        }
        check_sorted_distributed(&outputs, all);
    }

    #[test]
    fn sorts_skewed_input() {
        // All the data on one rank.
        let outputs = Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mut data: Vec<u64> = if comm.rank() == 0 {
                (0..300).rev().collect()
            } else {
                vec![]
            };
            comm.sort(&mut data).unwrap();
            data
        });
        check_sorted_distributed(&outputs, (0..300).collect());
    }

    #[test]
    fn sorts_duplicates() {
        let outputs = Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mut data = vec![7u64; 100];
            comm.sort(&mut data).unwrap();
            data
        });
        check_sorted_distributed(&outputs, vec![7; 400]);
    }

    #[test]
    fn sorts_single_rank() {
        let outputs = Universe::run(1, |comm| {
            let comm = Communicator::new(comm);
            let mut data = vec![3u64, 1, 2];
            comm.sort(&mut data).unwrap();
            data
        });
        assert_eq!(outputs[0], vec![1, 2, 3]);
    }

    #[test]
    fn sorts_empty_everywhere() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mut data: Vec<u64> = vec![];
            comm.sort(&mut data).unwrap();
            assert!(data.is_empty());
        });
    }

    #[test]
    fn global_rank_order_holds() {
        let outputs = Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let mut rng = StdRng::seed_from_u64(comm.rank() as u64);
            let mut data: Vec<u64> = (0..200).map(|_| rng.random_range(0..1000)).collect();
            comm.sort(&mut data).unwrap();
            data
        });
        for w in outputs.windows(2) {
            if let (Some(hi), Some(lo)) = (w[0].last(), w[1].first()) {
                assert!(hi <= lo, "rank boundaries must preserve global order");
            }
        }
    }
}
