//! Two-dimensional grid all-to-all plugin (§V-A).
//!
//! A dense `alltoallv` costs `p-1` message startups per rank. Organizing
//! the `p` ranks in a virtual `r x c` grid (Kalé et al.) and routing each
//! message in two hops — first within the sender's *row* to the column of
//! the destination, then within that *column* to the destination — costs
//! only `(c-1) + (r-1) = O(sqrt p)` startups at twice the communication
//! volume: a hardware-agnostic latency reduction with asymptotic
//! guarantees.
//!
//! `p` is factored exactly into `r x c` with `r` the largest divisor
//! `<= sqrt(p)` (powers of two — the benchmark configuration — give
//! near-square grids; primes degenerate to `1 x p`, i.e. direct
//! exchange).

use kmp_mpi::plain::{as_bytes, bytes_to_vec};
use kmp_mpi::{Plain, Rank, Result};

use crate::communicator::Communicator;
use crate::params::{send_buf, send_counts};

/// Grid all-to-all as a communicator extension.
pub trait GridAlltoall {
    /// Builds the 2D grid overlay (two communicator splits). Reuse the
    /// returned [`GridCommunicator`] across exchanges.
    fn make_grid(&self) -> Result<GridCommunicator>;
}

impl GridAlltoall for Communicator {
    fn make_grid(&self) -> Result<GridCommunicator> {
        let p = self.size();
        let (r, c) = factor_grid(p);
        let row = self.rank() / c;
        let col = self.rank() % c;
        let row_comm = self
            .split(Some(row as u64), col as i64)?
            .expect("all ranks participate in the row split");
        let col_comm = self
            .split(Some(col as u64), row as i64)?
            .expect("all ranks participate in the column split");
        debug_assert_eq!(row_comm.rank(), col);
        debug_assert_eq!(col_comm.rank(), row);
        Ok(GridCommunicator {
            row_comm,
            col_comm,
            rows: r,
            cols: c,
            rank: self.rank(),
            p,
        })
    }
}

/// Factors `p` into `(rows, cols)` with `rows` the largest divisor not
/// exceeding `sqrt(p)`.
pub fn factor_grid(p: usize) -> (usize, usize) {
    let mut best = 1;
    let mut d = 1;
    while d * d <= p {
        if p.is_multiple_of(d) {
            best = d;
        }
        d += 1;
    }
    (best, p / best)
}

/// The grid overlay: a row communicator, a column communicator, and the
/// routing metadata.
pub struct GridCommunicator {
    row_comm: Communicator,
    col_comm: Communicator,
    rows: usize,
    cols: usize,
    rank: Rank,
    p: usize,
}

/// Per-block routing header: final destination, origin, payload bytes.
const HEADER_WORDS: usize = 3;

fn pack_block(out: &mut Vec<u8>, dest: Rank, origin: Rank, payload: &[u8]) {
    let header = [dest as u64, origin as u64, payload.len() as u64];
    out.extend_from_slice(as_bytes(&header));
    out.extend_from_slice(payload);
}

fn unpack_blocks(mut bytes: &[u8], mut f: impl FnMut(Rank, Rank, &[u8])) {
    while !bytes.is_empty() {
        let header: Vec<u64> = bytes_to_vec(&bytes[..HEADER_WORDS * 8]);
        let len = header[2] as usize;
        let start = HEADER_WORDS * 8;
        f(
            header[0] as usize,
            header[1] as usize,
            &bytes[start..start + len],
        );
        bytes = &bytes[start + len..];
    }
}

impl GridCommunicator {
    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Personalized all-to-all routed over the grid: semantics of
    /// `alltoallv((send_buf(data), send_counts(counts)))`, but with
    /// `O(sqrt p)` message startups per rank. Returns the received
    /// `(origin, data)` pairs sorted by origin.
    pub fn alltoallv_sparse<T: Plain>(
        &self,
        send: &[T],
        counts: &[usize],
    ) -> Result<Vec<(Rank, Vec<T>)>> {
        assert_eq!(counts.len(), self.p, "one send count per rank");
        let elem = std::mem::size_of::<T>();

        // Phase 1 (row exchange): bucket per destination *column*.
        let mut row_bufs: Vec<Vec<u8>> = (0..self.cols).map(|_| Vec::new()).collect();
        let mut offset = 0usize;
        for (dest, &count) in counts.iter().enumerate() {
            let block = &send[offset..offset + count];
            offset += count;
            if count == 0 {
                continue;
            }
            let dest_col = dest % self.cols;
            pack_block(&mut row_bufs[dest_col], dest, self.rank, as_bytes(block));
        }
        let row_counts: Vec<usize> = row_bufs.iter().map(Vec::len).collect();
        let row_data: Vec<u8> = row_bufs.concat();
        let from_row: Vec<u8> = self
            .row_comm
            .alltoallv((send_buf(&row_data), send_counts(&row_counts)))?;

        // Phase 2 (column exchange): bucket per destination *row*.
        let mut col_bufs: Vec<Vec<u8>> = (0..self.col_comm.size()).map(|_| Vec::new()).collect();
        unpack_blocks(&from_row, |dest, origin, payload| {
            let dest_row = dest / self.cols;
            pack_block(&mut col_bufs[dest_row], dest, origin, payload);
        });
        let col_counts: Vec<usize> = col_bufs.iter().map(Vec::len).collect();
        let col_data: Vec<u8> = col_bufs.concat();
        let from_col: Vec<u8> = self
            .col_comm
            .alltoallv((send_buf(&col_data), send_counts(&col_counts)))?;

        let mut out: Vec<(Rank, Vec<T>)> = Vec::new();
        unpack_blocks(&from_col, |dest, origin, payload| {
            debug_assert_eq!(dest, self.rank, "block routed to the wrong rank");
            debug_assert_eq!(payload.len() % elem.max(1), 0);
            out.push((origin, bytes_to_vec(payload)));
        });
        out.sort_by_key(|(origin, _)| *origin);
        Ok(out)
    }

    /// Like [`GridCommunicator::alltoallv_sparse`], but returns only the
    /// concatenated data (origin-sorted) — a drop-in for the dense
    /// `alltoallv` in exchange loops.
    pub fn alltoallv<T: Plain>(&self, send: &[T], counts: &[usize]) -> Result<Vec<T>> {
        let pairs = self.alltoallv_sparse(send, counts)?;
        let total = pairs.iter().map(|(_, v)| v.len()).sum();
        let mut out = Vec::with_capacity(total);
        for (_, mut v) in pairs {
            out.append(&mut v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;

    #[test]
    fn factoring() {
        assert_eq!(factor_grid(1), (1, 1));
        assert_eq!(factor_grid(4), (2, 2));
        assert_eq!(factor_grid(8), (2, 4));
        assert_eq!(factor_grid(16), (4, 4));
        assert_eq!(factor_grid(12), (3, 4));
        assert_eq!(factor_grid(7), (1, 7)); // prime: degenerate grid
        assert_eq!(factor_grid(36), (6, 6));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matches_dense_alltoallv() {
        for p in [1usize, 2, 4, 6, 8, 9] {
            Universe::run(p, move |comm| {
                let comm = Communicator::new(comm);
                let grid = comm.make_grid().unwrap();
                // Rank r sends (r+d) to destination d, d elements.
                let mut send: Vec<u64> = Vec::new();
                let mut counts = vec![0usize; p];
                for d in 0..p {
                    counts[d] = d % 3;
                    for _ in 0..counts[d] {
                        send.push((comm.rank() + d) as u64);
                    }
                }
                let got = grid.alltoallv_sparse(&send, &counts).unwrap();
                // Expected: from each origin o, (o + my_rank) repeated my_rank%3 times.
                let expect_count = comm.rank() % 3;
                for (o, data) in &got {
                    assert_eq!(data.len(), expect_count);
                    assert!(data.iter().all(|&v| v == (o + comm.rank()) as u64));
                }
                let expected_origins: Vec<usize> = if expect_count == 0 {
                    vec![]
                } else {
                    (0..p).collect()
                };
                let origins: Vec<usize> = got.iter().map(|(o, _)| *o).collect();
                assert_eq!(origins, expected_origins, "p = {p}");
            });
        }
    }

    #[test]
    fn startup_count_is_grid_dimension() {
        // On a 4x4 grid, each exchange costs 2 sub-alltoallvs over size-4
        // communicators instead of one over size 16.
        Universe::run(16, |comm| {
            let comm = Communicator::new(comm);
            let grid = comm.make_grid().unwrap();
            assert_eq!(grid.dims(), (4, 4));
            let before = comm.call_counts();
            let counts = vec![1usize; 16];
            let send: Vec<u32> = (0..16).map(|d| d as u32).collect();
            let _ = grid.alltoallv(&send, &counts).unwrap();
            let delta = comm.call_counts().since(&before);
            // Two alltoallv calls (row + column), each in a size-4 comm.
            assert_eq!(delta.get("alltoallv"), 2);
        });
    }

    #[test]
    fn empty_messages() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let grid = comm.make_grid().unwrap();
            let got = grid.alltoallv::<u64>(&[], &[0; 4]).unwrap();
            assert!(got.is_empty());
        });
    }

    #[test]
    fn reuse_across_rounds() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let grid = comm.make_grid().unwrap();
            for round in 0..3u64 {
                let mut counts = vec![0usize; 4];
                counts[(comm.rank() + 1) % 4] = 1;
                let send = vec![round * 100 + comm.rank() as u64];
                let got = grid.alltoallv_sparse(&send, &counts).unwrap();
                assert_eq!(got.len(), 1);
                let left = (comm.rank() + 3) % 4;
                assert_eq!(got[0], (left, vec![round * 100 + left as u64]));
            }
        });
    }
}
