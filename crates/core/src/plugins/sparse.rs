//! Sparse all-to-all plugin: the NBX algorithm (§V-A).
//!
//! `MPI_Alltoallv` forces every rank to scan a counts array of length `p`
//! and to take part in a dense exchange even when it only talks to a
//! handful of neighbours. For *dynamic* sparse patterns (the frontier
//! exchanges of graph algorithms), the paper ships a plugin implementing
//! the NBX dynamic sparse data exchange of Hoefler, Siebert and Lumsdaine
//! (PPoPP'10):
//!
//! 1. every rank posts a **synchronous** non-blocking send (`issend`)
//!    per destination;
//! 2. it then loops: probe for incoming messages (receiving any), and
//!    once all own sends have been matched, start a non-blocking
//!    **barrier**;
//! 3. when the barrier completes, every message in the system has been
//!    received, and the exchange terminates — total cost proportional to
//!    the *actual* number of messages, independent of `p`.

use std::collections::HashMap;

use kmp_mpi::request::TestOutcome;
use kmp_mpi::{Plain, Rank, Result, Src, Tag, TagSel};

use crate::communicator::Communicator;

/// Base tag reserved for NBX exchanges; successive exchanges on the same
/// communicator cycle through `NBX_TAG_BASE..NBX_TAG_BASE + NBX_EPOCHS`
/// so that rounds cannot bleed into each other. User code must not use
/// this tag range.
pub const NBX_TAG_BASE: Tag = 0x7A5C_0000;
/// Number of distinct NBX round tags.
pub const NBX_EPOCHS: Tag = 1024;

/// Sparse all-to-all as a communicator extension.
pub trait SparseAlltoall {
    /// Exchanges `destination -> message` pairs; returns the received
    /// `(source, message)` pairs in arrival order. Only actual
    /// communication partners cost anything — no `Θ(p)` term (§V-A).
    fn sparse_alltoallv<T: Plain>(
        &self,
        messages: &HashMap<Rank, Vec<T>>,
    ) -> Result<Vec<(Rank, Vec<T>)>>;
}

impl SparseAlltoall for Communicator {
    fn sparse_alltoallv<T: Plain>(
        &self,
        messages: &HashMap<Rank, Vec<T>>,
    ) -> Result<Vec<(Rank, Vec<T>)>> {
        let raw = self.raw();
        // Distinct tag per round (see NBX_TAG_BASE): all ranks call the
        // exchange in the same order, so the epochs agree.
        let epoch = self.sparse_epoch.get();
        self.sparse_epoch.set(epoch + 1);
        let tag: Tag = NBX_TAG_BASE + (epoch % NBX_EPOCHS as u64) as Tag;

        // Phase 1: synchronous-mode sends; completion implies the
        // receiver has matched the message.
        let mut pending_sends = Vec::with_capacity(messages.len());
        for (&dest, payload) in messages {
            pending_sends.push(raw.issend(payload, dest, tag)?);
        }

        let mut received: Vec<(Rank, Vec<T>)> = Vec::new();
        let mut barrier = None;

        loop {
            // Drain every message currently available.
            while let Some(status) = raw.iprobe(Src::Any, TagSel::Is(tag)) {
                let (data, st) = raw.recv_vec::<T>(status.source, tag)?;
                received.push((st.source, data));
            }

            match barrier.take() {
                None => {
                    // Advance local sends; once all are matched, everyone
                    // I talk to has my data — enter the barrier.
                    let mut still_pending = Vec::with_capacity(pending_sends.len());
                    for req in pending_sends {
                        match req.test()? {
                            TestOutcome::Ready(_) => {}
                            TestOutcome::Pending(r) => still_pending.push(r),
                        }
                    }
                    pending_sends = still_pending;
                    if pending_sends.is_empty() {
                        barrier = Some(raw.ibarrier()?);
                    }
                }
                Some(b) => match b.test()? {
                    // Barrier done: all ranks' sends were matched, so no
                    // message can still be in flight.
                    TestOutcome::Ready(_) => break,
                    TestOutcome::Pending(b) => barrier = Some(b),
                },
            }
            std::thread::yield_now();
        }

        // A final drain: messages that arrived between the last probe and
        // barrier completion are already queued locally.
        while let Some(status) = raw.iprobe(Src::Any, TagSel::Is(tag)) {
            let (data, st) = raw.recv_vec::<T>(status.source, tag)?;
            received.push((st.source, data));
        }
        Ok(received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;

    fn to_map<T>(pairs: Vec<(Rank, Vec<T>)>) -> HashMap<Rank, Vec<T>> {
        let mut m = HashMap::new();
        for (r, v) in pairs {
            assert!(m.insert(r, v).is_none(), "duplicate source");
        }
        m
    }

    #[test]
    fn ring_neighbors_only() {
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let right = (comm.rank() + 1) % 4;
            let mut msgs = HashMap::new();
            msgs.insert(right, vec![comm.rank() as u64]);
            let got = to_map(comm.sparse_alltoallv(&msgs).unwrap());
            let left = (comm.rank() + 3) % 4;
            assert_eq!(got.len(), 1);
            assert_eq!(got[&left], vec![left as u64]);
        });
    }

    #[test]
    fn empty_exchange_terminates() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let msgs: HashMap<Rank, Vec<u8>> = HashMap::new();
            let got = comm.sparse_alltoallv(&msgs).unwrap();
            assert!(got.is_empty());
        });
    }

    #[test]
    fn asymmetric_pattern() {
        // Rank 0 broadcasts to everyone; nobody answers.
        Universe::run(4, |comm| {
            let comm = Communicator::new(comm);
            let msgs: HashMap<Rank, Vec<u32>> = if comm.rank() == 0 {
                (1..4).map(|r| (r, vec![r as u32 * 10])).collect()
            } else {
                HashMap::new()
            };
            let got = comm.sparse_alltoallv(&msgs).unwrap();
            if comm.rank() == 0 {
                assert!(got.is_empty());
            } else {
                assert_eq!(got, vec![(0, vec![comm.rank() as u32 * 10])]);
            }
        });
    }

    #[test]
    fn dense_pattern_still_correct() {
        // NBX must also work when everyone talks to everyone.
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let msgs: HashMap<Rank, Vec<u16>> = (0..3)
                .map(|r| (r, vec![comm.rank() as u16, r as u16]))
                .collect();
            let got = to_map(comm.sparse_alltoallv(&msgs).unwrap());
            assert_eq!(got.len(), 3);
            for (src, data) in got {
                assert_eq!(data, vec![src as u16, comm.rank() as u16]);
            }
        });
    }

    #[test]
    fn repeated_exchanges() {
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            for round in 0..5u64 {
                let mut msgs = HashMap::new();
                msgs.insert((comm.rank() + 1) % 3, vec![round]);
                let got = comm.sparse_alltoallv(&msgs).unwrap();
                assert_eq!(got.len(), 1);
                assert_eq!(got[0].1, vec![round]);
            }
        });
    }

    #[test]
    fn self_message() {
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            let mut msgs = HashMap::new();
            msgs.insert(comm.rank(), vec![99u8]);
            let got = comm.sparse_alltoallv(&msgs).unwrap();
            assert_eq!(got, vec![(comm.rank(), vec![99])]);
        });
    }

    #[test]
    fn message_count_scales_with_partners_not_p() {
        // The PMPI counters show only `deg` sends, independent of p.
        Universe::run(6, |comm| {
            let comm = Communicator::new(comm);
            let before = comm.call_counts();
            let mut msgs = HashMap::new();
            msgs.insert((comm.rank() + 1) % 6, vec![1u8]);
            comm.sparse_alltoallv(&msgs).unwrap();
            let delta = comm.call_counts().since(&before);
            assert_eq!(delta.get("issend"), 1, "one send per actual partner");
            assert_eq!(delta.get("alltoallv"), 0, "no dense exchange involved");
        });
    }
}
