//! Explicit serialization support (§III-D3 of the paper, Fig. 5/11).
//!
//! Heap-structured data (`String`, maps, nested vectors, …) cannot be
//! described as a plain buffer; it must be packed into contiguous bytes
//! before communication. KaMPIng makes this *explicit*: serialization
//! only happens when the caller writes `send_buf(as_serialized(&data))`
//! (or `recv_buf(as_deserializable::<T>())`), because packing has real
//! allocation and CPU costs that a zero-overhead library must not hide
//! (§III-D4 measures them).
//!
//! The wire format is [`kmp_serialize`], the repository's Cereal
//! substitute.
//!
//! ```
//! use std::collections::BTreeMap;
//! use kamping::prelude::*;
//!
//! kmp_mpi::Universe::run(2, |comm| {
//!     let comm = Communicator::new(comm);
//!     if comm.rank() == 0 {
//!         let mut dict = BTreeMap::new();
//!         dict.insert("key".to_string(), "value".to_string());
//!         comm.send((send_buf(as_serialized(&dict)), destination(1))).unwrap();
//!     } else {
//!         let dict: BTreeMap<String, String> =
//!             comm.recv((recv_buf(as_deserializable()), source(0))).unwrap();
//!         assert_eq!(dict["key"], "value");
//!     }
//! });
//! ```

use serde::de::DeserializeOwned;
use serde::Serialize;

use kmp_mpi::{MpiError, Result};

use crate::communicator::Communicator;
use crate::p2p::{RecvArgs, SendArgs};
use crate::params::argset::ArgSet;
use crate::params::slots::SendReclaim;
use crate::params::{Absent, NoResize, RecvBuf, SendBuf, SendRecvBuf};

/// Mode marker selecting the serialized code path of `send`/`recv`/`bcast`.
#[derive(Clone, Copy, Debug)]
pub struct SerialMode;

/// A borrowed value to be serialized into the send buffer. Created by
/// [`as_serialized`].
#[derive(Debug)]
pub struct Serialized<'a, T>(&'a T);

/// Marks data to be serialized before sending (Fig. 5:
/// `send_buf(as_serialized(data))`). Works with any [`serde::Serialize`]
/// type.
pub fn as_serialized<T: Serialize>(value: &T) -> Serialized<'_, T> {
    Serialized(value)
}

/// A marker requesting deserialization of the received payload. Created
/// by [`as_deserializable`].
#[derive(Debug, Default)]
pub struct Deserializable<T>(std::marker::PhantomData<T>);

/// Marks the receive buffer as a deserialization target (Fig. 5:
/// `recv_buf(as_deserializable::<dict>())`); the receive returns the
/// decoded value.
pub fn as_deserializable<T: DeserializeOwned>() -> Deserializable<T> {
    Deserializable(std::marker::PhantomData)
}

/// A mutable value serialized at the root and deserialized in place
/// elsewhere — the in-out form used with `bcast(send_recv_buf(..))`
/// (Fig. 11). Created by [`as_serialized_inout`].
#[derive(Debug)]
pub struct SerializedInout<'a, T>(&'a mut T);

/// Marks a value for serialize-at-root / deserialize-elsewhere in-place
/// broadcast (the RAxML-NG `mpi_broadcast` replacement of Fig. 11).
pub fn as_serialized_inout<T: Serialize + DeserializeOwned>(
    value: &mut T,
) -> SerializedInout<'_, T> {
    SerializedInout(value)
}

fn ser_err(e: kmp_serialize::Error) -> MpiError {
    MpiError::Serialize(e.to_string())
}

fn de_err(e: kmp_serialize::Error) -> MpiError {
    MpiError::Deserialize(e.to_string())
}

// --- send ------------------------------------------------------------------

impl<'a, T: Serialize> SendArgs<SerialMode>
    for ArgSet<SendBuf<Serialized<'a, T>>, Absent, Absent, Absent, Absent, Absent, Absent, Absent>
{
    fn run(self, comm: &Communicator) -> Result<()> {
        let dest = self
            .meta
            .destination
            .expect("missing required parameter `destination` (pass destination(rank))");
        let tag = self.meta.tag.unwrap_or(0);
        let bytes = kmp_serialize::to_bytes(self.send_buf.0 .0).map_err(ser_err)?;
        // The serialized buffer moves into the transport (no second copy).
        comm.raw().send_vec(bytes, dest, tag)
    }
}

impl<'a, T> SendReclaim for SendBuf<Serialized<'a, T>> {
    type Back = ();
    fn reclaim(self) {}
}

// --- recv ------------------------------------------------------------------

impl<T: DeserializeOwned> RecvArgs<SerialMode>
    for ArgSet<
        Absent,
        Absent,
        RecvBuf<Deserializable<T>, NoResize>,
        Absent,
        Absent,
        Absent,
        Absent,
        Absent,
    >
{
    type Output = T;

    fn run(self, comm: &Communicator) -> Result<T> {
        let src = self.meta.source.unwrap_or(kmp_mpi::Src::Any);
        let tag = self
            .meta
            .tag
            .map(kmp_mpi::TagSel::Is)
            .unwrap_or(kmp_mpi::TagSel::Any);
        let (bytes, _status) = comm.raw().recv_bytes(src, tag)?;
        kmp_serialize::from_bytes(&bytes).map_err(de_err)
    }
}

// --- bcast -----------------------------------------------------------------

/// Serialized broadcast (Fig. 11): the root serializes the object, other
/// ranks deserialize the broadcast bytes into their object in place.
impl Communicator {
    /// Broadcasts a serde-serializable object from the root, replacing
    /// hand-written serialize/size-exchange/deserialize layers (the
    /// RAxML-NG example of §IV-C).
    pub fn bcast_serialized<T, A>(&self, args: A) -> Result<()>
    where
        T: Serialize + DeserializeOwned,
        A: crate::params::argset::IntoArgs,
        A::Out: BcastSerializedArgs<T>,
    {
        args.into_args().run(self)
    }
}

/// Valid argument sets for [`Communicator::bcast_serialized`].
pub trait BcastSerializedArgs<T> {
    /// Executes the broadcast.
    fn run(self, comm: &Communicator) -> Result<()>;
}

impl<'a, T: Serialize + DeserializeOwned> BcastSerializedArgs<T>
    for ArgSet<
        Absent,
        SendRecvBuf<SerializedInout<'a, T>>,
        Absent,
        Absent,
        Absent,
        Absent,
        Absent,
        Absent,
    >
{
    fn run(self, comm: &Communicator) -> Result<()> {
        let root = self.meta.root.unwrap_or(0);
        let raw = comm.raw();
        let target = self.send_recv_buf.0 .0;
        if comm.rank() == root {
            let bytes = kmp_serialize::to_bytes(&*target).map_err(ser_err)?;
            raw.bcast_vec(Some(&bytes), root)?;
        } else {
            let bytes: Vec<u8> = raw.bcast_vec(None, root)?;
            *target = kmp_serialize::from_bytes(&bytes).map_err(de_err)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use kmp_mpi::Universe;
    use std::collections::BTreeMap;

    #[test]
    fn serialized_send_recv_dict() {
        // The std::unordered_map example of Fig. 5.
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                let mut dict: BTreeMap<String, String> = BTreeMap::new();
                dict.insert("alpha".into(), "1".into());
                dict.insert("beta".into(), "2".into());
                comm.send((send_buf(as_serialized(&dict)), destination(1)))
                    .unwrap();
            } else {
                let dict: BTreeMap<String, String> = comm
                    .recv((recv_buf(as_deserializable()), source(0)))
                    .unwrap();
                assert_eq!(dict.len(), 2);
                assert_eq!(dict["alpha"], "1");
                assert_eq!(dict["beta"], "2");
            }
        });
    }

    #[test]
    fn serialized_custom_struct() {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Model {
            name: String,
            rates: Vec<f64>,
        }
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 1 {
                let m = Model {
                    name: "GTR".into(),
                    rates: vec![0.1, 0.2],
                };
                comm.send((send_buf(as_serialized(&m)), destination(0), tag(3)))
                    .unwrap();
            } else {
                let m: Model = comm
                    .recv((recv_buf(as_deserializable()), source(1), tag(3)))
                    .unwrap();
                assert_eq!(
                    m,
                    Model {
                        name: "GTR".into(),
                        rates: vec![0.1, 0.2]
                    }
                );
            }
        });
    }

    #[test]
    fn bcast_serialized_inout() {
        // Fig. 11: comm.bcast(send_recv_buf(as_serialized(obj))).
        Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mut obj: Vec<String> = if comm.rank() == 0 {
                vec!["tree".into(), "model".into()]
            } else {
                Vec::new()
            };
            comm.bcast_serialized::<Vec<String>, _>(
                (send_recv_buf(as_serialized_inout(&mut obj)),),
            )
            .unwrap();
            assert_eq!(obj, vec!["tree".to_string(), "model".to_string()]);
        });
    }

    #[test]
    fn serialization_failure_reports_error() {
        // Deserializing into a mismatched type yields a clean error, not
        // a panic.
        Universe::run(2, |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                comm.send((send_buf(as_serialized(&42u8)), destination(1)))
                    .unwrap();
            } else {
                let r: kmp_mpi::Result<Vec<u64>> =
                    comm.recv((recv_buf(as_deserializable()), source(0)));
                assert!(r.is_err());
            }
        });
    }
}
