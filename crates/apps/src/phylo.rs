//! Phylogenetic-likelihood proxy for the RAxML-NG integration (§IV-C).
//!
//! RAxML-NG drives its MPI communication through a custom abstraction
//! layer (700+ LoC) whose core is a broadcast of serialized model state
//! (Fig. 11) plus per-iteration log-likelihood reductions at a rate of
//! ~700 MPI calls per second. The paper replaces the layer's MPI side
//! with kamping and verifies: no measurable runtime overhead, one-line
//! broadcast instead of hand-written serialize/size/broadcast/deserialize
//! logic.
//!
//! This module reproduces that experiment's communication pattern with a
//! synthetic maximum-likelihood kernel: sites are distributed across
//! ranks, each iteration evaluates per-site log-likelihoods locally,
//! reduces them globally, and periodically broadcasts updated model
//! state — once through a hand-written "BinaryStream" layer (the
//! *before* of Fig. 11) and once through kamping serialization (the
//! *after*).

use kmp_mpi::{Comm, Result};
use serde::{Deserialize, Serialize};

use kamping::prelude::*;

/// Evolutionary model state, the object RAxML-NG broadcasts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Model {
    pub name: String,
    pub branch_lengths: Vec<f64>,
    pub substitution_rates: Vec<f64>,
    pub alpha: f64,
}

impl Model {
    pub fn initial(branches: usize) -> Self {
        Model {
            name: "GTR+G".to_string(),
            branch_lengths: vec![0.1; branches],
            substitution_rates: vec![1.0; 6],
            alpha: 0.5,
        }
    }

    /// A deterministic "optimization step" for the benchmark loop.
    pub fn perturb(&mut self, iteration: u64) {
        let f = 1.0 + 1e-3 * ((iteration % 7) as f64 - 3.0);
        for b in &mut self.branch_lengths {
            *b *= f;
        }
        self.alpha = 0.5 + 0.01 * (iteration % 11) as f64;
    }
}

/// Per-site log-likelihood (synthetic but deterministic in the model).
fn site_loglik(site: u64, model: &Model) -> f64 {
    let x = (site % 97) as f64 * 1e-2;
    let rate = model.substitution_rates[(site % 6) as usize];
    let b = model.branch_lengths[(site as usize) % model.branch_lengths.len()];
    -((x + rate * b).ln_1p() + model.alpha * x)
}

/// Local log-likelihood over this rank's site range.
pub fn local_loglik(sites: std::ops::Range<u64>, model: &Model) -> f64 {
    sites.map(|s| site_loglik(s, model)).sum()
}

// ---------------------------------------------------------------------------
// The "before": RAxML-NG's hand-written abstraction layer
// ---------------------------------------------------------------------------

/// The hand-written `BinaryStream` serialization of the original layer
/// (Fig. 11 "before"): explicit size exchange + manual byte packing.
pub mod custom_layer {
    use super::*;

    /// Manual byte packing of [`Model`] (the BinaryStream role).
    pub fn serialize(model: &Model) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(model.name.len() as u64).to_le_bytes());
        out.extend_from_slice(model.name.as_bytes());
        out.extend_from_slice(&(model.branch_lengths.len() as u64).to_le_bytes());
        for b in &model.branch_lengths {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out.extend_from_slice(&(model.substitution_rates.len() as u64).to_le_bytes());
        for r in &model.substitution_rates {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out.extend_from_slice(&model.alpha.to_le_bytes());
        out
    }

    /// Manual unpacking; panics on malformed input (as the original
    /// effectively does).
    pub fn deserialize(bytes: &[u8]) -> Model {
        let mut pos = 0usize;
        let mut take = |n: usize| {
            let s = &bytes[pos..pos + n];
            pos += n;
            s
        };
        let name_len = u64::from_le_bytes(take(8).try_into().unwrap()) as usize;
        let name = String::from_utf8(take(name_len).to_vec()).unwrap();
        let bl_len = u64::from_le_bytes(take(8).try_into().unwrap()) as usize;
        let branch_lengths = (0..bl_len)
            .map(|_| f64::from_le_bytes(take(8).try_into().unwrap()))
            .collect();
        let sr_len = u64::from_le_bytes(take(8).try_into().unwrap()) as usize;
        let substitution_rates = (0..sr_len)
            .map(|_| f64::from_le_bytes(take(8).try_into().unwrap()))
            .collect();
        let alpha = f64::from_le_bytes(take(8).try_into().unwrap());
        Model {
            name,
            branch_lengths,
            substitution_rates,
            alpha,
        }
    }

    /// The original `mpi_broadcast`: size first, then payload (two
    /// broadcasts), then deserialize on non-masters.
    pub fn mpi_broadcast(model: &mut Model, comm: &Comm) -> Result<()> {
        if comm.size() > 1 {
            let bytes = if comm.rank() == 0 {
                serialize(model)
            } else {
                Vec::new()
            };
            let mut size = [bytes.len() as u64];
            comm.bcast_into(&mut size, 0)?;
            let mut buf = bytes;
            buf.resize(size[0] as usize, 0);
            comm.bcast_into(&mut buf, 0)?;
            if comm.rank() != 0 {
                *model = deserialize(&buf);
            }
        }
        Ok(())
    }
}

/// The "after" (Fig. 11): kamping provides all required functionality.
pub fn kamping_broadcast(model: &mut Model, comm: &Communicator) -> Result<()> {
    if comm.size() > 1 {
        comm.bcast_serialized::<Model, _>((send_recv_buf(as_serialized_inout(model)),))?;
    }
    Ok(())
}

/// One optimization run: `iterations` rounds of (perturb at master →
/// broadcast model → local likelihood → allreduce), through the custom
/// layer. Returns the final global log-likelihood.
pub fn run_custom_layer(sites_per_rank: u64, iterations: u64, comm: &Comm) -> Result<f64> {
    let rank = comm.rank() as u64;
    let range = rank * sites_per_rank..(rank + 1) * sites_per_rank;
    let mut model = Model::initial(16);
    let mut global_ll = 0.0;
    for it in 0..iterations {
        if comm.rank() == 0 {
            model.perturb(it);
        }
        custom_layer::mpi_broadcast(&mut model, comm)?;
        let local = local_loglik(range.clone(), &model);
        let mut out = [0.0f64];
        comm.allreduce_into(&[local], &mut out, kmp_mpi::op::Sum)?;
        global_ll = out[0];
    }
    Ok(global_ll)
}

/// The same run through kamping. Byte-identical results are expected:
/// both variants reduce the same values in the same order.
pub fn run_kamping(sites_per_rank: u64, iterations: u64, comm: &Communicator) -> Result<f64> {
    let rank = comm.rank() as u64;
    let range = rank * sites_per_rank..(rank + 1) * sites_per_rank;
    let mut model = Model::initial(16);
    let mut global_ll = 0.0;
    for it in 0..iterations {
        if comm.rank() == 0 {
            model.perturb(it);
        }
        kamping_broadcast(&mut model, comm)?;
        let local = local_loglik(range.clone(), &model);
        let out: Vec<f64> = comm.allreduce((send_buf(&[local]), op(ops::Sum)))?;
        global_ll = out[0];
    }
    Ok(global_ll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;

    #[test]
    fn manual_serialization_roundtrip() {
        let mut m = Model::initial(8);
        m.perturb(3);
        let bytes = custom_layer::serialize(&m);
        assert_eq!(custom_layer::deserialize(&bytes), m);
    }

    #[test]
    fn both_broadcasts_agree() {
        Universe::run(3, |comm| {
            let mut a = if comm.rank() == 0 {
                let mut m = Model::initial(4);
                m.perturb(5);
                m
            } else {
                Model::initial(1)
            };
            let mut b = a.clone();
            custom_layer::mpi_broadcast(&mut a, &comm).unwrap();
            let kc = Communicator::new(comm);
            kamping_broadcast(&mut b, &kc).unwrap();
            assert_eq!(a, b);
            assert_eq!(a.branch_lengths.len(), 4);
        });
    }

    #[test]
    fn runs_produce_identical_likelihoods() {
        // The §IV-C parity claim, sharpened: same reduction order =>
        // bit-identical results.
        Universe::run(4, |comm| {
            let a = run_custom_layer(500, 20, &comm).unwrap();
            let kc = Communicator::new(comm);
            let b = run_kamping(500, 20, &kc).unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
            assert!(a.is_finite());
        });
    }

    #[test]
    fn likelihood_changes_with_model() {
        let m1 = Model::initial(4);
        let mut m2 = Model::initial(4);
        m2.perturb(1);
        assert_ne!(local_loglik(0..100, &m1), local_loglik(0..100, &m2));
    }

    #[test]
    fn single_rank_run() {
        Universe::run(1, |comm| {
            let kc = Communicator::new(comm);
            let ll = run_kamping(100, 5, &kc).unwrap();
            assert!(ll.is_finite());
        });
    }
}
