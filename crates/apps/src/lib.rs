//! # kmp-apps — the paper's application benchmarks
//!
//! Every application of §IV, implemented against each binding layer the
//! paper compares (plain substrate "MPI", Boost.MPI-like, MPL-like,
//! RWTH-MPI-like, and kamping):
//!
//! - [`allgather_example`] — the "vector allgather" running example
//!   (Fig. 2/3, Table I row 1);
//! - [`sample_sort`] — textbook distributed sample sort (Fig. 7, Table I
//!   row 2, Fig. 8);
//! - [`bfs`] — distributed breadth-first search (Fig. 9, Table I row 3,
//!   Fig. 10) with pluggable frontier exchanges (dense, neighborhood,
//!   sparse NBX, 2D grid);
//! - [`suffix`] — suffix array construction by prefix doubling and DC3
//!   (§IV-A);
//! - [`label_prop`] — size-constrained label propagation, the dKaMinPar
//!   component of §IV-B, in three abstraction styles;
//! - [`phylo`] — a phylogenetic-likelihood-style kernel reproducing the
//!   RAxML-NG integration experiment of §IV-C.
//!
//! The per-binding implementations are deliberately formatted alike and
//! share their non-communication helpers, exactly like the paper's
//! artifacts; `// loc:begin`/`// loc:end` markers delimit the regions the
//! Table I harness counts.

pub mod allgather_example;
pub mod bfs;
pub mod label_prop;
pub mod phylo;
pub mod sample_sort;
pub mod suffix;

/// Line-of-code accounting for Table I: counts non-empty, non-comment
/// lines between `// loc:begin:<id>` and `// loc:end:<id>` markers in
/// the given source text.
pub fn count_loc(source: &str, id: &str) -> usize {
    let begin = format!("// loc:begin:{id}");
    let end = format!("// loc:end:{id}");
    let mut counting = false;
    let mut count = 0;
    for line in source.lines() {
        let t = line.trim();
        if t == begin {
            counting = true;
            continue;
        }
        if t == end {
            counting = false;
            continue;
        }
        if counting && !t.is_empty() && !t.starts_with("//") {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    #[test]
    fn loc_counter_counts_code_only() {
        let src = "\
fn unrelated() {}
// loc:begin:x
let a = 1;

// a comment
let b = 2;
// loc:end:x
let c = 3;
";
        assert_eq!(super::count_loc(src, "x"), 2);
        assert_eq!(super::count_loc(src, "missing"), 0);
    }
}
