//! Distributed sample sort (§IV-A, Fig. 7, Table I row 2, Fig. 8).
//!
//! The textbook algorithm: draw `16 log2(p) + 1` local samples, gather
//! them everywhere, pick `p-1` splitters, route each element to the
//! bucket rank, sort locally. As in the paper, "all shared parts of the
//! code have been extracted to functions" — the variants differ exactly
//! in their communication calls.

use kmp_baselines::{boost_like, mpl_like, rwth_like};
use kmp_mpi::{Comm, Plain, Result};
use rand::prelude::*;

use kamping::prelude::*;

/// Number of local samples (paper: `16 * log2(p) + 1`).
pub fn num_samples(p: usize) -> usize {
    16 * (p.max(2)).ilog2() as usize + 1
}

/// Draws deterministic random samples from the local data.
pub fn draw_samples<T: Plain>(data: &[T], count: usize, seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count.min(data.len()))
        .map(|_| data[rng.random_range(0..data.len())])
        .collect()
}

/// Picks `p - 1` evenly spaced splitters from the sorted global samples.
#[allow(clippy::ptr_arg, clippy::multiple_bound_locations)] // sorts the samples in place
pub fn pick_splitters<T: Plain>(gsamples: &mut Vec<T>, p: usize) -> Vec<T>
where
    T: Ord,
{
    gsamples.sort_unstable();
    if gsamples.is_empty() {
        return Vec::new();
    }
    (1..p).map(|i| gsamples[(i * gsamples.len()) / p]).collect()
}

/// Sorts the local data and computes per-bucket send counts (bucket `i`
/// gets values in `(splitters[i-1], splitters[i]]`).
pub fn build_buckets<T: Plain + Ord>(data: &mut [T], splitters: &[T], p: usize) -> Vec<usize> {
    data.sort_unstable();
    let mut counts = vec![0usize; p];
    for v in data.iter() {
        counts[splitters.partition_point(|s| s < v)] += 1;
    }
    counts
}

/// Plain substrate ("MPI") version: every exchange written out, counts
/// transposed by hand (the 32-LoC column of Table I).
pub fn sample_sort_mpi<T: Plain + Ord>(data: &mut Vec<T>, comm: &Comm) -> Result<()> {
    // loc:begin:sort_mpi
    let p = comm.size();
    let rank = comm.rank();
    let s = num_samples(p);
    let lsamples = draw_samples(data, s, rank as u64);
    let mut padded = lsamples.clone();
    padded.resize(s, *data.first().unwrap_or(&kmp_mpi::plain::zeroed()));
    let mut gsamples = vec![kmp_mpi::plain::zeroed::<T>(); s * p];
    comm.allgather_into(&padded, &mut gsamples)?;
    let splitters = pick_splitters(&mut gsamples, p);
    let scounts = build_buckets(data, &splitters, p);
    let sdispls = kmp_mpi::collectives::displacements_from_counts(&scounts);
    let mut rcounts = vec![0usize; p];
    comm.alltoall_into(&scounts, &mut rcounts)?;
    let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
    let total: usize = rcounts.iter().sum();
    let mut recv = vec![kmp_mpi::plain::zeroed::<T>(); total];
    comm.alltoallv_into(data, &scounts, &sdispls, &mut recv, &rcounts, &rdispls)?;
    recv.sort_unstable();
    *data = recv;
    Ok(())
    // loc:end:sort_mpi
}

/// Boost.MPI-style version: gathers hide counts, but there is no
/// alltoallv binding — the exchange is hand-rolled (Table I: 30 LoC).
pub fn sample_sort_boost<T: Plain + Ord>(data: &mut Vec<T>, comm: &Comm) -> Result<()> {
    // loc:begin:sort_boost
    let c = boost_like::BoostComm::new(comm);
    let p = c.size();
    let lsamples = draw_samples(data, num_samples(p), c.rank() as u64);
    let mut gsamples = Vec::new();
    boost_like::all_gatherv(&c, &lsamples, &mut gsamples)?;
    let splitters = pick_splitters(&mut gsamples, p);
    let scounts = build_buckets(data, &splitters, p);
    // Boost.MPI has no alltoallv binding: hand-roll the exchange
    // (receives size themselves, as Boost's serialization does).
    let displs = kmp_mpi::collectives::displacements_from_counts(&scounts);
    for dest in 0..p {
        boost_like::send(
            &c,
            dest,
            0,
            &data[displs[dest]..displs[dest] + scounts[dest]],
        )?;
    }
    let mut recv: Vec<T> = Vec::new();
    let mut block = Vec::new();
    for src in 0..p {
        boost_like::recv(&c, src, 0, &mut block)?;
        recv.append(&mut block);
    }
    recv.sort_unstable();
    *data = recv;
    Ok(())
    // loc:end:sort_boost
}

/// RWTH-MPI-style version: convenience overloads for the gathers, but the
/// v-exchange still needs explicit counts and displacements (21 LoC).
pub fn sample_sort_rwth<T: Plain + Ord>(data: &mut Vec<T>, comm: &Comm) -> Result<()> {
    // loc:begin:sort_rwth
    let c = rwth_like::RwthComm::new(comm);
    let p = c.size();
    let s = num_samples(p);
    let mut padded = draw_samples(data, s, c.rank() as u64);
    padded.resize(s, *data.first().unwrap_or(&kmp_mpi::plain::zeroed()));
    let mut gsamples = Vec::new();
    c.all_gather(&padded, &mut gsamples)?;
    let splitters = pick_splitters(&mut gsamples, p);
    let scounts = build_buckets(data, &splitters, p);
    let sdispls = kmp_mpi::collectives::displacements_from_counts(&scounts);
    let mut rcounts = vec![0usize; p];
    c.all_to_all(&scounts, &mut rcounts)?;
    let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
    let mut recv = vec![kmp_mpi::plain::zeroed::<T>(); rcounts.iter().sum()];
    c.all_to_all_varying(data, &scounts, &sdispls, &mut recv, &rcounts, &rdispls)?;
    recv.sort_unstable();
    *data = recv;
    Ok(())
    // loc:end:sort_rwth
}

/// MPL-style version: every buffer needs a layout object; the exchange
/// routes through the alltoallw-equivalent path (37 LoC — the longest).
pub fn sample_sort_mpl<T: Plain + Ord>(data: &mut Vec<T>, comm: &Comm) -> Result<()> {
    // loc:begin:sort_mpl
    let c = mpl_like::MplComm::new(comm);
    let p = c.size();
    let s = num_samples(p);
    let mut padded = draw_samples(data, s, c.rank() as u64);
    padded.resize(s, *data.first().unwrap_or(&kmp_mpi::plain::zeroed()));
    let sample_layout = mpl_like::ContiguousLayout::new(s);
    let mut gsamples = vec![kmp_mpi::plain::zeroed::<T>(); s * p];
    c.allgather(&padded, sample_layout, &mut gsamples)?;
    let splitters = pick_splitters(&mut gsamples, p);
    let scounts = build_buckets(data, &splitters, p);
    let unit = mpl_like::Layouts::from_counts(&vec![1usize; p]);
    let mut rcounts = vec![0usize; p];
    let count_layouts = mpl_like::Layouts::from_counts(&vec![1usize; p]);
    c.alltoallv(&scounts, &unit, &mut rcounts, &count_layouts)?;
    let send_layouts = mpl_like::Layouts::from_counts(&scounts);
    let recv_layouts = mpl_like::Layouts::from_counts(&rcounts);
    let mut recv = vec![kmp_mpi::plain::zeroed::<T>(); rcounts.iter().sum()];
    c.alltoallv(data, &send_layouts, &mut recv, &recv_layouts)?;
    recv.sort_unstable();
    *data = recv;
    Ok(())
    // loc:end:sort_mpl
}

/// kamping version: Fig. 7 — receive counts and all displacements are
/// inferred (16 LoC).
pub fn sample_sort_kamping<T: Plain + Ord>(data: &mut Vec<T>, comm: &Communicator) -> Result<()> {
    // loc:begin:sort_kamping
    let p = comm.size();
    let s = num_samples(p);
    let mut lsamples = draw_samples(data, s, comm.rank() as u64);
    lsamples.resize(s, *data.first().unwrap_or(&kmp_mpi::plain::zeroed()));
    let mut gsamples = comm.allgather(send_buf(&lsamples))?;
    let splitters = pick_splitters(&mut gsamples, p);
    let scounts = build_buckets(data, &splitters, p);
    let moved = std::mem::take(data);
    let mut recv: Vec<T> = comm.alltoallv((send_buf(moved), send_counts(scounts)))?;
    recv.sort_unstable();
    *data = recv;
    Ok(())
    // loc:end:sort_kamping
}

/// Source text of this module (for the Table I harness).
pub const SOURCE: &str = include_str!("sample_sort.rs");

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;

    fn gen_input(rank: usize, n: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(1000 + rank as u64);
        (0..n).map(|_| rng.random()).collect()
    }

    fn check(outputs: Vec<Vec<u64>>, p: usize, n: usize) {
        let mut expected: Vec<u64> = (0..p).flat_map(|r| gen_input(r, n)).collect();
        expected.sort_unstable();
        let got: Vec<u64> = outputs.iter().flatten().copied().collect();
        assert_eq!(got, expected, "concatenation must be globally sorted");
        for run in &outputs {
            assert!(run.is_sorted());
        }
    }

    #[test]
    fn mpi_variant_sorts() {
        let (p, n) = (4, 300);
        let out = Universe::run(p, |comm| {
            let mut data = gen_input(comm.rank(), n);
            sample_sort_mpi(&mut data, &comm).unwrap();
            data
        });
        check(out, p, n);
    }

    #[test]
    fn boost_variant_sorts() {
        let (p, n) = (4, 300);
        let out = Universe::run(p, |comm| {
            let mut data = gen_input(comm.rank(), n);
            sample_sort_boost(&mut data, &comm).unwrap();
            data
        });
        check(out, p, n);
    }

    #[test]
    fn rwth_variant_sorts() {
        let (p, n) = (4, 300);
        let out = Universe::run(p, |comm| {
            let mut data = gen_input(comm.rank(), n);
            sample_sort_rwth(&mut data, &comm).unwrap();
            data
        });
        check(out, p, n);
    }

    #[test]
    fn mpl_variant_sorts() {
        let (p, n) = (4, 300);
        let out = Universe::run(p, |comm| {
            let mut data = gen_input(comm.rank(), n);
            sample_sort_mpl(&mut data, &comm).unwrap();
            data
        });
        check(out, p, n);
    }

    #[test]
    fn kamping_variant_sorts() {
        let (p, n) = (4, 300);
        let out = Universe::run(p, |comm| {
            let comm = Communicator::new(comm);
            let mut data = gen_input(comm.rank(), n);
            sample_sort_kamping(&mut data, &comm).unwrap();
            data
        });
        check(out, p, n);
    }

    #[test]
    fn variants_agree_elementwise() {
        let (p, n) = (3, 200);
        let out = Universe::run(p, |comm| {
            let mut a = gen_input(comm.rank(), n);
            let mut b = a.clone();
            sample_sort_mpi(&mut a, &comm).unwrap();
            let kc = Communicator::new(comm);
            sample_sort_kamping(&mut b, &kc).unwrap();
            (a, b)
        });
        // Same splitters (same seeds) => identical per-rank buckets.
        for (a, b) in out {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn loc_ordering_matches_table1() {
        // Table I: MPI 32, Boost 30, RWTH 21, MPL 37, KaMPIng 16.
        let mpi = crate::count_loc(SOURCE, "sort_mpi");
        let boost = crate::count_loc(SOURCE, "sort_boost");
        let rwth = crate::count_loc(SOURCE, "sort_rwth");
        let mpl = crate::count_loc(SOURCE, "sort_mpl");
        let kamping = crate::count_loc(SOURCE, "sort_kamping");
        // Robust orderings (see EXPERIMENTS.md for the one deviation:
        // in C, plain MPI is more verbose than Boost; our Rust substrate
        // is already slightly ergonomic, so boost's hand-rolled exchange
        // lands above it).
        assert!(kamping < rwth, "kamping ({kamping}) < rwth ({rwth})");
        assert!(rwth < boost, "rwth ({rwth}) < boost ({boost})");
        assert!(rwth < mpi, "rwth ({rwth}) < mpi ({mpi})");
        // Paper ratio: 16/32 = 0.5; our rendering lands near 12/20.
        assert!(
            kamping * 3 <= mpi * 2,
            "kamping ({kamping}) well below mpi ({mpi})"
        );
        let _ = mpl;
    }

    #[test]
    fn empty_rank_input() {
        let out = Universe::run(3, |comm| {
            let comm = Communicator::new(comm);
            let mut data: Vec<u64> = if comm.rank() == 1 {
                vec![]
            } else {
                gen_input(comm.rank(), 50)
            };
            sample_sort_kamping(&mut data, &comm).unwrap();
            data
        });
        let mut expected: Vec<u64> = [0usize, 2].iter().flat_map(|&r| gen_input(r, 50)).collect();
        expected.sort_unstable();
        let got: Vec<u64> = out.iter().flatten().copied().collect();
        assert_eq!(got, expected);
    }
}
