//! Distributed breadth-first search (§IV-B, Fig. 9, Table I row 3,
//! Fig. 10).
//!
//! The graph is distributed as in [`kmp_graphgen::DistGraph`]; each BFS
//! level expands the local frontier and exchanges the next frontier's
//! vertices with their owner ranks. The paper's Fig. 10 compares five
//! strategies for that exchange:
//!
//! - dense `MPI_Alltoallv` (plain substrate and kamping),
//! - `MPI_Neighbor_alltoallv` on a pre-built graph topology,
//! - kamping's **sparse** (NBX) plugin,
//! - kamping's **grid** plugin.
//!
//! As in the paper, "the implementations only differ for the frontier
//! exchange and completion logic" — everything else is shared.

use std::collections::HashMap;

use kmp_baselines::{boost_like, mpl_like, rwth_like};
use kmp_graphgen::DistGraph;
use kmp_mpi::{Comm, Rank, Result};

use kamping::prelude::*;

/// Vertex id (global).
pub type VId = u64;
/// Distance marker for unreached vertices.
pub const UNDEF: u64 = u64::MAX;

/// Expands the current frontier: marks newly visited local vertices with
/// `level` and buckets their neighbours by owner rank. Shared by every
/// variant (the paper extracts exactly this part).
pub fn expand_frontier(
    g: &DistGraph,
    frontier: &[VId],
    dist: &mut [u64],
    level: u64,
) -> HashMap<Rank, Vec<VId>> {
    let mut next: HashMap<Rank, Vec<VId>> = HashMap::new();
    for &v in frontier {
        debug_assert!(g.is_local(v));
        let li = g.local_index(v);
        if dist[li] != UNDEF {
            continue;
        }
        dist[li] = level;
        for &u in g.neighbors(li) {
            next.entry(g.owner(u)).or_default().push(u);
        }
    }
    next
}

/// Plain substrate ("MPI") BFS: counts flattened, transposed and
/// exchanged by hand every level (Table I: 46 LoC).
#[allow(clippy::needless_range_loop)] // counts and payload are built in rank order
pub fn bfs_mpi(g: &DistGraph, source: VId, comm: &Comm) -> Result<Vec<u64>> {
    // loc:begin:bfs_mpi
    let p = comm.size();
    let mut dist = vec![UNDEF; g.local_n()];
    let mut frontier: Vec<VId> = Vec::new();
    if g.is_local(source) {
        frontier.push(source);
    }
    let mut level = 0u64;
    loop {
        let empty = [u8::from(frontier.is_empty())];
        let mut all_empty = [0u8];
        comm.allreduce_into(&empty, &mut all_empty, kmp_mpi::op::LogicalAnd)?;
        if all_empty[0] != 0 {
            break;
        }
        let next = expand_frontier(g, &frontier, &mut dist, level);
        let mut scounts = vec![0usize; p];
        let mut data: Vec<VId> = Vec::new();
        for r in 0..p {
            if let Some(msgs) = next.get(&r) {
                scounts[r] = msgs.len();
                data.extend_from_slice(msgs);
            }
        }
        let sdispls = kmp_mpi::collectives::displacements_from_counts(&scounts);
        let mut rcounts = vec![0usize; p];
        comm.alltoall_into(&scounts, &mut rcounts)?;
        let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
        let mut recv = vec![0u64; rcounts.iter().sum()];
        comm.alltoallv_into(&data, &scounts, &sdispls, &mut recv, &rcounts, &rdispls)?;
        frontier = recv;
        level += 1;
    }
    Ok(dist)
    // loc:end:bfs_mpi
}

/// kamping BFS (Fig. 9): `with_flattened` + `alltoallv` with inferred
/// receive side, `allreduce_single` for termination (22 LoC).
pub fn bfs_kamping(g: &DistGraph, source: VId, comm: &Communicator) -> Result<Vec<u64>> {
    // loc:begin:bfs_kamping
    let mut dist = vec![UNDEF; g.local_n()];
    let mut frontier: Vec<VId> = Vec::new();
    if g.is_local(source) {
        frontier.push(source);
    }
    let mut level = 0u64;
    loop {
        let empty = u8::from(frontier.is_empty());
        let done = comm.allreduce_single((send_buf(&[empty]), op(ops::LogicalAnd)))?;
        if done != 0 {
            break;
        }
        let next = expand_frontier(g, &frontier, &mut dist, level);
        frontier = with_flattened(next, comm.size(), |data, counts| {
            comm.alltoallv((send_buf(data), send_counts(counts)))
        })?;
        level += 1;
    }
    Ok(dist)
    // loc:end:bfs_kamping
}

/// Splits the next-frontier buckets into the self-destined block and a
/// packed per-peer payload in `peers` order (the layout every
/// neighborhood exchange consumes).
fn pack_by_peers<T: Copy>(
    peers: &[Rank],
    own_rank: Rank,
    mut next: HashMap<Rank, Vec<T>>,
) -> (Vec<T>, Vec<T>, Vec<usize>) {
    let own = next.remove(&own_rank).unwrap_or_default();
    let mut counts = Vec::with_capacity(peers.len());
    let mut data: Vec<T> = Vec::new();
    for r in peers {
        let block = next.remove(r).unwrap_or_default();
        counts.push(block.len());
        data.extend_from_slice(&block);
    }
    debug_assert!(
        next.is_empty(),
        "message to a rank outside the communication graph"
    );
    (own, data, counts)
}

/// kamping BFS with **communication/computation overlap** via the
/// non-blocking collectives (§III-E extended to collectives), riding the
/// rank-communication graph's **neighborhood topology** instead of a
/// dense alltoallv:
///
/// - the level's termination check (`iallreduce`) is in flight while the
///   frontier is expanded — expansion is a no-op on an empty local
///   frontier, so running it before the global verdict is known is safe
///   (a non-empty local frontier already implies "not done");
/// - the next frontier travels over the generator's actual adjacency —
///   `ineighbor_alltoallv` posts exactly out-degree sends, O(degree)
///   envelopes instead of O(p), and block sizes are discovered from the
///   messages, so no count exchange happens at all;
/// - self-destined vertices never touch the wire: they merge locally
///   while the sparse exchange is in flight.
pub fn bfs_kamping_overlap(g: &DistGraph, source: VId, comm: &Communicator) -> Result<Vec<u64>> {
    // loc:begin:bfs_kamping_overlap
    let peers = comm_graph_peers(g);
    let topo = comm.create_dist_graph_adjacent(&peers, &peers)?;
    let mut dist = vec![UNDEF; g.local_n()];
    let mut frontier: Vec<VId> = Vec::new();
    if g.is_local(source) {
        frontier.push(source);
    }
    let mut level = 0u64;
    loop {
        let _lvl = kamping::trace_span("bfs_level");
        let empty = u8::from(frontier.is_empty());
        let done_fut = comm.iallreduce((send_buf(vec![empty]), op(ops::LogicalAnd)))?;
        // Overlap 1: expand the frontier while the reduction is in flight.
        let next = expand_frontier(g, &frontier, &mut dist, level);
        let (done, _) = done_fut.wait()?;
        if done[0] != 0 {
            break;
        }
        // Overlap 2: the sparse exchange is in flight while the local
        // vertices merge.
        let (own, data, counts) = pack_by_peers(&peers, comm.rank(), next);
        let exchange = topo.topology().ineighbor_alltoallv(&data, &counts)?;
        let mut merged = own; // local work under the in-flight exchange
        for block in exchange.wait()?.into_blocks().expect("blocks completion") {
            merged.extend_from_slice(&kmp_mpi::plain::bytes_to_vec::<VId>(&block));
        }
        frontier = merged;
        level += 1;
    }
    Ok(dist)
    // loc:end:bfs_kamping_overlap
}

/// Boost.MPI-style BFS: no alltoallv binding, the exchange is hand-rolled
/// (42 LoC).
#[allow(clippy::needless_range_loop)] // counts and payload are built in rank order
pub fn bfs_boost(g: &DistGraph, source: VId, comm: &Comm) -> Result<Vec<u64>> {
    // loc:begin:bfs_boost
    let c = boost_like::BoostComm::new(comm);
    let p = c.size();
    let mut dist = vec![UNDEF; g.local_n()];
    let mut frontier: Vec<VId> = Vec::new();
    if g.is_local(source) {
        frontier.push(source);
    }
    let mut level = 0u64;
    loop {
        let done =
            boost_like::all_reduce(&c, &u8::from(frontier.is_empty()), kmp_mpi::op::LogicalAnd)?;
        if done != 0 {
            break;
        }
        let next = expand_frontier(g, &frontier, &mut dist, level);
        let mut scounts = vec![0usize; p];
        let mut data: Vec<VId> = Vec::new();
        for r in 0..p {
            if let Some(msgs) = next.get(&r) {
                scounts[r] = msgs.len();
                data.extend_from_slice(msgs);
            }
        }
        // Boost.MPI has no alltoallv binding: hand-roll the exchange
        // (receives size themselves, as Boost's serialization does).
        let displs = kmp_mpi::collectives::displacements_from_counts(&scounts);
        for dest in 0..p {
            boost_like::send(
                &c,
                dest,
                0,
                &data[displs[dest]..displs[dest] + scounts[dest]],
            )?;
        }
        frontier = Vec::new();
        let mut block = Vec::new();
        for src in 0..p {
            boost_like::recv(&c, src, 0, &mut block)?;
            frontier.append(&mut block);
        }
        level += 1;
    }
    Ok(dist)
    // loc:end:bfs_boost
}

/// RWTH-MPI-style BFS: explicit counts/displacements every level (32 LoC).
#[allow(clippy::needless_range_loop)] // counts and payload are built in rank order
pub fn bfs_rwth(g: &DistGraph, source: VId, comm: &Comm) -> Result<Vec<u64>> {
    // loc:begin:bfs_rwth
    let c = rwth_like::RwthComm::new(comm);
    let p = c.size();
    let mut dist = vec![UNDEF; g.local_n()];
    let mut frontier: Vec<VId> = Vec::new();
    if g.is_local(source) {
        frontier.push(source);
    }
    let mut level = 0u64;
    loop {
        let done = c.all_reduce(u8::from(frontier.is_empty()), kmp_mpi::op::LogicalAnd)?;
        if done != 0 {
            break;
        }
        let next = expand_frontier(g, &frontier, &mut dist, level);
        let mut scounts = vec![0usize; p];
        let mut data: Vec<VId> = Vec::new();
        for r in 0..p {
            if let Some(msgs) = next.get(&r) {
                scounts[r] = msgs.len();
                data.extend_from_slice(msgs);
            }
        }
        let sdispls = kmp_mpi::collectives::displacements_from_counts(&scounts);
        let mut rcounts = vec![0usize; p];
        c.all_to_all(&scounts, &mut rcounts)?;
        let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
        let mut recv = vec![0u64; rcounts.iter().sum()];
        c.all_to_all_varying(&data, &scounts, &sdispls, &mut recv, &rcounts, &rdispls)?;
        frontier = recv;
        level += 1;
    }
    Ok(dist)
    // loc:end:bfs_rwth
}

/// MPL-style BFS: layouts for both sides of every exchange (49 LoC — the
/// longest, and the slowest due to the alltoallw-path v-collectives).
#[allow(clippy::needless_range_loop)] // counts and payload are built in rank order
pub fn bfs_mpl(g: &DistGraph, source: VId, comm: &Comm) -> Result<Vec<u64>> {
    // loc:begin:bfs_mpl
    let c = mpl_like::MplComm::new(comm);
    let p = c.size();
    let mut dist = vec![UNDEF; g.local_n()];
    let mut frontier: Vec<VId> = Vec::new();
    if g.is_local(source) {
        frontier.push(source);
    }
    let mut level = 0u64;
    loop {
        let mut done = [0u8];
        c.allreduce(
            &[u8::from(frontier.is_empty())],
            &mut done,
            kmp_mpi::op::LogicalAnd,
        )?;
        if done[0] != 0 {
            break;
        }
        let next = expand_frontier(g, &frontier, &mut dist, level);
        let mut scounts = vec![0usize; p];
        let mut data: Vec<VId> = Vec::new();
        for r in 0..p {
            if let Some(msgs) = next.get(&r) {
                scounts[r] = msgs.len();
                data.extend_from_slice(msgs);
            }
        }
        let unit = mpl_like::Layouts::from_counts(&vec![1usize; p]);
        let unit_recv = mpl_like::Layouts::from_counts(&vec![1usize; p]);
        let mut rcounts = vec![0usize; p];
        c.alltoallv(&scounts, &unit, &mut rcounts, &unit_recv)?;
        let send_layouts = mpl_like::Layouts::from_counts(&scounts);
        let recv_layouts = mpl_like::Layouts::from_counts(&rcounts);
        let mut recv = vec![0u64; rcounts.iter().sum()];
        c.alltoallv(&data, &send_layouts, &mut recv, &recv_layouts)?;
        frontier = recv;
        level += 1;
    }
    Ok(dist)
    // loc:end:bfs_mpl
}

/// The frontier-exchange strategies of Fig. 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exchange {
    /// Dense `alltoallv` through the substrate ("mpi" line).
    MpiDense,
    /// `neighbor_alltoallv` on a pre-built graph topology
    /// ("mpi_neighbor" line).
    MpiNeighbor,
    /// Dense `alltoallv` through kamping ("kamping" line).
    Kamping,
    /// kamping's sparse NBX plugin ("kamping sparse" line).
    KampingSparse,
    /// kamping's 2D grid plugin ("kamping grid" line).
    KampingGrid,
    /// Named-parameter `neighbor_alltoallv` on a kamping
    /// [`NeighborhoodCommunicator`] over the rank-communication graph
    /// ("kamping neighborhood" line): O(degree) envelopes, receive side
    /// inferred along the edges.
    KampingNeighbor,
    /// Neighborhood exchange with the topology re-built every level —
    /// the dynamic-pattern configuration the paper notes does not scale.
    MpiNeighborRebuild,
}

/// The rank-communication graph of `g`: ranks owning a neighbour of a
/// local vertex (symmetric for undirected graphs).
pub fn comm_graph_peers(g: &DistGraph) -> Vec<Rank> {
    let mut peers: Vec<Rank> = (0..g.vertex_ranges.len() - 1)
        .filter(|&r| {
            r != g.rank
                && g.iter_local()
                    .any(|(_, nbrs)| nbrs.iter().any(|&u| g.owner(u) == r))
        })
        .collect();
    peers.sort_unstable();
    peers
}

/// BFS with a selectable frontier exchange (the Fig. 10 harness).
pub fn bfs_with_exchange(
    g: &DistGraph,
    source: VId,
    comm: &Communicator,
    exchange: Exchange,
) -> Result<Vec<u64>> {
    let p = comm.size();
    let mut dist = vec![UNDEF; g.local_n()];
    let mut frontier: Vec<VId> = Vec::new();
    if g.is_local(source) {
        frontier.push(source);
    }

    // Strategy-specific one-time setup.
    let peers = comm_graph_peers(g);
    let topo = match exchange {
        Exchange::MpiNeighbor => Some(comm.raw().create_dist_graph_adjacent(&peers, &peers)?),
        _ => None,
    };
    let ktopo = match exchange {
        Exchange::KampingNeighbor => Some(comm.create_dist_graph_adjacent(&peers, &peers)?),
        _ => None,
    };
    let grid = match exchange {
        Exchange::KampingGrid => Some(comm.make_grid()?),
        _ => None,
    };

    let mut level = 0u64;
    loop {
        // One user span per BFS level: the whole Fig. 10 run renders as
        // a per-level timeline in the exported Chrome trace.
        let _lvl = kamping::trace_span("bfs_level");
        let empty = u8::from(frontier.is_empty());
        let done = comm.allreduce_single((send_buf(&[empty]), op(ops::LogicalAnd)))?;
        if done != 0 {
            break;
        }
        let next = expand_frontier(g, &frontier, &mut dist, level);
        frontier = match exchange {
            Exchange::MpiDense => with_flattened(next, p, |data, counts| {
                let sdispls = kmp_mpi::collectives::displacements_from_counts(&counts);
                let mut rcounts = vec![0usize; p];
                comm.raw().alltoall_into(&counts, &mut rcounts)?;
                let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
                let mut recv = vec![0u64; rcounts.iter().sum()];
                comm.raw()
                    .alltoallv_into(&data, &counts, &sdispls, &mut recv, &rcounts, &rdispls)?;
                Ok(recv)
            })?,
            Exchange::Kamping => with_flattened(next, p, |data, counts| {
                comm.alltoallv((send_buf(data), send_counts(counts)))
            })?,
            Exchange::KampingSparse => {
                let msgs: HashMap<Rank, Vec<VId>> = next;
                let received = comm.sparse_alltoallv(&msgs)?;
                received.into_iter().flat_map(|(_, v)| v).collect()
            }
            Exchange::KampingGrid => with_flattened(next, p, |data, counts| {
                grid.as_ref().expect("grid built").alltoallv(&data, &counts)
            })?,
            Exchange::MpiNeighbor => {
                neighbor_exchange(topo.as_ref().expect("topology built"), &peers, next)?
            }
            Exchange::KampingNeighbor => {
                let t = ktopo.as_ref().expect("topology built");
                let (own, data, counts) = pack_by_peers(&peers, comm.rank(), next);
                let mut got: Vec<VId> =
                    t.neighbor_alltoallv((send_buf(&data), send_counts(&counts)))?;
                let mut merged = own;
                merged.append(&mut got);
                merged
            }
            Exchange::MpiNeighborRebuild => {
                let topo = comm.raw().create_dist_graph_adjacent(&peers, &peers)?;
                neighbor_exchange(&topo, &peers, next)?
            }
        };
        level += 1;
    }
    Ok(dist)
}

fn neighbor_exchange(
    topo: &kmp_mpi::DistGraphComm,
    peers: &[Rank],
    mut next: HashMap<Rank, Vec<VId>>,
) -> Result<Vec<VId>> {
    // Self-messages do not travel through the topology.
    let own = next.remove(&topo.comm().rank()).unwrap_or_default();
    let send: Vec<Vec<VId>> = peers
        .iter()
        .map(|r| next.remove(r).unwrap_or_default())
        .collect();
    debug_assert!(
        next.is_empty(),
        "message to a rank outside the communication graph"
    );
    let received = topo.neighbor_alltoall_vecs(&send)?;
    let mut frontier = own;
    for block in received {
        frontier.extend_from_slice(&block);
    }
    Ok(frontier)
}

/// Fault-tolerant BFS: survives rank crashes mid-traversal by
/// shrink-and-continue (the ULFM recovery pattern of
/// [`kmp_mpi::ulfm`]).
///
/// The graph partition is a function of the membership — `generate(rank,
/// size)` builds this rank's partition for the *current* communicator —
/// because vertex ownership must be re-balanced over the survivors after
/// a failure. Each level runs as one fault-tolerant step: attempt the
/// termination check + expansion + dense exchange, **revoke on local
/// error**, then `agree_and` on success. On disagreement every survivor
/// shrinks and the traversal restarts from the source on the
/// re-partitioned graph (distances are membership-relative state, so a
/// level-granular checkpoint would be meaningless across a
/// re-partition). `on_level` is a per-level hook — the seam where tests
/// and the `fault_experiment` bench inject crashes
/// ([`Comm::fail_here`](kmp_mpi::Comm::fail_here) simply unwinds out of
/// it).
///
/// Returns this rank's distances for its *final* partition plus the
/// final (possibly shrunken) communicator, so the caller can stitch the
/// global result by the surviving membership.
pub fn bfs_ft(
    comm: Comm,
    source: VId,
    generate: impl Fn(usize, usize) -> DistGraph,
    mut on_level: impl FnMut(u64, &Comm),
) -> Result<(Vec<u64>, Comm)> {
    let mut active = comm;
    'restart: loop {
        let p = active.size();
        let g = generate(active.rank(), p);
        let mut dist = vec![UNDEF; g.local_n()];
        let mut frontier: Vec<VId> = Vec::new();
        if g.is_local(source) {
            frontier.push(source);
        }
        let mut level = 0u64;
        loop {
            // One fault-tolerant step: `None` means globally done.
            let r: Result<Option<Vec<VId>>> = (|| {
                on_level(level, &active);
                let empty = [u8::from(frontier.is_empty())];
                let mut all_empty = [0u8];
                active.allreduce_into(&empty, &mut all_empty, kmp_mpi::op::LogicalAnd)?;
                if all_empty[0] != 0 {
                    return Ok(None);
                }
                let next = expand_frontier(&g, &frontier, &mut dist, level);
                let mut scounts = vec![0usize; p];
                let mut data: Vec<VId> = Vec::new();
                for (rank, count) in scounts.iter_mut().enumerate() {
                    if let Some(msgs) = next.get(&rank) {
                        *count = msgs.len();
                        data.extend_from_slice(msgs);
                    }
                }
                let sdispls = kmp_mpi::collectives::displacements_from_counts(&scounts);
                let mut rcounts = vec![0usize; p];
                active.alltoall_into(&scounts, &mut rcounts)?;
                let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
                let mut recv = vec![0u64; rcounts.iter().sum()];
                active.alltoallv_into(&data, &scounts, &sdispls, &mut recv, &rcounts, &rdispls)?;
                Ok(Some(recv))
            })();
            // Canonical recovery: revoke on local error (a peer may be
            // parked on a live rank that errored — only revocation
            // reaches it), then agree; shrink together on disagreement.
            if r.is_err() && !active.is_revoked() {
                active.revoke();
            }
            if active.agree_and(r.is_ok()).unwrap_or(false) {
                match r.expect("agreed ok") {
                    None => return Ok((dist, active)),
                    Some(next) => {
                        frontier = next;
                        level += 1;
                    }
                }
            } else {
                if !active.is_revoked() {
                    active.revoke();
                }
                active = active.shrink()?;
                continue 'restart;
            }
        }
    }
}

/// Sequential reference BFS over the assembled global graph (for tests).
pub fn bfs_sequential(parts: &[DistGraph], source: VId) -> Vec<u64> {
    let n = parts[0].global_n;
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    for g in parts {
        for (u, nbrs) in g.iter_local() {
            adj[u as usize] = nbrs.to_vec();
        }
    }
    let mut dist = vec![UNDEF; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &u in &adj[v as usize] {
            if dist[u as usize] == UNDEF {
                dist[u as usize] = dist[v as usize] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Source text of this module (for the Table I harness).
pub const SOURCE: &str = include_str!("bfs.rs");

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_graphgen::{gnm, rgg2d, rhg};
    use kmp_mpi::Universe;

    fn check_bfs(
        parts: Vec<DistGraph>,
        run: impl Fn(&DistGraph, kmp_mpi::Comm) -> Vec<u64> + Sync,
    ) {
        let p = parts.len();
        let reference = bfs_sequential(&parts, 0);
        let out = Universe::run(p, |comm| {
            let g = &parts[comm.rank()];
            run(g, comm)
        });
        let mut got = vec![UNDEF; reference.len()];
        for (r, dists) in out.iter().enumerate() {
            let lo = parts[r].vertex_ranges[r];
            got[lo..lo + dists.len()].copy_from_slice(dists);
        }
        assert_eq!(got, reference);
    }

    fn gnm_parts(p: usize) -> Vec<DistGraph> {
        (0..p).map(|r| gnm(120, 480, 17, r, p)).collect()
    }

    #[test]
    fn mpi_variant_matches_sequential() {
        check_bfs(gnm_parts(4), |g, comm| bfs_mpi(g, 0, &comm).unwrap());
    }

    #[test]
    fn boost_variant_matches_sequential() {
        check_bfs(gnm_parts(4), |g, comm| bfs_boost(g, 0, &comm).unwrap());
    }

    #[test]
    fn rwth_variant_matches_sequential() {
        check_bfs(gnm_parts(4), |g, comm| bfs_rwth(g, 0, &comm).unwrap());
    }

    #[test]
    fn mpl_variant_matches_sequential() {
        check_bfs(gnm_parts(4), |g, comm| bfs_mpl(g, 0, &comm).unwrap());
    }

    #[test]
    fn kamping_variant_matches_sequential() {
        check_bfs(gnm_parts(4), |g, comm| {
            let c = Communicator::new(comm);
            bfs_kamping(g, 0, &c).unwrap()
        });
    }

    #[test]
    fn overlap_variant_matches_sequential() {
        check_bfs(gnm_parts(4), |g, comm| {
            let c = Communicator::new(comm);
            bfs_kamping_overlap(g, 0, &c).unwrap()
        });
    }

    #[test]
    fn overlap_variant_matches_on_all_families() {
        let p = 4;
        let graphs: Vec<Vec<DistGraph>> = vec![
            (0..p).map(|r| gnm(100, 400, 3, r, p)).collect(),
            (0..p).map(|r| rgg2d(150, 0.12, 3, r, p)).collect(),
            (0..p).map(|r| rhg(120, 8.0, 0.75, 3, r, p)).collect(),
        ];
        for parts in graphs {
            let reference = bfs_sequential(&parts, 0);
            let out = Universe::run(p, |comm| {
                let c = Communicator::new(comm);
                bfs_kamping_overlap(&parts[c.rank()], 0, &c).unwrap()
            });
            let mut got = vec![UNDEF; reference.len()];
            for (r, dists) in out.iter().enumerate() {
                let lo = parts[r].vertex_ranges[r];
                got[lo..lo + dists.len()].copy_from_slice(dists);
            }
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn all_exchanges_match_on_all_families() {
        let p = 4;
        let graphs: Vec<Vec<DistGraph>> = vec![
            (0..p).map(|r| gnm(100, 400, 3, r, p)).collect(),
            (0..p).map(|r| rgg2d(150, 0.12, 3, r, p)).collect(),
            (0..p).map(|r| rhg(120, 8.0, 0.75, 3, r, p)).collect(),
        ];
        for parts in graphs {
            let reference = bfs_sequential(&parts, 0);
            for ex in [
                Exchange::MpiDense,
                Exchange::MpiNeighbor,
                Exchange::Kamping,
                Exchange::KampingSparse,
                Exchange::KampingGrid,
                Exchange::KampingNeighbor,
                Exchange::MpiNeighborRebuild,
            ] {
                let out = Universe::run(p, |comm| {
                    let c = Communicator::new(comm);
                    bfs_with_exchange(&parts[c.rank()], 0, &c, ex).unwrap()
                });
                let mut got = vec![UNDEF; reference.len()];
                for (r, dists) in out.iter().enumerate() {
                    let lo = parts[r].vertex_ranges[r];
                    got[lo..lo + dists.len()].copy_from_slice(dists);
                }
                assert_eq!(got, reference, "exchange {ex:?} diverged");
            }
        }
    }

    #[test]
    fn ft_bfs_survives_crash_at_level_two() {
        let p = 4;
        // After the crash the survivors re-partition over 3 ranks, so
        // the oracle is the sequential BFS of the 3-way partitioning.
        let parts3: Vec<DistGraph> = (0..3).map(|r| gnm(120, 480, 17, r, 3)).collect();
        let reference = bfs_sequential(&parts3, 0);
        let out = kmp_mpi::Universe::run_with(kmp_mpi::Config::new(p), |comm| {
            let (dist, active) = bfs_ft(
                comm,
                0,
                |rank, size| gnm(120, 480, 17, rank, size),
                |level, c| {
                    if level == 2 && c.size() == 4 && c.rank() == 3 {
                        c.fail_here();
                    }
                },
            )
            .unwrap();
            (dist, active.rank(), active.size())
        });
        assert!(
            matches!(out[3], kmp_mpi::RankOutcome::Failed),
            "{:?}",
            out[3]
        );
        let mut got = vec![UNDEF; reference.len()];
        for (world_rank, o) in out.into_iter().enumerate() {
            if world_rank == 3 {
                continue;
            }
            match o {
                kmp_mpi::RankOutcome::Completed((dist, new_rank, new_size)) => {
                    assert_eq!(new_size, 3, "survivor {world_rank}");
                    let lo = parts3[new_rank].vertex_ranges[new_rank];
                    got[lo..lo + dist.len()].copy_from_slice(&dist);
                }
                o => panic!("survivor {world_rank} did not complete: {o:?}"),
            }
        }
        assert_eq!(got, reference, "survivors diverged from the oracle");
    }

    #[test]
    fn ft_bfs_fault_free_matches_sequential() {
        check_bfs(gnm_parts(4), |g, comm| {
            let _ = g;
            bfs_ft(
                comm,
                0,
                |rank, size| gnm(120, 480, 17, rank, size),
                |_, _| {},
            )
            .unwrap()
            .0
        });
    }

    #[test]
    fn unreachable_vertices_stay_undef() {
        // A graph with an isolated component: n=10, no edges at all.
        let p = 2;
        let parts: Vec<DistGraph> = (0..p).map(|r| gnm(10, 0, 1, r, p)).collect();
        let out = Universe::run(p, |comm| {
            let c = Communicator::new(comm);
            bfs_kamping(&parts[c.rank()], 0, &c).unwrap()
        });
        assert_eq!(out[0][0], 0, "source at distance 0");
        assert!(out[0][1..].iter().all(|&d| d == UNDEF));
        assert!(out[1].iter().all(|&d| d == UNDEF));
    }

    #[test]
    fn loc_ordering_matches_table1() {
        // Table I: MPI 46, Boost 42, RWTH 32, MPL 49, KaMPIng 22.
        let mpi = crate::count_loc(SOURCE, "bfs_mpi");
        let boost = crate::count_loc(SOURCE, "bfs_boost");
        let rwth = crate::count_loc(SOURCE, "bfs_rwth");
        let mpl = crate::count_loc(SOURCE, "bfs_mpl");
        let kamping = crate::count_loc(SOURCE, "bfs_kamping");
        // Robust orderings (see EXPERIMENTS.md for the boost/mpi
        // deviation explained in the sample-sort counterpart).
        assert!(kamping < rwth, "kamping ({kamping}) < rwth ({rwth})");
        assert!(rwth < boost, "rwth ({rwth}) < boost ({boost})");
        assert!(rwth <= mpi, "rwth ({rwth}) <= mpi ({mpi})");
        assert!(mpi <= mpl + 10, "mpi ({mpi}) in the mpl ({mpl}) ballpark");
        assert!(kamping * 3 <= mpl + mpi, "kamping clearly shortest");
    }
}
