//! Distributed suffix array construction (§IV-A).
//!
//! The paper implements two algorithms on kamping: DCX and **prefix
//! doubling** (Manber–Myers), reporting 163 LoC for kamping prefix
//! doubling against 426 LoC for an existing plain-MPI implementation.
//! This module implements distributed prefix doubling twice — against the
//! plain substrate and against kamping — sharing the non-communication
//! helpers, so the LoC ratio can be measured on this reproduction.
//!
//! Algorithm: suffixes are ranked by their first `h` characters; each
//! round sorts `(rank[i], rank[i+h], i)` triples globally (distributed
//! sample sort), re-ranks, and doubles `h` until all ranks are distinct.
//! The text is block-distributed; rank lookups at distance `h` and the
//! writeback of new ranks are personalized all-to-all exchanges.

use kmp_mpi::{plain_struct, Comm, Plain, Result};

use kamping::prelude::*;

/// A `(rank, next_rank, index)` triple; `Ord` is the lexicographic key
/// order the doubling sort needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PdTriple {
    pub r1: u64,
    pub r2: u64,
    pub idx: u64,
}
plain_struct!(PdTriple {
    r1: u64,
    r2: u64,
    idx: u64
});

/// An `(index, value)` pair used for rank writebacks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct IdxVal {
    pub idx: u64,
    pub val: u64,
}
plain_struct!(IdxVal { idx: u64, val: u64 });

/// Block partition of `n` text positions over `p` ranks.
pub fn blocks(n: usize, p: usize) -> Vec<usize> {
    (0..=p).map(|r| r * n / p).collect()
}

fn owner_of(ranges: &[usize], i: usize) -> usize {
    match ranges.binary_search(&i) {
        Ok(mut r) => {
            while ranges[r + 1] <= i {
                r += 1;
            }
            r
        }
        Err(r) => r - 1,
    }
}

/// Buckets `(idx, val)` pairs by the owner of `idx` and returns
/// `(flattened, counts)` in rank order.
pub fn bucket_by_owner(pairs: Vec<IdxVal>, ranges: &[usize]) -> (Vec<IdxVal>, Vec<usize>) {
    let p = ranges.len() - 1;
    let mut by_rank: Vec<Vec<IdxVal>> = vec![Vec::new(); p];
    for pr in pairs {
        by_rank[owner_of(ranges, pr.idx as usize)].push(pr);
    }
    let counts: Vec<usize> = by_rank.iter().map(Vec::len).collect();
    (by_rank.concat(), counts)
}

/// Initial ranks: the character values themselves (1-based so that 0 can
/// mean "past the end of the text").
pub fn initial_ranks(text_block: &[u8]) -> Vec<u64> {
    text_block.iter().map(|&c| c as u64 + 1).collect()
}

/// Local re-ranking helpers: marks where the `(r1, r2)` key changes in
/// the *sorted* triple run and counts distinct keys.
pub fn distinct_flags(sorted: &[PdTriple], prev_key: Option<(u64, u64)>) -> (Vec<u64>, u64) {
    let mut flags = Vec::with_capacity(sorted.len());
    let mut distinct = 0u64;
    let mut prev = prev_key;
    for t in sorted {
        let key = (t.r1, t.r2);
        let new = prev != Some(key);
        flags.push(u64::from(new));
        distinct += u64::from(new);
        prev = Some(key);
    }
    (flags, distinct)
}

/// Distributed prefix doubling against **kamping** (the 163-LoC column).
/// Returns this rank's block of the suffix array.
pub fn suffix_array_kamping(text_block: &[u8], n: usize, comm: &Communicator) -> Result<Vec<u64>> {
    // loc:begin:sa_kamping
    let p = comm.size();
    let ranges = blocks(n, p);
    let my_lo = ranges[comm.rank()];
    let mut rank_of: Vec<u64> = initial_ranks(text_block);
    let mut h = 1usize;
    loop {
        // rank[i + h] for local i: every owner ships rank[j] to owner(j - h).
        let outgoing: Vec<IdxVal> = rank_of
            .iter()
            .enumerate()
            .filter(|&(off, _)| my_lo + off >= h)
            .map(|(off, &r)| IdxVal {
                idx: (my_lo + off - h) as u64,
                val: r,
            })
            .collect();
        let (data, counts) = bucket_by_owner(outgoing, &ranges);
        let shifted: Vec<IdxVal> = comm.alltoallv((send_buf(data), send_counts(counts)))?;
        let mut r2 = vec![0u64; rank_of.len()];
        for pr in shifted {
            r2[pr.idx as usize - my_lo] = pr.val;
        }
        // Sort (r1, r2, i) triples globally.
        let mut triples: Vec<PdTriple> = rank_of
            .iter()
            .zip(&r2)
            .enumerate()
            .map(|(off, (&r1, &r2))| PdTriple {
                r1,
                r2,
                idx: (my_lo + off) as u64,
            })
            .collect();
        comm.sort(&mut triples)?;
        // Re-rank: cross-boundary predecessor keys via allgatherv of each
        // rank's last key, then a prefix sum over distinct counts.
        let last: Vec<u64> = triples.last().map(|t| vec![t.r1, t.r2]).unwrap_or_default();
        let (bounds, bcounts) = comm.allgatherv((send_buf(&last), recv_counts_out()))?;
        let prev_key = prev_boundary_key(&bounds, &bcounts, comm.rank());
        let (flags, distinct) = distinct_flags(&triples, prev_key);
        let base: Vec<u64> = comm.exscan((send_buf(&[distinct]), op(ops::Sum)))?;
        let total = comm.allreduce_single((send_buf(&[distinct]), op(ops::Sum)))?;
        let mut next = base[0];
        let writeback: Vec<IdxVal> = triples
            .iter()
            .zip(&flags)
            .map(|(t, &f)| {
                next += f;
                IdxVal {
                    idx: t.idx,
                    val: next,
                }
            })
            .collect();
        let (data, counts) = bucket_by_owner(writeback, &ranges);
        let incoming: Vec<IdxVal> = comm.alltoallv((send_buf(data), send_counts(counts)))?;
        for pr in incoming {
            rank_of[pr.idx as usize - my_lo] = pr.val;
        }
        if total as usize == n || h >= n {
            break;
        }
        h *= 2;
    }
    // SA: route each index to the block its final rank falls in.
    let pairs: Vec<IdxVal> = rank_of
        .iter()
        .enumerate()
        .map(|(off, &r)| IdxVal {
            idx: r - 1,
            val: (my_lo + off) as u64,
        })
        .collect();
    let (data, counts) = bucket_by_owner(pairs, &ranges);
    let mut placed: Vec<IdxVal> = comm.alltoallv((send_buf(data), send_counts(counts)))?;
    placed.sort_unstable();
    Ok(placed.into_iter().map(|pr| pr.val).collect())
    // loc:end:sa_kamping
}

/// The same algorithm against the plain substrate: every exchange spelled
/// out with explicit counts, displacements and receive allocation.
pub fn suffix_array_mpi(text_block: &[u8], n: usize, comm: &Comm) -> Result<Vec<u64>> {
    // loc:begin:sa_mpi
    let p = comm.size();
    let ranges = blocks(n, p);
    let my_lo = ranges[comm.rank()];
    let mut rank_of: Vec<u64> = initial_ranks(text_block);
    let mut h = 1usize;
    loop {
        let outgoing: Vec<IdxVal> = rank_of
            .iter()
            .enumerate()
            .filter(|&(off, _)| my_lo + off >= h)
            .map(|(off, &r)| IdxVal {
                idx: (my_lo + off - h) as u64,
                val: r,
            })
            .collect();
        let (data, counts) = bucket_by_owner(outgoing, &ranges);
        let sdispls = kmp_mpi::collectives::displacements_from_counts(&counts);
        let mut rcounts = vec![0usize; p];
        comm.alltoall_into(&counts, &mut rcounts)?;
        let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
        let mut shifted = vec![IdxVal { idx: 0, val: 0 }; rcounts.iter().sum()];
        comm.alltoallv_into(&data, &counts, &sdispls, &mut shifted, &rcounts, &rdispls)?;
        let mut r2 = vec![0u64; rank_of.len()];
        for pr in shifted {
            r2[pr.idx as usize - my_lo] = pr.val;
        }
        let mut triples: Vec<PdTriple> = rank_of
            .iter()
            .zip(&r2)
            .enumerate()
            .map(|(off, (&r1, &r2))| PdTriple {
                r1,
                r2,
                idx: (my_lo + off) as u64,
            })
            .collect();
        plain_sample_sort(comm, &mut triples)?;
        let last: Vec<u64> = triples.last().map(|t| vec![t.r1, t.r2]).unwrap_or_default();
        let mut bcounts = vec![0usize; p];
        bcounts[comm.rank()] = last.len();
        comm.allgather_in_place(&mut bcounts)?;
        let bdispls = kmp_mpi::collectives::displacements_from_counts(&bcounts);
        let mut bounds = vec![0u64; bcounts.iter().sum()];
        comm.allgatherv_into(&last, &mut bounds, &bcounts, &bdispls)?;
        let prev_key = prev_boundary_key(&bounds, &bcounts, comm.rank());
        let (flags, distinct) = distinct_flags(&triples, prev_key);
        let base = comm
            .exscan_vec(&[distinct], kmp_mpi::op::Sum)?
            .unwrap_or(vec![0])[0];
        let mut total = [0u64];
        comm.allreduce_into(&[distinct], &mut total, kmp_mpi::op::Sum)?;
        let mut next = base;
        let writeback: Vec<IdxVal> = triples
            .iter()
            .zip(&flags)
            .map(|(t, &f)| {
                next += f;
                IdxVal {
                    idx: t.idx,
                    val: next,
                }
            })
            .collect();
        let (data, counts) = bucket_by_owner(writeback, &ranges);
        let sdispls = kmp_mpi::collectives::displacements_from_counts(&counts);
        let mut rcounts = vec![0usize; p];
        comm.alltoall_into(&counts, &mut rcounts)?;
        let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
        let mut incoming = vec![IdxVal { idx: 0, val: 0 }; rcounts.iter().sum()];
        comm.alltoallv_into(&data, &counts, &sdispls, &mut incoming, &rcounts, &rdispls)?;
        for pr in incoming {
            rank_of[pr.idx as usize - my_lo] = pr.val;
        }
        if total[0] as usize == n || h >= n {
            break;
        }
        h *= 2;
    }
    let pairs: Vec<IdxVal> = rank_of
        .iter()
        .enumerate()
        .map(|(off, &r)| IdxVal {
            idx: r - 1,
            val: (my_lo + off) as u64,
        })
        .collect();
    let (data, counts) = bucket_by_owner(pairs, &ranges);
    let sdispls = kmp_mpi::collectives::displacements_from_counts(&counts);
    let mut rcounts = vec![0usize; p];
    comm.alltoall_into(&counts, &mut rcounts)?;
    let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
    let mut placed = vec![IdxVal { idx: 0, val: 0 }; rcounts.iter().sum()];
    comm.alltoallv_into(&data, &counts, &sdispls, &mut placed, &rcounts, &rdispls)?;
    placed.sort_unstable();
    Ok(placed.into_iter().map(|pr| pr.val).collect())
    // loc:end:sa_mpi
}

/// Boundary predecessor key for re-ranking: the last key of the nearest
/// preceding non-empty rank.
fn prev_boundary_key(bounds: &[u64], bcounts: &[usize], rank: usize) -> Option<(u64, u64)> {
    let mut offset = 0usize;
    let mut prev = None;
    for (r, &c) in bcounts.iter().enumerate() {
        if r >= rank {
            break;
        }
        if c > 0 {
            prev = Some((bounds[offset], bounds[offset + 1]));
        }
        offset += c;
    }
    prev
}

// The hand-rolled helpers the plain variant needs (the paper's plain
// implementation carries 1442 LoC of such wrappers; these are the two it
// cannot do without).

fn plain_sample_sort<T: Plain + Ord>(comm: &Comm, data: &mut Vec<T>) -> Result<()> {
    crate::sample_sort::sample_sort_mpi(data, comm)
}

/// Sequential reference (naive comparison sort of suffixes; fine at test
/// scales).
pub fn suffix_array_sequential(text: &[u8]) -> Vec<u64> {
    let mut sa: Vec<u64> = (0..text.len() as u64).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

/// Source text of this module (for the LoC experiment).
pub const SOURCE: &str = include_str!("suffix.rs");

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;

    fn distribute(text: &[u8], p: usize) -> Vec<Vec<u8>> {
        let ranges = blocks(text.len(), p);
        (0..p)
            .map(|r| text[ranges[r]..ranges[r + 1]].to_vec())
            .collect()
    }

    fn run_distributed(text: &[u8], p: usize) -> Vec<u64> {
        let blocks_in = distribute(text, p);
        let n = text.len();
        let out = Universe::run(p, |comm| {
            let c = Communicator::new(comm);
            suffix_array_kamping(&blocks_in[c.rank()], n, &c).unwrap()
        });
        out.concat()
    }

    #[test]
    fn matches_sequential_on_banana() {
        let text = b"banana$";
        assert_eq!(run_distributed(text, 3), suffix_array_sequential(text));
    }

    #[test]
    fn matches_sequential_on_repetitive_text() {
        let text = b"abababababababab$";
        for p in [1, 2, 4] {
            assert_eq!(
                run_distributed(text, p),
                suffix_array_sequential(text),
                "p = {p}"
            );
        }
    }

    #[test]
    fn matches_sequential_on_random_text() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        let text: Vec<u8> = (0..400).map(|_| rng.random_range(b'a'..=b'd')).collect();
        assert_eq!(run_distributed(&text, 4), suffix_array_sequential(&text));
    }

    #[test]
    fn mpi_variant_matches_kamping_variant() {
        let text = b"mississippi_dollar_mississippi$".to_vec();
        let p = 3;
        let blocks_in = distribute(&text, p);
        let n = text.len();
        let kamping_sa = run_distributed(&text, p);
        let out = Universe::run(p, |comm| {
            suffix_array_mpi(&blocks_in[comm.rank()], n, &comm).unwrap()
        });
        assert_eq!(out.concat(), kamping_sa);
        assert_eq!(kamping_sa, suffix_array_sequential(&text));
    }

    #[test]
    fn single_rank_degenerate() {
        let text = b"zyxwv";
        assert_eq!(run_distributed(text, 1), suffix_array_sequential(text));
    }

    #[test]
    fn kamping_version_is_shorter() {
        // §IV-A: kamping prefix doubling 163 LoC vs 426 LoC plain
        // (≈ 2.6x); our rendering must show a clear gap in the same
        // direction.
        let kamping = crate::count_loc(SOURCE, "sa_kamping");
        let mpi = crate::count_loc(SOURCE, "sa_mpi");
        assert!(
            mpi as f64 >= kamping as f64 * 1.1,
            "plain ({mpi}) should exceed kamping ({kamping}) clearly"
        );
    }
}
