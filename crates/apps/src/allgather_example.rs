//! The "vector allgather" running example (Fig. 2/3 of the paper,
//! Table I row 1): every rank holds a vector of varying size; the result
//! on every rank is the concatenation in rank order.
//!
//! Each variant is written in its binding's idiom; the marked regions are
//! what Table I counts.

use kmp_baselines::{boost_like, mpl_like, rwth_like};
use kmp_mpi::{Comm, Plain, Result};

use kamping::prelude::*;

/// Plain substrate ("MPI") version: the Fig. 2 boilerplate — in-place
/// count exchange, exclusive scan, explicit allocation, allgatherv.
pub fn vector_allgather_mpi<T: Plain>(v: &[T], comm: &Comm) -> Result<Vec<T>> {
    // loc:begin:allgather_mpi
    let size = comm.size();
    let rank = comm.rank();
    let mut rc = vec![0usize; size];
    rc[rank] = v.len();
    comm.allgather_in_place(&mut rc)?;
    let mut rd = vec![0usize; size];
    let mut acc = 0;
    for i in 0..size {
        rd[i] = acc;
        acc += rc[i];
    }
    let n_glob = acc;
    let mut v_glob = vec![kmp_mpi::plain::zeroed::<T>(); n_glob];
    comm.allgatherv_into(v, &mut v_glob, &rc, &rd)?;
    Ok(v_glob)
    // loc:end:allgather_mpi
}

/// Boost.MPI-style version: `all_gatherv` hides the count exchange and
/// resizes the output.
pub fn vector_allgather_boost<T: Plain>(v: &[T], comm: &Comm) -> Result<Vec<T>> {
    // loc:begin:allgather_boost
    let comm = boost_like::BoostComm::new(comm);
    let mut v_glob = Vec::new();
    boost_like::all_gatherv(&comm, v, &mut v_glob)?;
    Ok(v_glob)
    // loc:end:allgather_boost
}

/// RWTH-MPI-style version: the in-place count-deducing overload exists,
/// but the user still exchanges counts and computes displacements.
pub fn vector_allgather_rwth<T: Plain>(v: &[T], comm: &Comm) -> Result<Vec<T>> {
    // loc:begin:allgather_rwth
    let c = rwth_like::RwthComm::new(comm);
    let mut counts = vec![0usize; c.size()];
    counts[c.rank()] = v.len();
    c.all_gather_varying_in_place(&mut counts)?;
    let displs = kmp_mpi::collectives::displacements_from_counts(&counts);
    let mut v_glob = vec![kmp_mpi::plain::zeroed::<T>(); counts.iter().sum()];
    c.all_gather_varying(v, &mut v_glob, &counts, &displs)?;
    Ok(v_glob)
    // loc:end:allgather_rwth
}

/// MPL-style version: counts exchanged manually, then layouts must be
/// constructed for the v-collective.
pub fn vector_allgather_mpl<T: Plain>(v: &[T], comm: &Comm) -> Result<Vec<T>> {
    // loc:begin:allgather_mpl
    let c = mpl_like::MplComm::new(comm);
    let mut counts = vec![0usize; c.size()];
    let send_l = mpl_like::ContiguousLayout::new(1);
    let mine = [v.len()];
    c.allgather(&mine, send_l, &mut counts)?;
    let recv_layouts = mpl_like::Layouts::from_counts(&counts);
    let mut v_glob = vec![kmp_mpi::plain::zeroed::<T>(); counts.iter().sum()];
    let data_l = mpl_like::ContiguousLayout::new(v.len());
    c.allgatherv(v, data_l, &mut v_glob, &recv_layouts)?;
    Ok(v_glob)
    // loc:end:allgather_mpl
}

/// kamping version: Fig. 1 — one line.
pub fn vector_allgather_kamping<T: Plain>(v: &[T], comm: &Communicator) -> Result<Vec<T>> {
    // loc:begin:allgather_kamping
    comm.allgatherv(send_buf(v))
    // loc:end:allgather_kamping
}

/// Source text of this module (for the Table I harness).
pub const SOURCE: &str = include_str!("allgather_example.rs");

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_mpi::Universe;

    fn input(rank: usize) -> Vec<u64> {
        vec![rank as u64; rank + 1]
    }

    fn expected(p: usize) -> Vec<u64> {
        (0..p as u64)
            .flat_map(|r| std::iter::repeat_n(r, r as usize + 1))
            .collect()
    }

    #[test]
    fn all_variants_agree() {
        let p = 4;
        Universe::run(p, |comm| {
            let v = input(comm.rank());
            let want = expected(p);
            assert_eq!(vector_allgather_mpi(&v, &comm).unwrap(), want);
            assert_eq!(vector_allgather_boost(&v, &comm).unwrap(), want);
            assert_eq!(vector_allgather_rwth(&v, &comm).unwrap(), want);
            assert_eq!(vector_allgather_mpl(&v, &comm).unwrap(), want);
            let kc = Communicator::new(comm);
            assert_eq!(vector_allgather_kamping(&v, &kc).unwrap(), want);
        });
    }

    #[test]
    fn loc_ordering_matches_table1() {
        // Table I: MPI 14, Boost 5, RWTH 5, MPL 12, KaMPIng 1 — our
        // Rust renderings must reproduce the *ordering*.
        let mpi = crate::count_loc(SOURCE, "allgather_mpi");
        let boost = crate::count_loc(SOURCE, "allgather_boost");
        let rwth = crate::count_loc(SOURCE, "allgather_rwth");
        let mpl = crate::count_loc(SOURCE, "allgather_mpl");
        let kamping = crate::count_loc(SOURCE, "allgather_kamping");
        assert!(kamping < boost, "kamping ({kamping}) < boost ({boost})");
        assert!(boost <= rwth, "boost ({boost}) <= rwth ({rwth})");
        assert!(rwth <= mpl, "rwth ({rwth}) <= mpl ({mpl})");
        assert!(mpl <= mpi, "mpl ({mpl}) <= mpi ({mpi})");
        assert_eq!(kamping, 1, "the kamping version is the Fig. 1 one-liner");
    }
}
