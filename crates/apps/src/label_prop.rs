//! Size-constrained label propagation (§IV-B).
//!
//! The MPI-heavy component of the dKaMinPar graph partitioner the paper
//! migrates: vertices iteratively adopt the most frequent label among
//! their neighbours, subject to a maximum cluster size. The paper
//! compares three implementations of the communication part — plain MPI
//! (154 LoC), kamping (127 LoC) and dKaMinPar's application-specific
//! abstraction layer (106 LoC) — and observes *identical running times*.
//!
//! The shared algorithmic core (label selection, size accounting) is
//! extracted, mirroring the paper's 202-LoC shared base class; the three
//! variants differ in how boundary labels are exchanged each round.

use std::collections::HashMap;

use kmp_graphgen::DistGraph;
use kmp_mpi::{plain_struct, Comm, Rank, Result};

use kamping::prelude::*;

/// `(global vertex, label)` update record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LabelUpdate {
    pub vertex: u64,
    pub label: u64,
}
plain_struct!(LabelUpdate {
    vertex: u64,
    label: u64
});

/// Number of hash buckets for the approximate global cluster-size
/// accounting (the exact per-cluster tracking of dKaMinPar is out of
/// scope; the bucket approximation preserves the communication pattern).
pub const SIZE_BUCKETS: usize = 256;

fn bucket(label: u64) -> usize {
    (label as usize).wrapping_mul(0x9E37_79B9) % SIZE_BUCKETS
}

/// Shared state of one rank: labels of local vertices and cached labels
/// of ghost (remote neighbour) vertices.
pub struct LpState {
    pub labels: Vec<u64>,
    pub ghost: HashMap<u64, u64>,
    /// Approximate global cluster sizes by hash bucket.
    pub sizes: Vec<u64>,
    /// Per-peer lists of local vertices visible to that peer.
    pub boundary: Vec<(Rank, Vec<u64>)>,
}

impl LpState {
    /// Initializes singleton clusters and computes the boundary lists.
    pub fn new(g: &DistGraph) -> Self {
        let labels: Vec<u64> = (0..g.local_n())
            .map(|i| (g.first_vertex() + i) as u64)
            .collect();
        let mut seen: HashMap<Rank, std::collections::BTreeSet<u64>> = HashMap::new();
        for (v, nbrs) in g.iter_local() {
            for &u in nbrs {
                let o = g.owner(u);
                if o != g.rank {
                    seen.entry(o).or_default().insert(v);
                }
            }
        }
        let mut boundary: Vec<(Rank, Vec<u64>)> = seen
            .into_iter()
            .map(|(r, s)| (r, s.into_iter().collect()))
            .collect();
        boundary.sort_by_key(|(r, _)| *r);
        let mut sizes = vec![0u64; SIZE_BUCKETS];
        for &l in &labels {
            sizes[bucket(l)] += 1;
        }
        LpState {
            labels,
            ghost: HashMap::new(),
            sizes,
            boundary,
        }
    }

    /// The label of any (local or ghost) vertex.
    fn label_of(&self, g: &DistGraph, v: u64) -> u64 {
        if g.is_local(v) {
            self.labels[g.local_index(v)]
        } else {
            *self.ghost.get(&v).unwrap_or(&v)
        }
    }

    /// One local round: every vertex adopts the heaviest neighbour label
    /// whose (approximate) cluster size stays below `max_size`. Returns
    /// the update records peers need.
    pub fn local_round(&mut self, g: &DistGraph, max_size: u64) -> HashMap<Rank, Vec<LabelUpdate>> {
        let mut moved: Vec<(usize, u64)> = Vec::new();
        for (v, nbrs) in g.iter_local() {
            let li = g.local_index(v);
            let current = self.labels[li];
            let mut freq: HashMap<u64, u64> = HashMap::new();
            for &u in nbrs {
                *freq.entry(self.label_of(g, u)).or_insert(0) += 1;
            }
            // Deterministic tie-break: highest count, then smallest label.
            let mut best = (0u64, current);
            for (&l, &c) in &freq {
                if c > best.0 || (c == best.0 && l < best.1) {
                    best = (c, l);
                }
            }
            let target = best.1;
            if target != current && self.sizes[bucket(target)] < max_size {
                moved.push((li, target));
            }
        }
        for &(li, target) in &moved {
            let old = self.labels[li];
            self.sizes[bucket(old)] -= 1;
            self.sizes[bucket(target)] += 1;
            self.labels[li] = target;
        }
        // Updates for peers: the new labels of boundary vertices.
        let mut out: HashMap<Rank, Vec<LabelUpdate>> = HashMap::new();
        for (peer, verts) in &self.boundary {
            let ups: Vec<LabelUpdate> = verts
                .iter()
                .map(|&v| LabelUpdate {
                    vertex: v,
                    label: self.labels[g.local_index(v)],
                })
                .collect();
            out.insert(*peer, ups);
        }
        out
    }

    /// Applies received ghost updates.
    pub fn apply_updates(&mut self, updates: impl IntoIterator<Item = LabelUpdate>) {
        for u in updates {
            self.ghost.insert(u.vertex, u.label);
        }
    }
}

/// Plain substrate variant: counts transposed by hand, explicit
/// displacements, size vector allreduced manually.
#[allow(clippy::needless_range_loop)] // counts and payload are built in rank order
pub fn label_prop_mpi(
    g: &DistGraph,
    rounds: usize,
    max_size: u64,
    comm: &Comm,
) -> Result<Vec<u64>> {
    // loc:begin:lp_mpi
    let p = comm.size();
    let mut st = LpState::new(g);
    for _ in 0..rounds {
        let next = st.local_round(g, max_size);
        let mut scounts = vec![0usize; p];
        let mut data: Vec<LabelUpdate> = Vec::new();
        for r in 0..p {
            if let Some(ups) = next.get(&r) {
                scounts[r] = ups.len();
                data.extend_from_slice(ups);
            }
        }
        let sdispls = kmp_mpi::collectives::displacements_from_counts(&scounts);
        let mut rcounts = vec![0usize; p];
        comm.alltoall_into(&scounts, &mut rcounts)?;
        let rdispls = kmp_mpi::collectives::displacements_from_counts(&rcounts);
        let mut recv = vec![
            LabelUpdate {
                vertex: 0,
                label: 0
            };
            rcounts.iter().sum()
        ];
        comm.alltoallv_into(&data, &scounts, &sdispls, &mut recv, &rcounts, &rdispls)?;
        st.apply_updates(recv);
        let local = st.sizes.clone();
        comm.allreduce_into(&local, &mut st.sizes, kmp_mpi::op::Max)?;
    }
    Ok(st.labels)
    // loc:end:lp_mpi
}

/// kamping variant: the exchange collapses to `with_flattened` +
/// `alltoallv`, the size sync to one `allreduce`.
pub fn label_prop_kamping(
    g: &DistGraph,
    rounds: usize,
    max_size: u64,
    comm: &Communicator,
) -> Result<Vec<u64>> {
    // loc:begin:lp_kamping
    let mut st = LpState::new(g);
    for _ in 0..rounds {
        let next = st.local_round(g, max_size);
        let recv: Vec<LabelUpdate> = with_flattened(next, comm.size(), |data, counts| {
            comm.alltoallv((send_buf(data), send_counts(counts)))
        })?;
        st.apply_updates(recv);
        st.sizes = comm.allreduce((send_buf(&st.sizes), op(ops::Max)))?;
    }
    Ok(st.labels)
    // loc:end:lp_kamping
}

/// Neighborhood variant: the boundary structure becomes a first-class
/// graph topology and every round's exchange is a named-parameter
/// `neighbor_alltoallv` — O(degree) envelopes, and even the receive
/// counts (inferred when omitted) travel only along the edges.
pub fn label_prop_neighborhood(
    g: &DistGraph,
    rounds: usize,
    max_size: u64,
    comm: &Communicator,
) -> Result<Vec<u64>> {
    // loc:begin:lp_neighborhood
    let peers = crate::bfs::comm_graph_peers(g);
    let topo = comm.create_dist_graph_adjacent(&peers, &peers)?;
    let mut st = LpState::new(g);
    for _ in 0..rounds {
        let mut next = st.local_round(g, max_size);
        let mut counts = Vec::with_capacity(peers.len());
        let mut data: Vec<LabelUpdate> = Vec::new();
        for r in &peers {
            let block = next.remove(r).unwrap_or_default();
            counts.push(block.len());
            data.extend_from_slice(&block);
        }
        debug_assert!(next.is_empty(), "updates only go to boundary peers");
        let recv: Vec<LabelUpdate> =
            topo.neighbor_alltoallv((send_buf(&data), send_counts(&counts)))?;
        st.apply_updates(recv);
        st.sizes = comm.allreduce((send_buf(&st.sizes), op(ops::Max)))?;
    }
    Ok(st.labels)
    // loc:end:lp_neighborhood
}

/// The application-specific abstraction layer (dKaMinPar keeps its own
/// graph-aware communication primitives): boundary topology baked in at
/// construction, per-round call sites shrink to two lines.
pub struct GraphCommLayer<'a> {
    comm: &'a Communicator,
    peers: Vec<Rank>,
}

impl<'a> GraphCommLayer<'a> {
    pub fn new(g: &DistGraph, comm: &'a Communicator) -> Self {
        let peers = crate::bfs::comm_graph_peers(g);
        GraphCommLayer { comm, peers }
    }

    /// Exchanges update lists along the precomputed boundary topology.
    pub fn exchange(&self, mut msgs: HashMap<Rank, Vec<LabelUpdate>>) -> Result<Vec<LabelUpdate>> {
        let mut out = msgs
            .remove(&self.comm.rank())
            .map(|v| v.to_vec())
            .unwrap_or_default();
        let sparse: HashMap<Rank, Vec<LabelUpdate>> = self
            .peers
            .iter()
            .filter_map(|r| msgs.remove(r).map(|v| (*r, v)))
            .collect();
        for (_, block) in self.comm.sparse_alltoallv(&sparse)? {
            out.extend_from_slice(&block);
        }
        Ok(out)
    }

    /// Synchronizes the approximate size vector.
    pub fn sync_sizes(&self, sizes: &[u64]) -> Result<Vec<u64>> {
        self.comm.allreduce((send_buf(sizes), op(ops::Max)))
    }
}

/// Variant using the application-specific layer (the 106-LoC column).
pub fn label_prop_custom_layer(
    g: &DistGraph,
    rounds: usize,
    max_size: u64,
    comm: &Communicator,
) -> Result<Vec<u64>> {
    // loc:begin:lp_custom
    let layer = GraphCommLayer::new(g, comm);
    let mut st = LpState::new(g);
    for _ in 0..rounds {
        let next = st.local_round(g, max_size);
        st.apply_updates(layer.exchange(next)?);
        st.sizes = layer.sync_sizes(&st.sizes)?;
    }
    Ok(st.labels)
    // loc:end:lp_custom
}

/// Source text of this module (for the LoC experiment).
pub const SOURCE: &str = include_str!("label_prop.rs");

#[cfg(test)]
mod tests {
    use super::*;
    use kmp_graphgen::rgg2d;
    use kmp_mpi::Universe;

    fn parts(p: usize) -> Vec<DistGraph> {
        (0..p).map(|r| rgg2d(200, 0.1, 13, r, p)).collect()
    }

    #[test]
    fn all_variants_agree() {
        let p = 4;
        let graphs = parts(p);
        let out = Universe::run(p, |comm| {
            let g = &graphs[comm.rank()];
            let a = label_prop_mpi(g, 5, 64, &comm).unwrap();
            let kc = Communicator::new(comm);
            let b = label_prop_kamping(g, 5, 64, &kc).unwrap();
            let c = label_prop_custom_layer(g, 5, 64, &kc).unwrap();
            let d = label_prop_neighborhood(g, 5, 64, &kc).unwrap();
            assert_eq!(a, b, "plain and kamping variants diverged");
            assert_eq!(b, c, "kamping and custom-layer variants diverged");
            assert_eq!(c, d, "custom-layer and neighborhood variants diverged");
            a
        });
        // Labels must reference existing vertices.
        for labels in out {
            assert!(labels.iter().all(|&l| (l as usize) < 200));
        }
    }

    #[test]
    fn clustering_actually_coarsens() {
        // After a few rounds on a local graph, the number of distinct
        // labels must drop well below n.
        let graphs = parts(2);
        let out = Universe::run(2, |comm| {
            let kc = Communicator::new(comm);
            label_prop_kamping(&graphs[kc.rank()], 8, 1000, &kc).unwrap()
        });
        let mut all: Vec<u64> = out.into_iter().flatten().collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert!(
            all.len() < n / 2,
            "expected clustering: {} labels remain of {n}",
            all.len()
        );
    }

    #[test]
    fn size_constraint_limits_growth() {
        let graphs = parts(2);
        let out = Universe::run(2, |comm| {
            let kc = Communicator::new(comm);
            label_prop_kamping(&graphs[kc.rank()], 8, 4, &kc).unwrap()
        });
        // With max_size 4 per hash bucket, no label may dominate.
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for l in out.into_iter().flatten() {
            *counts.entry(l).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(
            max <= 64,
            "a cluster grew far past the size constraint: {max}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let graphs = parts(3);
        let a = Universe::run(3, |comm| {
            let kc = Communicator::new(comm);
            label_prop_kamping(&graphs[kc.rank()], 4, 32, &kc).unwrap()
        });
        let b = Universe::run(3, |comm| {
            let kc = Communicator::new(comm);
            label_prop_kamping(&graphs[kc.rank()], 4, 32, &kc).unwrap()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn loc_ordering_matches_paper() {
        // §IV-B: plain 154 > kamping 127 > custom layer 106.
        let mpi = crate::count_loc(SOURCE, "lp_mpi");
        let kamping = crate::count_loc(SOURCE, "lp_kamping");
        let custom = crate::count_loc(SOURCE, "lp_custom");
        assert!(custom < kamping, "custom ({custom}) < kamping ({kamping})");
        assert!(kamping < mpi, "kamping ({kamping}) < mpi ({mpi})");
    }
}
