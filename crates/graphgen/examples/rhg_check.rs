fn main() {
    let p = 4;
    let parts: Vec<kmp_graphgen::DistGraph> = (0..p)
        .map(|r| kmp_graphgen::rhg(600, 8.0, 0.75, 31, r, p))
        .collect();
    let (mut cut, mut total) = (0usize, 0usize);
    for g in &parts {
        for i in 0..g.local_n() {
            for &v in g.neighbors(i) {
                total += 1;
                if !g.is_local(v) {
                    cut += 1;
                }
            }
        }
    }
    println!(
        "total {} cut {} frac {}",
        total,
        cut,
        cut as f64 / total as f64
    );
    let g1 = kmp_graphgen::rhg(600, 8.0, 1.0, 31, 0, 1);
    println!("avg deg {}", g1.local_m() as f64 / g1.local_n() as f64);
}
