//! Distributed adjacency-array graphs.
//!
//! "We assume the graph to be distributed among the ranks with each rank
//! holding a subset of the vertices and their incident edges. Locally,
//! the graph is represented as an adjacency array." (§IV-B)

use kmp_mpi::Rank;

/// One rank's share of a distributed graph: a contiguous global vertex
/// range plus a CSR adjacency array over it. Edge targets are *global*
/// vertex ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistGraph {
    /// Total number of vertices.
    pub global_n: usize,
    /// `vertex_ranges[r]..vertex_ranges[r+1]` is rank r's vertex range.
    pub vertex_ranges: Vec<usize>,
    /// This rank's index.
    pub rank: Rank,
    /// CSR offsets (length `local_n() + 1`).
    pub offsets: Vec<usize>,
    /// Edge targets, global ids.
    pub targets: Vec<u64>,
}

impl DistGraph {
    /// Builds the CSR from per-local-vertex adjacency lists.
    pub fn from_adjacency(
        global_n: usize,
        vertex_ranges: Vec<usize>,
        rank: Rank,
        adj: Vec<Vec<u64>>,
    ) -> Self {
        let local_n = vertex_ranges[rank + 1] - vertex_ranges[rank];
        assert_eq!(adj.len(), local_n, "one adjacency list per local vertex");
        let mut offsets = Vec::with_capacity(local_n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for list in adj {
            targets.extend_from_slice(&list);
            offsets.push(targets.len());
        }
        DistGraph {
            global_n,
            vertex_ranges,
            rank,
            offsets,
            targets,
        }
    }

    /// First global vertex id owned by this rank.
    #[inline]
    pub fn first_vertex(&self) -> usize {
        self.vertex_ranges[self.rank]
    }

    /// Number of local vertices.
    #[inline]
    pub fn local_n(&self) -> usize {
        self.vertex_ranges[self.rank + 1] - self.vertex_ranges[self.rank]
    }

    /// Number of local (directed) edge entries.
    #[inline]
    pub fn local_m(&self) -> usize {
        self.targets.len()
    }

    /// True if global vertex `v` lives on this rank.
    #[inline]
    pub fn is_local(&self, v: u64) -> bool {
        let v = v as usize;
        v >= self.vertex_ranges[self.rank] && v < self.vertex_ranges[self.rank + 1]
    }

    /// Local index of a local global vertex.
    #[inline]
    pub fn local_index(&self, v: u64) -> usize {
        debug_assert!(self.is_local(v));
        v as usize - self.vertex_ranges[self.rank]
    }

    /// Rank owning global vertex `v`.
    #[inline]
    pub fn owner(&self, v: u64) -> Rank {
        let v = v as usize;
        debug_assert!(v < self.global_n);
        // ranges is sorted; find the last range start <= v.
        match self.vertex_ranges.binary_search(&v) {
            Ok(mut i) => {
                // Empty ranges share a boundary; advance to the range
                // that actually contains v.
                while self.vertex_ranges[i + 1] <= v {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        }
    }

    /// Neighbors (global ids) of a local vertex by local index.
    #[inline]
    pub fn neighbors(&self, local: usize) -> &[u64] {
        &self.targets[self.offsets[local]..self.offsets[local + 1]]
    }

    /// Iterates `(global_id, neighbors)` for all local vertices.
    pub fn iter_local(&self) -> impl Iterator<Item = (u64, &[u64])> + '_ {
        let first = self.first_vertex() as u64;
        (0..self.local_n()).map(move |i| (first + i as u64, self.neighbors(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistGraph {
        // 5 vertices over 2 ranks: [0,1,2 | 3,4]; this is rank 0.
        DistGraph::from_adjacency(5, vec![0, 3, 5], 0, vec![vec![1, 3], vec![0], vec![4]])
    }

    #[test]
    fn csr_layout() {
        let g = sample();
        assert_eq!(g.local_n(), 3);
        assert_eq!(g.local_m(), 4);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[4]);
    }

    #[test]
    fn ownership() {
        let g = sample();
        assert!(g.is_local(0));
        assert!(g.is_local(2));
        assert!(!g.is_local(3));
        assert_eq!(g.owner(0), 0);
        assert_eq!(g.owner(2), 0);
        assert_eq!(g.owner(3), 1);
        assert_eq!(g.owner(4), 1);
        assert_eq!(g.local_index(2), 2);
    }

    #[test]
    fn owner_with_empty_ranges() {
        let g = DistGraph::from_adjacency(4, vec![0, 2, 2, 4], 0, vec![vec![], vec![]]);
        assert_eq!(g.owner(1), 0);
        assert_eq!(g.owner(2), 2); // rank 1 is empty
        assert_eq!(g.owner(3), 2);
    }

    #[test]
    fn iter_local_pairs() {
        let g = sample();
        let pairs: Vec<(u64, usize)> = g.iter_local().map(|(v, nb)| (v, nb.len())).collect();
        assert_eq!(pairs, vec![(0, 2), (1, 1), (2, 1)]);
    }
}
