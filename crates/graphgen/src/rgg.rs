//! Random geometric graph (RGG-2D) generator.
//!
//! Vertices are points in the unit square; an edge connects points at
//! Euclidean distance `<= radius`. Ranks own *spatial blocks* (a
//! `rows x cols` decomposition of the square), so the partition has high
//! locality: most edges stay within a rank, and cut edges only touch
//! spatially neighbouring ranks — the family where sparse/neighborhood
//! exchanges shine and diameters are long (Fig. 10, middle).

use crate::dist_graph::DistGraph;
use crate::{hash_unit, vertex_ranges};
use kmp_mpi::Rank;

/// Spatial block decomposition: p blocks in a near-square grid.
fn block_grid(p: usize) -> (usize, usize) {
    let mut rows = 1;
    let mut d = 1;
    while d * d <= p {
        if p.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    (rows, p / rows)
}

/// The position of global vertex `i` (deterministic): uniform within its
/// owner's spatial block.
fn position(i: usize, seed: u64, ranges: &[usize], grid: (usize, usize)) -> (f64, f64) {
    let owner = match ranges.binary_search(&i) {
        Ok(mut r) => {
            while ranges[r + 1] <= i {
                r += 1;
            }
            r
        }
        Err(r) => r - 1,
    };
    let (rows, cols) = grid;
    let row = owner / cols;
    let col = owner % cols;
    let bw = 1.0 / cols as f64;
    let bh = 1.0 / rows as f64;
    let x = col as f64 * bw + hash_unit(seed, 0xA11CE, i as u64) * bw;
    let y = row as f64 * bh + hash_unit(seed, 0xB0B, i as u64) * bh;
    (x, y)
}

/// Generates rank `rank`'s part of an RGG-2D graph: `n` vertices,
/// connection radius `radius`. Deterministic in `(n, radius, seed)` and
/// communication-free (each rank recomputes the candidate positions it
/// needs).
pub fn rgg2d(n: usize, radius: f64, seed: u64, rank: Rank, p: usize) -> DistGraph {
    assert!(radius > 0.0 && radius < 1.0, "radius must be in (0, 1)");
    let ranges = vertex_ranges(n, p);
    let grid = block_grid(p);
    let my_lo = ranges[rank];
    let my_hi = ranges[rank + 1];

    // Bucket all points into cells of side >= radius so that neighbour
    // candidates lie in the 3x3 cell neighbourhood.
    let cells = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        (
            ((x * cells as f64) as usize).min(cells - 1),
            ((y * cells as f64) as usize).min(cells - 1),
        )
    };
    let mut buckets: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new(); cells * cells];
    let mut positions: Vec<(f64, f64)> = Vec::with_capacity(n);
    for i in 0..n {
        let (x, y) = position(i, seed, &ranges, grid);
        positions.push((x, y));
        let (cx, cy) = cell_of(x, y);
        buckets[cy * cells + cx].push((i, x, y));
    }

    let r2 = radius * radius;
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); my_hi - my_lo];
    for i in my_lo..my_hi {
        let (x, y) = positions[i];
        let (cx, cy) = cell_of(x, y);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &(j, jx, jy) in &buckets[ny as usize * cells + nx as usize] {
                    if j == i {
                        continue;
                    }
                    let ddx = x - jx;
                    let ddy = y - jy;
                    if ddx * ddx + ddy * ddy <= r2 {
                        adj[i - my_lo].push(j as u64);
                    }
                }
            }
        }
        adj[i - my_lo].sort_unstable();
    }
    DistGraph::from_adjacency(n, ranges, rank, adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn block_grids() {
        assert_eq!(block_grid(1), (1, 1));
        assert_eq!(block_grid(4), (2, 2));
        assert_eq!(block_grid(8), (2, 4));
        assert_eq!(block_grid(6), (2, 3));
    }

    #[test]
    fn symmetric_and_deterministic() {
        let p = 4;
        let parts: Vec<DistGraph> = (0..p).map(|r| rgg2d(200, 0.12, 11, r, p)).collect();
        let mut directed: HashSet<(u64, u64)> = HashSet::new();
        for g in &parts {
            for (u, nbrs) in g.iter_local() {
                for &v in nbrs {
                    assert_ne!(u, v);
                    directed.insert((u, v));
                }
            }
        }
        for &(u, v) in &directed {
            assert!(directed.contains(&(v, u)), "missing reverse edge ({v},{u})");
        }
        assert_eq!(parts[1], rgg2d(200, 0.12, 11, 1, p));
    }

    #[test]
    fn high_locality_signature() {
        // RGG with spatial blocks: most edges stay within a rank.
        let p = 4;
        let parts: Vec<DistGraph> = (0..p).map(|r| rgg2d(800, 0.05, 5, r, p)).collect();
        let mut cut = 0usize;
        let mut total = 0usize;
        for g in &parts {
            for (_, nbrs) in g.iter_local() {
                for &v in nbrs {
                    total += 1;
                    if !g.is_local(v) {
                        cut += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        let frac = cut as f64 / total as f64;
        assert!(
            frac < 0.35,
            "RGG should be mostly local, cut fraction {frac}"
        );
    }

    #[test]
    fn edges_respect_radius() {
        let g = rgg2d(150, 0.2, 3, 0, 1);
        let ranges = vertex_ranges(150, 1);
        let grid = block_grid(1);
        for (u, nbrs) in g.iter_local() {
            let (ux, uy) = position(u as usize, 3, &ranges, grid);
            for &v in nbrs {
                let (vx, vy) = position(v as usize, 3, &ranges, grid);
                let d2 = (ux - vx).powi(2) + (uy - vy).powi(2);
                assert!(d2 <= 0.2 * 0.2 + 1e-12);
            }
        }
    }

    #[test]
    fn cross_rank_neighbors_only_adjacent_blocks() {
        // With 2x2 blocks and a small radius, cut edges touch only
        // spatially adjacent ranks.
        let p = 4;
        let parts: Vec<DistGraph> = (0..p).map(|r| rgg2d(600, 0.04, 9, r, p)).collect();
        // Rank layout (2x2): 0=(0,0) 1=(0,1) 2=(1,0) 3=(1,1); all pairs
        // are spatially adjacent here except none — just assert the
        // neighbor-set is small relative to p in a wider grid.
        let g = &parts[0];
        let mut peer_ranks: HashSet<usize> = HashSet::new();
        for (_, nbrs) in g.iter_local() {
            for &v in nbrs {
                if !g.is_local(v) {
                    peer_ranks.insert(g.owner(v));
                }
            }
        }
        assert!(peer_ranks.len() <= 3);
    }
}
