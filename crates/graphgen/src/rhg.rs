//! Random-hyperbolic-like graph (RHG) generator.
//!
//! Points live in a hyperbolic disk of radius `R`: angle uniform, radius
//! with density `~ alpha * sinh(alpha r)` (power-law degree distribution
//! with exponent `2*alpha + 1`); an edge connects points within
//! hyperbolic distance `R`. Ranks own angular sectors, giving moderate
//! locality; low-radius points become high-degree hubs that keep the
//! diameter small — the family where the paper's grid all-to-all wins at
//! scale (Fig. 10, bottom).

use crate::dist_graph::DistGraph;
use crate::{hash_unit, vertex_ranges};
use kmp_mpi::Rank;

const TAU: f64 = std::f64::consts::TAU;

/// Hyperbolic position of global vertex `i`: rank-sector angle + sampled
/// radius.
fn position(i: usize, seed: u64, ranges: &[usize], r_disk: f64, alpha: f64) -> (f64, f64) {
    let owner = match ranges.binary_search(&i) {
        Ok(mut r) => {
            while ranges[r + 1] <= i {
                r += 1;
            }
            r
        }
        Err(r) => r - 1,
    };
    let p = ranges.len() - 1;
    let sector = TAU / p as f64;
    let theta = owner as f64 * sector + hash_unit(seed, 0x7E7A, i as u64) * sector;
    // Inverse-CDF sampling of the radial coordinate:
    // F(r) = (cosh(alpha r) - 1) / (cosh(alpha R) - 1).
    let u = hash_unit(seed, 0x6A61, i as u64);
    let r = ((u * ((alpha * r_disk).cosh() - 1.0) + 1.0).acosh()) / alpha;
    (theta, r)
}

/// Hyperbolic distance between `(t1, r1)` and `(t2, r2)`.
fn hyp_dist(t1: f64, r1: f64, t2: f64, r2: f64) -> f64 {
    let mut dt = (t1 - t2).abs() % TAU;
    if dt > std::f64::consts::PI {
        dt = TAU - dt;
    }
    let arg = r1.cosh() * r2.cosh() - r1.sinh() * r2.sinh() * dt.cos();
    arg.max(1.0).acosh()
}

/// Generates rank `rank`'s part of an RHG-like graph with `n` vertices,
/// disk radius `2 ln n + c` chosen so the average degree is roughly
/// `avg_deg`, and power-law exponent `2*alpha + 1`.
pub fn rhg(n: usize, avg_deg: f64, alpha: f64, seed: u64, rank: Rank, p: usize) -> DistGraph {
    assert!(n >= 2);
    // Standard RHG calibration: R ~ 2 ln(n / avg_deg-ish constant); a
    // simple empirical choice that lands near the requested degree.
    let r_disk = 2.0 * ((n as f64) / (avg_deg * 0.45)).ln().max(1.0);
    let ranges = vertex_ranges(n, p);
    let my_lo = ranges[rank];
    let my_hi = ranges[rank + 1];

    let positions: Vec<(f64, f64)> = (0..n)
        .map(|i| position(i, seed, &ranges, r_disk, alpha))
        .collect();

    // Candidate pruning: points within hyperbolic distance R satisfy
    // dtheta <= ~ 2 * exp((R - r1 - r2) / 2); sort by angle and scan a
    // window. At repository scales a simple full scan with the cheap
    // angular bound first is sufficient and auditable.
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); my_hi - my_lo];
    for i in my_lo..my_hi {
        let (ti, ri) = positions[i];
        for (j, &(tj, rj)) in positions.iter().enumerate() {
            if j == i {
                continue;
            }
            // Cheap angular rejection (valid upper bound for the
            // hyperbolic metric): if even the chordal lower bound
            // exceeds R, skip the expensive acosh.
            if ((ri + rj) < r_disk || angular_ok(ti, tj, ri, rj, r_disk))
                && hyp_dist(ti, ri, tj, rj) <= r_disk
            {
                adj[i - my_lo].push(j as u64);
            }
        }
        adj[i - my_lo].sort_unstable();
    }
    DistGraph::from_adjacency(n, ranges, rank, adj)
}

/// Angular feasibility: for points with radii summing above R, the edge
/// can only exist within a small angle window.
fn angular_ok(t1: f64, t2: f64, r1: f64, r2: f64, r_disk: f64) -> bool {
    let mut dt = (t1 - t2).abs() % TAU;
    if dt > std::f64::consts::PI {
        dt = TAU - dt;
    }
    // dtheta bound ~ 2 e^{(R - r1 - r2)/2} (standard RHG estimate), with
    // a safety factor.
    let bound = 4.0 * ((r_disk - r1 - r2) / 2.0).exp();
    dt <= bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn symmetric_and_deterministic() {
        let p = 3;
        let parts: Vec<DistGraph> = (0..p).map(|r| rhg(150, 8.0, 1.0, 21, r, p)).collect();
        let mut directed: HashSet<(u64, u64)> = HashSet::new();
        for g in &parts {
            for (u, nbrs) in g.iter_local() {
                for &v in nbrs {
                    directed.insert((u, v));
                }
            }
        }
        for &(u, v) in &directed {
            assert!(directed.contains(&(v, u)));
        }
        assert_eq!(parts[2], rhg(150, 8.0, 1.0, 21, 2, p));
    }

    #[test]
    fn average_degree_in_ballpark() {
        let g = rhg(600, 12.0, 1.0, 5, 0, 1);
        let avg = g.local_m() as f64 / g.local_n() as f64;
        assert!(
            (2.0..60.0).contains(&avg),
            "average degree {avg} wildly off (requested 12)"
        );
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Power-law-ish: the max degree should far exceed the average.
        let g = rhg(800, 10.0, 0.75, 9, 0, 1);
        let degrees: Vec<usize> = (0..g.local_n()).map(|i| g.neighbors(i).len()).collect();
        let avg = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        let max = *degrees.iter().max().unwrap() as f64;
        assert!(
            max > 4.0 * avg,
            "expected hub vertices: max degree {max}, average {avg}"
        );
    }

    #[test]
    fn some_locality_from_sectors() {
        let p = 4;
        let parts: Vec<DistGraph> = (0..p).map(|r| rhg(600, 8.0, 0.75, 31, r, p)).collect();
        let mut cut = 0usize;
        let mut total = 0usize;
        for g in &parts {
            for (_, nbrs) in g.iter_local() {
                for &v in nbrs {
                    total += 1;
                    if !g.is_local(v) {
                        cut += 1;
                    }
                }
            }
        }
        let frac = cut as f64 / total as f64;
        // Between GNM (~1 - 1/p = 0.75) and RGG (~0.05): sectors keep a
        // noticeable share local, hubs still cut across.
        assert!(
            frac < 0.7,
            "RHG should have some locality, cut fraction {frac}"
        );
        assert!(
            frac > 0.05,
            "RHG should not be fully local, cut fraction {frac}"
        );
    }

    #[test]
    fn hyp_dist_properties() {
        assert!(hyp_dist(0.0, 1.0, 0.0, 1.0) < 1e-3); // identical points (acosh is noisy near 1)
        let d1 = hyp_dist(0.0, 2.0, 1.0, 2.0);
        let d2 = hyp_dist(0.0, 2.0, 2.0, 2.0);
        assert!(d2 > d1, "distance grows with angle");
    }
}
