//! # kmp-graphgen — communication-free distributed graph generators
//!
//! The paper's BFS evaluation (Fig. 10) runs on three graph families
//! produced by KaGen (Funke et al., "Communication-free massively
//! distributed graph generation"), chosen for their contrasting
//! communication characters:
//!
//! - **GNM** (Erdős–Rényi `G(n, m)`): no locality — most edges cross rank
//!   boundaries — and low diameter (few BFS levels, huge frontiers);
//! - **RGG-2D** (random geometric): high locality — ranks own spatial
//!   blocks, edges connect nearby points — and high diameter (many BFS
//!   levels, small frontiers touching few neighbouring ranks);
//! - **RHG-like** (random hyperbolic): skewed power-law degrees, low
//!   diameter, intermediate locality (ranks own angular sectors).
//!
//! All generators are deterministic functions of `(n, seed, p)` and every
//! rank generates its part without communication, like KaGen. Undirected
//! consistency (`v ∈ adj(u) ⇔ u ∈ adj(v)`) holds by construction.
//!
//! Scale note: the generators recompute global hash-derived positions
//! locally (an `O(n)` scan per rank) rather than streaming per-cell
//! seeds; at the repository's benchmark scales this is negligible and
//! keeps the code auditable.

mod dist_graph;
mod gnm;
mod rgg;
mod rhg;

pub use dist_graph::DistGraph;
pub use gnm::gnm;
pub use rgg::rgg2d;
pub use rhg::rhg;

/// A splittable 64-bit hash (SplitMix64), the deterministic randomness
/// source for vertex positions.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform `f64` in `[0, 1)` derived from a hash of `(seed, stream, i)`.
#[inline]
pub(crate) fn hash_unit(seed: u64, stream: u64, i: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(stream ^ splitmix64(i)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Contiguous block partition of `n` vertices over `p` ranks:
/// `ranges[r]..ranges[r+1]` is rank `r`'s range.
pub fn vertex_ranges(n: usize, p: usize) -> Vec<usize> {
    (0..=p).map(|r| r * n / p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic_and_spread() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Crude avalanche check.
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn hash_unit_in_range() {
        for i in 0..1000 {
            let u = hash_unit(42, 7, i);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn hash_unit_roughly_uniform() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| hash_unit(1, 2, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn ranges_cover_exactly() {
        let r = vertex_ranges(10, 3);
        assert_eq!(r, vec![0, 3, 6, 10]);
        let r = vertex_ranges(7, 7);
        assert_eq!(r.len(), 8);
        assert_eq!(r[0], 0);
        assert_eq!(r[7], 7);
        for w in r.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
