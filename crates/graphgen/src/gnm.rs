//! Erdős–Rényi `G(n, m)` generator.
//!
//! Almost no locality (edge endpoints are uniform over all ranks) and
//! small diameter — the family where BFS frontiers are large and touch
//! every rank (Fig. 10, left).

use crate::dist_graph::DistGraph;
use crate::{splitmix64, vertex_ranges};
use kmp_mpi::Rank;

/// Generates rank `rank`'s part of a GNM graph with `n` vertices and `m`
/// undirected edges. Deterministic in `(n, m, seed)`; every rank derives
/// the same global edge list and keeps the endpoints it owns
/// (communication-free).
pub fn gnm(n: usize, m: usize, seed: u64, rank: Rank, p: usize) -> DistGraph {
    assert!(n >= 2, "GNM needs at least two vertices");
    let ranges = vertex_ranges(n, p);
    let my_lo = ranges[rank] as u64;
    let my_hi = ranges[rank + 1] as u64;
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); (my_hi - my_lo) as usize];

    for e in 0..m as u64 {
        let h1 = splitmix64(seed ^ splitmix64(2 * e));
        let h2 = splitmix64(seed ^ splitmix64(2 * e + 1));
        let u = h1 % n as u64;
        // Rejection-free distinct endpoint: shift into the remaining n-1
        // slots.
        let mut v = h2 % (n as u64 - 1);
        if v >= u {
            v += 1;
        }
        if u >= my_lo && u < my_hi {
            adj[(u - my_lo) as usize].push(v);
        }
        if v >= my_lo && v < my_hi {
            adj[(v - my_lo) as usize].push(u);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    DistGraph::from_adjacency(n, ranges, rank, adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Gathers all ranks' parts and checks undirected consistency.
    fn check_symmetric(n: usize, m: usize, p: usize) {
        let parts: Vec<DistGraph> = (0..p).map(|r| gnm(n, m, 99, r, p)).collect();
        let mut directed: HashSet<(u64, u64)> = HashSet::new();
        for g in &parts {
            for (u, nbrs) in g.iter_local() {
                for &v in nbrs {
                    directed.insert((u, v));
                }
            }
        }
        for &(u, v) in &directed {
            assert!(directed.contains(&(v, u)), "missing reverse edge ({v},{u})");
            assert_ne!(u, v, "self loop");
        }
        // 2m directed entries (multi-edges possible but rare; count
        // total entries instead of the deduplicated set).
        let total: usize = parts.iter().map(|g| g.local_m()).sum();
        assert_eq!(total, 2 * m);
    }

    #[test]
    fn symmetric_across_partitions() {
        check_symmetric(50, 200, 1);
        check_symmetric(50, 200, 3);
        check_symmetric(50, 200, 5);
    }

    #[test]
    fn deterministic() {
        let a = gnm(40, 100, 7, 1, 4);
        let b = gnm(40, 100, 7, 1, 4);
        assert_eq!(a, b);
        let c = gnm(40, 100, 8, 1, 4);
        assert_ne!(a, c, "different seeds must give different graphs");
    }

    #[test]
    fn partition_independent_edges() {
        // The same global graph regardless of p: compare rank-0-of-1
        // against the union over 4 ranks.
        let whole = gnm(30, 90, 5, 0, 1);
        let parts: Vec<DistGraph> = (0..4).map(|r| gnm(30, 90, 5, r, 4)).collect();
        let mut union: Vec<(u64, u64)> = Vec::new();
        for g in &parts {
            for (u, nbrs) in g.iter_local() {
                for &v in nbrs {
                    union.push((u, v));
                }
            }
        }
        union.sort_unstable();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        for (u, nbrs) in whole.iter_local() {
            for &v in nbrs {
                reference.push((u, v));
            }
        }
        reference.sort_unstable();
        assert_eq!(union, reference);
    }

    #[test]
    fn no_locality_signature() {
        // For GNM, the fraction of cut edges approaches 1 - 1/p.
        let p = 4;
        let parts: Vec<DistGraph> = (0..p).map(|r| gnm(400, 3200, 3, r, p)).collect();
        let mut cut = 0usize;
        let mut total = 0usize;
        for g in &parts {
            for (_, nbrs) in g.iter_local() {
                for &v in nbrs {
                    total += 1;
                    if !g.is_local(v) {
                        cut += 1;
                    }
                }
            }
        }
        let frac = cut as f64 / total as f64;
        assert!(frac > 0.6, "GNM should have mostly cut edges, got {frac}");
    }
}
