//! End-to-end copy accounting through the **binding layer**: the named-
//! parameter API must add no copies on top of the substrate datapath —
//! the testable form of the paper's "(near) zero overhead" claim (§IV).
//!
//! Counters are per-rank (thread-local, see `kmp_mpi::metrics`); deltas
//! are measured inside the rank closure.

#![cfg(feature = "copy-metrics")]

use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::{metrics, Universe};

/// An owned send buffer moves into the transport at call time with zero
/// copies (§III-E meets zero-copy), and the fan-out to all peers is
/// refcount cloning.
#[test]
fn iallgatherv_owned_send_is_zero_copy_at_call() {
    const N: usize = 1 << 18; // u64 elements
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let mine = vec![comm.rank() as u64; N];
        let before = metrics::snapshot();
        let fut = comm.iallgatherv(send_buf(mine)).unwrap();
        let call_delta = metrics::snapshot().since(&before);
        assert_eq!(
            call_delta.bytes_copied,
            0,
            "rank {}: posting an owned send_buf must not copy",
            comm.rank()
        );
        let (all, mine) = fut.wait().unwrap();
        assert_eq!(all.len(), 4 * N);
        assert_eq!(mine.len(), N, "moved-in buffer handed back");
    });
}

/// Same call-time zero-copy for the non-blocking personalized exchange.
#[test]
fn ialltoallv_owned_send_is_zero_copy_at_call() {
    const PER_PEER: usize = 1 << 14;
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let send = vec![comm.rank() as u32; 4 * PER_PEER];
        let counts = vec![PER_PEER; 4];
        let before = metrics::snapshot();
        let fut = comm
            .ialltoallv((send_buf(send), send_counts(&counts)))
            .unwrap();
        let call_delta = metrics::snapshot().since(&before);
        assert_eq!(
            call_delta.bytes_copied,
            0,
            "rank {}: owned ialltoallv send must not copy at call time",
            comm.rank()
        );
        let (data, send) = fut.wait().unwrap();
        assert_eq!(data.len(), 4 * PER_PEER);
        assert_eq!(send.len(), 4 * PER_PEER, "moved-in buffer handed back");
    });
}

/// The root of a non-blocking broadcast moves its vector into the
/// transport (zero call-time copies) and gets it back from `wait()`.
#[test]
fn ibcast_owned_root_buffer_is_zero_copy_at_call() {
    const N: usize = 1 << 18;
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let data = if comm.rank() == 1 {
            vec![42u64; N]
        } else {
            vec![]
        };
        let before = metrics::snapshot();
        let fut = comm.ibcast((send_recv_buf(data), root(1))).unwrap();
        let call_delta = metrics::snapshot().since(&before);
        assert_eq!(
            call_delta.bytes_copied,
            0,
            "rank {}: ibcast must not copy at call time on any rank",
            comm.rank()
        );
        let data = fut.wait().unwrap();
        assert_eq!(data.len(), N);
        assert_eq!(data[0], 42);
    });
}

/// The blocking bcast adopts the delivered payload straight into the
/// caller's buffer: non-root ranks copy exactly N bytes, independent of
/// their number of binomial-tree children.
#[test]
fn bcast_binding_single_copy_per_rank() {
    const N: usize = 1 << 20; // u8 payload
    Universe::run(8, |comm| {
        let comm = Communicator::new(comm);
        let mut data = if comm.rank() == 0 {
            vec![5u8; N]
        } else {
            Vec::new()
        };
        let before = metrics::snapshot();
        comm.bcast((send_recv_buf(&mut data),)).unwrap();
        let delta = metrics::snapshot().since(&before);
        assert_eq!(data.len(), N);
        assert_eq!(
            delta.bytes_copied,
            N as u64,
            "rank {}: binding bcast copies the payload exactly once",
            comm.rank()
        );
    });
}

/// A serialized send moves the encoder's output buffer into the
/// transport: the payload bytes are written once by serialization and
/// never copied again before delivery.
#[test]
fn serialized_send_does_not_recopy_encoder_output() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        if comm.rank() == 0 {
            let payload: Vec<(u64, String)> = (0..512).map(|i| (i, format!("value-{i}"))).collect();
            let before = metrics::snapshot();
            comm.send((send_buf(as_serialized(&payload)), destination(1), tag(3)))
                .unwrap();
            let delta = metrics::snapshot().since(&before);
            assert_eq!(
                delta.bytes_copied, 0,
                "the encoder's output buffer moves into the transport"
            );
        } else {
            let got: Vec<(u64, String)> = comm
                .recv((source(0), tag(3), recv_buf(as_deserializable())))
                .unwrap();
            assert_eq!(got.len(), 512);
            assert_eq!(got[9].1, "value-9");
        }
    });
}

/// The blocking allgatherv binding writes every delivered block straight
/// into the caller's buffer: s + r copies total, through the full
/// named-parameter path.
#[test]
fn allgatherv_binding_copies_s_plus_r() {
    const N: usize = 1 << 16; // u8 per rank
    let p = 4usize;
    Universe::run(p, move |comm| {
        let comm = Communicator::new(comm);
        let mine = vec![comm.rank() as u8; N];
        let counts = vec![N; p];
        let mut out = vec![0u8; p * N];
        let before = metrics::snapshot();
        comm.allgatherv((send_buf(&mine), recv_counts(&counts), recv_buf(&mut out)))
            .unwrap();
        let delta = metrics::snapshot().since(&before);
        // own into recv + own serialization + (p-1) delivered blocks.
        assert_eq!(
            delta.bytes_copied,
            (2 * N + (p - 1) * N) as u64,
            "rank {}: the binding must add no copies over the substrate",
            comm.rank()
        );
    });
}
