//! Shape assertions on the virtual-time cost model — the mechanisms
//! behind the paper's Fig. 8/10 findings must be visible in the model:
//! sparse exchanges beat dense ones on sparse patterns, the grid
//! all-to-all beats dense at scale, rebuilding topologies per round does
//! not scale, and the alltoallw (MPL) path is more expensive.

use std::collections::HashMap;

use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::{Comm, Config, CostModel, Universe};

/// Max-over-ranks virtual time (ns) of one run of `f` under the cluster
/// cost model.
fn vtime<F: Fn(&Comm) + Sync>(p: usize, f: F) -> u64 {
    Universe::run_with(Config::new(p).cost(CostModel::cluster()), |comm| {
        comm.barrier().unwrap();
        comm.clock_reset();
        f(&comm);
        comm.clock_now_ns()
    })
    .into_iter()
    .map(|o| o.unwrap())
    .max()
    .unwrap()
}

#[test]
fn sparse_beats_dense_on_ring_pattern() {
    let p = 16;
    let dense = vtime(p, |comm| {
        let kc = Communicator::new(comm.dup().unwrap());
        comm.clock_reset();
        let mut counts = vec![0usize; p];
        counts[(kc.rank() + 1) % p] = 1;
        let _: Vec<u64> = kc
            .alltoallv((send_buf(&vec![1u64]), send_counts(&counts)))
            .unwrap();
    });
    let sparse = vtime(p, |comm| {
        let kc = Communicator::new(comm.dup().unwrap());
        comm.clock_reset();
        let mut msgs = HashMap::new();
        msgs.insert((kc.rank() + 1) % p, vec![1u64]);
        let _ = kc.sparse_alltoallv(&msgs).unwrap();
    });
    assert!(
        sparse < dense,
        "ring pattern: sparse ({sparse} ns) must beat dense ({dense} ns) at p={p}"
    );
}

#[test]
fn grid_beats_dense_alltoallv_at_scale_for_small_messages() {
    let p = 64;
    let dense = vtime(p, |comm| {
        let kc = Communicator::new(comm.dup().unwrap());
        comm.clock_reset();
        let counts = vec![1usize; p];
        let data = vec![1u64; p];
        let _: Vec<u64> = kc
            .alltoallv((send_buf(&data), send_counts(&counts)))
            .unwrap();
    });
    let grid = vtime(p, |comm| {
        let kc = Communicator::new(comm.dup().unwrap());
        let g = kc.make_grid().unwrap();
        comm.clock_reset();
        let counts = vec![1usize; p];
        let data = vec![1u64; p];
        let _ = g.alltoallv(&data, &counts).unwrap();
    });
    assert!(
        grid < dense,
        "p={p}: grid ({grid} ns) must beat dense ({dense} ns) for latency-bound exchanges"
    );
}

#[test]
fn dense_beats_grid_for_bandwidth_bound_exchanges() {
    // The trade-off of §V-A: the grid halves the startup count but
    // doubles the communication volume, so for large payloads the dense
    // exchange must win.
    let p = 4;
    let n = 8_192usize; // 64 KiB per peer: beta-dominated
    let dense = vtime(p, |comm| {
        let kc = Communicator::new(comm.dup().unwrap());
        comm.clock_reset();
        let counts = vec![n; p];
        let data = vec![1u64; n * p];
        let mut out = vec![0u64; n * p];
        kc.alltoallv((
            send_buf(&data),
            send_counts(&counts),
            recv_counts(&counts),
            recv_buf(&mut out),
        ))
        .unwrap();
    });
    let grid = vtime(p, |comm| {
        let kc = Communicator::new(comm.dup().unwrap());
        let g = kc.make_grid().unwrap();
        comm.clock_reset();
        let counts = vec![n; p];
        let data = vec![1u64; n * p];
        let _ = g.alltoallv(&data, &counts).unwrap();
    });
    assert!(
        dense < grid,
        "p={p}, 64 KiB blocks: dense ({dense} ns) must beat the volume-doubling grid ({grid} ns)"
    );
}

#[test]
fn topology_rebuild_dwarfs_reuse() {
    let p = 16;
    let peers: Vec<usize> = vec![]; // empty neighbourhood: isolate setup cost
    let reuse = vtime(p, |comm| {
        let topo = comm.create_dist_graph_adjacent(&peers, &peers).unwrap();
        comm.clock_reset();
        for _ in 0..10 {
            let _ = topo.neighbor_alltoall_vecs::<u64>(&[]).unwrap();
        }
    });
    let rebuild = vtime(p, |comm| {
        comm.barrier().unwrap();
        comm.clock_reset();
        for _ in 0..10 {
            let topo = comm.create_dist_graph_adjacent(&peers, &peers).unwrap();
            let _ = topo.neighbor_alltoall_vecs::<u64>(&[]).unwrap();
        }
    });
    assert!(
        rebuild > reuse * 3,
        "rebuilding per round ({rebuild} ns) must dwarf reuse ({reuse} ns)"
    );
}

#[test]
fn alltoallw_path_costs_more_than_alltoallv() {
    let p = 16;
    let via_v = vtime(p, |comm| {
        let counts = vec![8usize; p];
        let displs: Vec<usize> = (0..p).map(|r| r * 8).collect();
        let data = vec![1u8; 8 * p];
        let mut out = vec![0u8; 8 * p];
        comm.alltoallv_into(&data, &counts, &displs, &mut out, &counts, &displs)
            .unwrap();
    });
    let via_w = vtime(p, |comm| {
        let counts = vec![8usize; p];
        let displs: Vec<usize> = (0..p).map(|r| r * 8).collect();
        let data = vec![1u8; 8 * p];
        let mut out = vec![0u8; 8 * p];
        comm.alltoallw_bytes(&data, &counts, &displs, &mut out, &counts, &displs)
            .unwrap();
    });
    assert!(
        via_w > via_v,
        "alltoallw ({via_w} ns) must carry the datatype overhead over alltoallv ({via_v} ns)"
    );
}

#[test]
fn weak_scaling_of_dense_exchange_is_superlinear_in_p() {
    // Dense personalized exchange: per-rank startups grow linearly in p,
    // so doubling p roughly doubles the (latency-dominated) cost.
    let t8 = vtime(8, |comm| {
        let p = comm.size();
        let counts = vec![1usize; p];
        let displs: Vec<usize> = (0..p).collect();
        let data = vec![1u64; p];
        let mut out = vec![0u64; p];
        comm.alltoallv_into(&data, &counts, &displs, &mut out, &counts, &displs)
            .unwrap();
    });
    let t32 = vtime(32, |comm| {
        let p = comm.size();
        let counts = vec![1usize; p];
        let displs: Vec<usize> = (0..p).collect();
        let data = vec![1u64; p];
        let mut out = vec![0u64; p];
        comm.alltoallv_into(&data, &counts, &displs, &mut out, &counts, &displs)
            .unwrap();
    });
    assert!(
        t32 > 2 * t8,
        "dense exchange at p=32 ({t32} ns) must cost well over 2x p=8 ({t8} ns)"
    );
}
