//! Cross-crate integration tests: graph generators feeding kamping BFS,
//! the sorter plugin on application data, suffix arrays, serialization
//! through collectives — the full stack working together.

use kamping_repro::apps::bfs::{bfs_kamping, bfs_sequential, bfs_with_exchange, Exchange};
use kamping_repro::apps::suffix::{blocks, suffix_array_kamping, suffix_array_sequential};
use kamping_repro::graphgen::{gnm, rgg2d, rhg, DistGraph};
use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::Universe;
use rand::prelude::*;

#[test]
fn bfs_on_generated_graphs_matches_sequential() {
    let p = 5; // deliberately not a power of two
    let families: Vec<Vec<DistGraph>> = vec![
        (0..p).map(|r| gnm(250, 1_000, 11, r, p)).collect(),
        (0..p).map(|r| rgg2d(250, 0.1, 11, r, p)).collect(),
        (0..p).map(|r| rhg(250, 8.0, 0.8, 11, r, p)).collect(),
    ];
    for parts in &families {
        let reference = bfs_sequential(parts, 0);
        let out = Universe::run(p, |comm| {
            let comm = Communicator::new(comm);
            bfs_kamping(&parts[comm.rank()], 0, &comm).unwrap()
        });
        assert_eq!(out.concat(), reference);
    }
}

#[test]
fn every_exchange_strategy_agrees_on_odd_rank_counts() {
    let p = 6;
    let parts: Vec<DistGraph> = (0..p).map(|r| gnm(180, 720, 5, r, p)).collect();
    let reference = bfs_sequential(&parts, 7);
    for ex in [
        Exchange::MpiDense,
        Exchange::MpiNeighbor,
        Exchange::Kamping,
        Exchange::KampingSparse,
        Exchange::KampingGrid,
    ] {
        let parts = &parts;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            bfs_with_exchange(&parts[comm.rank()], 7, &comm, ex).unwrap()
        });
        assert_eq!(out.concat(), reference, "strategy {ex:?}");
    }
}

#[test]
fn sorter_plugin_sorts_bfs_distances() {
    // Chain two subsystems: BFS output distances sorted globally.
    let p = 4;
    let parts: Vec<DistGraph> = (0..p).map(|r| rgg2d(400, 0.08, 23, r, p)).collect();
    let out = Universe::run(p, |comm| {
        let comm = Communicator::new(comm);
        let mut dist = bfs_kamping(&parts[comm.rank()], 0, &comm).unwrap();
        comm.sort(&mut dist).unwrap();
        dist
    });
    let mut all: Vec<u64> = out.concat();
    assert!(all.is_sorted(), "concatenation of sorted buckets is sorted");
    let mut expected = bfs_sequential(&parts, 0);
    expected.sort_unstable();
    all.sort_unstable(); // no-op if already sorted; guards empty-bucket edge
    assert_eq!(all, expected);
}

#[test]
fn suffix_array_on_dna_like_text() {
    let mut rng = StdRng::seed_from_u64(2024);
    let text: Vec<u8> = (0..600).map(|_| b"ACGT"[rng.random_range(0..4)]).collect();
    let p = 4;
    let n = text.len();
    let ranges = blocks(n, p);
    let parts: Vec<Vec<u8>> = (0..p)
        .map(|r| text[ranges[r]..ranges[r + 1]].to_vec())
        .collect();
    let parts = &parts;
    let out = Universe::run(p, move |comm| {
        let comm = Communicator::new(comm);
        suffix_array_kamping(&parts[comm.rank()], n, &comm).unwrap()
    });
    assert_eq!(out.concat(), suffix_array_sequential(&text));
}

#[test]
fn serialized_objects_flow_through_collectives_and_p2p() {
    #[derive(serde::Serialize, serde::Deserialize, Clone, Debug, PartialEq, Default)]
    struct Payload {
        name: String,
        values: Vec<f64>,
        tags: Vec<(String, u32)>,
    }
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let mut obj = if comm.is_root() {
            Payload {
                name: "state".into(),
                values: vec![1.0, 2.0],
                tags: vec![("a".into(), 1), ("b".into(), 2)],
            }
        } else {
            Payload::default()
        };
        comm.bcast_serialized::<Payload, _>((send_recv_buf(as_serialized_inout(&mut obj)),))
            .unwrap();
        assert_eq!(obj.tags.len(), 2);

        // Ring-forward the object via serialized p2p.
        let next = (comm.rank() + 1) % comm.size();
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        comm.send((send_buf(as_serialized(&obj)), destination(next), tag(5)))
            .unwrap();
        let got: Payload = comm
            .recv((recv_buf(as_deserializable()), source(prev), tag(5)))
            .unwrap();
        assert_eq!(got, obj);
    });
}

#[test]
fn mixed_binding_layers_interoperate_on_one_communicator() {
    // §III-F: kamping coexists with raw substrate calls and the baseline
    // layers on the same communicator.
    Universe::run(4, |comm| {
        let total_raw = comm
            .allreduce_one(1u64, kamping_repro::mpi::op::Sum)
            .unwrap();
        let boost = kamping_repro::baselines::boost_like::BoostComm::new(&comm);
        let total_boost = kamping_repro::baselines::boost_like::all_reduce(
            &boost,
            &1u64,
            kamping_repro::mpi::op::Sum,
        )
        .unwrap();
        let kc = Communicator::new(comm);
        let total_kamping = kc
            .allreduce_single((send_buf(&[1u64]), op(ops::Sum)))
            .unwrap();
        assert_eq!(total_raw, 4);
        assert_eq!(total_boost, 4);
        assert_eq!(total_kamping, 4);
    });
}

#[test]
fn subcommunicators_run_independent_algorithms() {
    // Split the world and run different pipelines per half.
    Universe::run(6, |comm| {
        let comm = Communicator::new(comm);
        let half = comm.rank() % 2;
        let sub = comm.split(Some(half as u64), 0).unwrap().unwrap();
        if half == 0 {
            let mut data: Vec<u64> = vec![comm.rank() as u64 * 7 % 5, 3, 1];
            sub.sort(&mut data).unwrap();
            assert!(data.is_sorted());
        } else {
            let all: Vec<u64> = sub.allgatherv(send_buf(&[comm.rank() as u64])).unwrap();
            assert_eq!(all.len(), sub.size());
        }
        // The parent communicator still works afterwards.
        let n = comm
            .allreduce_single((send_buf(&[1u64]), op(ops::Sum)))
            .unwrap();
        assert_eq!(n, 6);
    });
}
