//! Property-based tests: collective results against sequential oracles
//! for arbitrary rank counts, payload sizes and values; serialization
//! round-trips; sorting and reduction invariants.

use kamping_repro::kamping::plugins::repro_reduce::ReproducibleReduce;
use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::Universe;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn allgatherv_concatenates_any_distribution(
        blocks in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..20), 1..6)
    ) {
        let p = blocks.len();
        let blocks = &blocks;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let mine = blocks[comm.rank()].clone();
            comm.allgatherv(send_buf(&mine)).unwrap()
        });
        let expected: Vec<u64> = blocks.iter().flatten().copied().collect();
        for got in out {
            prop_assert_eq!(&got, &expected);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // counts built in rank order
    fn alltoallv_is_a_permutation_router(
        p in 1usize..5,
        seed in any::<u64>()
    ) {
        // Every rank sends (rank, dest, k) records; receivers must get
        // exactly the records addressed to them, grouped by sender.
        use rand::prelude::*;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let mut rng = StdRng::seed_from_u64(seed ^ comm.rank() as u64);
            let mut send: Vec<u64> = Vec::new();
            let mut counts = vec![0usize; p];
            for dest in 0..p {
                let k = rng.random_range(0..5);
                counts[dest] = k;
                for i in 0..k {
                    send.push((comm.rank() * 1_000_000 + dest * 1_000 + i) as u64);
                }
            }
            let got: Vec<u64> = comm.alltoallv((send_buf(&send), send_counts(&counts))).unwrap();
            (comm.rank(), got)
        });
        for (rank, got) in out {
            for v in got {
                let dest = (v / 1_000 % 1_000) as usize;
                prop_assert_eq!(dest, rank, "record routed to the wrong rank");
            }
        }
    }

    #[test]
    fn allreduce_sum_matches_oracle(
        blocks in prop::collection::vec(prop::collection::vec(0u64..1_000_000, 1..8), 1..6)
    ) {
        let p = blocks.len();
        let width = blocks.iter().map(Vec::len).min().unwrap();
        let blocks = &blocks;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let mine = blocks[comm.rank()][..width].to_vec();
            let total: Vec<u64> = comm.allreduce((send_buf(&mine), op(ops::Sum))).unwrap();
            total
        });
        let expected: Vec<u64> = (0..width)
            .map(|i| blocks.iter().map(|b| b[i]).sum())
            .collect();
        for got in out {
            prop_assert_eq!(&got, &expected);
        }
    }

    #[test]
    fn scan_prefixes_match_oracle(values in prop::collection::vec(any::<u32>(), 1..6)) {
        let p = values.len();
        let values = &values;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let mine = vec![values[comm.rank()] as u64];
            let running: Vec<u64> = comm.scan((send_buf(&mine), op(ops::Sum))).unwrap();
            running[0]
        });
        let mut acc = 0u64;
        for (r, got) in out.into_iter().enumerate() {
            acc += values[r] as u64;
            prop_assert_eq!(got, acc);
        }
    }

    #[test]
    fn sorter_produces_globally_sorted_permutation(
        blocks in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..60), 1..6)
    ) {
        let p = blocks.len();
        let blocks = &blocks;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let mut data = blocks[comm.rank()].clone();
            comm.sort(&mut data).unwrap();
            data
        });
        let got: Vec<u64> = out.concat();
        let mut expected: Vec<u64> = blocks.iter().flatten().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn reproducible_reduce_independent_of_partition(
        values in prop::collection::vec(-1e6f64..1e6, 1..80),
        p1 in 1usize..5,
        p2 in 1usize..5,
    ) {
        let run = |p: usize, values: &Vec<f64>| -> u64 {
            let values = &values;
            let out = Universe::run(p, move |comm| {
                let comm = Communicator::new(comm);
                let lo = comm.rank() * values.len() / p;
                let hi = (comm.rank() + 1) * values.len() / p;
                comm.reproducible_reduce(&values[lo..hi], ops::Sum).unwrap()
            });
            let bits = out[0].to_bits();
            assert!(out.iter().all(|v| v.to_bits() == bits));
            bits
        };
        prop_assert_eq!(run(p1, &values), run(p2, &values));
    }

    #[test]
    fn serialization_roundtrip_arbitrary_maps(
        entries in prop::collection::btree_map(".{0,12}", any::<i64>(), 0..10)
    ) {
        let entries = &entries;
        Universe::run(2, move |comm| {
            let comm = Communicator::new(comm);
            if comm.rank() == 0 {
                comm.send((send_buf(as_serialized(entries)), destination(1))).unwrap();
            } else {
                let got: std::collections::BTreeMap<String, i64> =
                    comm.recv((recv_buf(as_deserializable()), source(0))).unwrap();
                assert_eq!(&got, entries);
            }
        });
    }

    #[test]
    fn bcast_delivers_root_content_from_any_root(
        data in prop::collection::vec(any::<u32>(), 0..50),
        p in 1usize..6,
        root_pick in any::<usize>(),
    ) {
        let root = root_pick % p;
        let data = &data;
        Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let mut buf = if comm.rank() == root { data.clone() } else { Vec::new() };
            comm.bcast((send_recv_buf(&mut buf), kamping_repro::kamping::params::root(root)))
                .unwrap();
            assert_eq!(&buf, data);
        });
    }

    #[test]
    fn iallgatherv_matches_blocking_for_any_distribution(
        blocks in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..20), 1..6)
    ) {
        let p = blocks.len();
        let blocks = &blocks;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let mine = blocks[comm.rank()].clone();
            let blocking: Vec<u64> = comm.allgatherv(send_buf(&mine)).unwrap();
            // Ownership handback (§III-E): `mine` moves in and comes back.
            let fut = comm.iallgatherv(send_buf(mine)).unwrap();
            let (nonblocking, counts, mine) = fut.wait_with_counts().unwrap();
            (blocking, nonblocking, counts, mine)
        });
        let expected: Vec<u64> = blocks.iter().flatten().copied().collect();
        let expected_counts: Vec<usize> = blocks.iter().map(Vec::len).collect();
        for (rank, (blocking, nonblocking, counts, mine)) in out.into_iter().enumerate() {
            prop_assert_eq!(&blocking, &expected);
            prop_assert_eq!(&nonblocking, &expected);
            prop_assert_eq!(&counts, &expected_counts);
            prop_assert_eq!(&mine, &blocks[rank], "moved-in buffer returned unchanged");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // counts built in rank order
    fn ialltoallv_matches_blocking_router(
        p in 1usize..5,
        seed in any::<u64>()
    ) {
        use rand::prelude::*;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let mut rng = StdRng::seed_from_u64(seed ^ (comm.rank() as u64).wrapping_mul(0x9E37));
            let mut send: Vec<u64> = Vec::new();
            let mut counts = vec![0usize; p];
            for dest in 0..p {
                let k = rng.random_range(0..5);
                counts[dest] = k;
                for i in 0..k {
                    send.push((comm.rank() * 1_000_000 + dest * 1_000 + i) as u64);
                }
            }
            let blocking: Vec<u64> =
                comm.alltoallv((send_buf(&send), send_counts(&counts))).unwrap();
            let fut = comm.ialltoallv((send_buf(send), send_counts(&counts))).unwrap();
            let (nonblocking, rcounts, _send) = fut.wait_with_counts().unwrap();
            (blocking, nonblocking, rcounts)
        });
        for (blocking, nonblocking, rcounts) in out {
            prop_assert_eq!(&blocking, &nonblocking, "non-blocking must route identically");
            prop_assert_eq!(rcounts.iter().sum::<usize>(), nonblocking.len());
        }
    }

    #[test]
    fn iallreduce_matches_blocking_sum(
        blocks in prop::collection::vec(prop::collection::vec(0u64..1_000_000, 1..8), 1..6)
    ) {
        let p = blocks.len();
        let width = blocks.iter().map(Vec::len).min().unwrap();
        let blocks = &blocks;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let mine = blocks[comm.rank()][..width].to_vec();
            let blocking: Vec<u64> = comm.allreduce((send_buf(&mine), op(ops::Sum))).unwrap();
            let fut = comm.iallreduce((send_buf(mine), op(ops::Sum))).unwrap();
            let (nonblocking, _mine) = fut.wait().unwrap();
            (blocking, nonblocking)
        });
        for (blocking, nonblocking) in out {
            prop_assert_eq!(blocking, nonblocking);
        }
    }

    #[test]
    fn ibcast_delivers_root_content(
        data in prop::collection::vec(any::<u32>(), 0..50),
        p in 1usize..6,
        root_pick in any::<usize>(),
    ) {
        let root = root_pick % p;
        let data = &data;
        Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let buf = if comm.rank() == root { data.clone() } else { Vec::new() };
            let fut = comm
                .ibcast((send_recv_buf(buf), kamping_repro::kamping::params::root(root)))
                .unwrap();
            let got = fut.wait().unwrap();
            assert_eq!(&got, data);
        });
    }

    #[test]
    fn gatherv_then_scatterv_is_identity(
        blocks in prop::collection::vec(prop::collection::vec(any::<u16>(), 0..16), 1..5)
    ) {
        let p = blocks.len();
        let blocks = &blocks;
        Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let mine = blocks[comm.rank()].clone();
            let (all, counts) = comm
                .gatherv((send_buf(&mine), recv_counts_out()))
                .unwrap();
            // Root redistributes exactly what it collected.
            let back: Vec<u16> = comm
                .scatterv((send_buf(&all), send_counts(&counts)))
                .unwrap();
            assert_eq!(back, mine);
        });
    }
}
