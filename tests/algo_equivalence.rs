//! Algorithm-equivalence properties: every algorithm a collective's
//! tuning can select must produce the identical result on random
//! payloads and communicator sizes — the correctness contract of the
//! selection engine (`kmp_mpi::collectives::algos`). Exercised both at
//! the substrate level (forced via `Comm::set_tuning`) and through the
//! binding's `tuning(...)` named parameter.

use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::op::Sum;
use kamping_repro::mpi::{
    AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, CollTuning, ModelConfig, ModelSnapshot,
    ReduceAlgo, Universe,
};
use proptest::prelude::*;

/// An aggressive model cadence for tests: publish every call, one
/// observation warms a class — the run passes through static warm-up,
/// exploration, and warm-model regimes within a handful of calls.
fn fast_model() -> CollTuning {
    CollTuning::default().model(
        ModelConfig::default()
            .drive(true)
            .epoch_len(1)
            .warmup_obs(1),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn allreduce_algorithms_agree(
        blocks in prop::collection::vec(prop::collection::vec(any::<u64>(), 1..40), 1..9)
    ) {
        let p = blocks.len();
        let width = blocks.iter().map(Vec::len).min().unwrap();
        let blocks = &blocks;
        let out = Universe::run(p, move |comm| {
            let mine = blocks[comm.rank()][..width].to_vec();
            let mut results = Vec::new();
            for algo in [AllreduceAlgo::RecursiveDoubling, AllreduceAlgo::Rabenseifner] {
                comm.set_tuning(CollTuning::default().allreduce(algo));
                results.push(
                    comm.allreduce_vec(&mine, |a: &u64, b: &u64| a.wrapping_add(*b))
                        .unwrap(),
                );
            }
            comm.set_tuning(CollTuning::default());
            results.push(
                comm.allreduce_vec(&mine, |a: &u64, b: &u64| a.wrapping_add(*b))
                    .unwrap(),
            );
            results
        });
        let expected: Vec<u64> = (0..width)
            .map(|i| blocks.iter().fold(0u64, |acc, b| acc.wrapping_add(b[i])))
            .collect();
        for results in out {
            for got in results {
                prop_assert_eq!(&got, &expected);
            }
        }
    }

    #[test]
    fn alltoall_algorithms_agree(
        p in 1usize..9,
        n in 0usize..5,
        seed in any::<u32>()
    ) {
        let out = Universe::run(p, move |comm| {
            let send: Vec<u32> = (0..p * n)
                .map(|i| seed ^ (comm.rank() as u32) << 16 ^ i as u32)
                .collect();
            let mut pairwise = vec![0u32; p * n];
            let mut bruck = vec![0u32; p * n];
            comm.set_tuning(CollTuning::default().alltoall(AlltoallAlgo::Pairwise));
            comm.alltoall_into(&send, &mut pairwise).unwrap();
            comm.set_tuning(CollTuning::default().alltoall(AlltoallAlgo::Bruck));
            comm.alltoall_into(&send, &mut bruck).unwrap();
            (pairwise, bruck)
        });
        for (pairwise, bruck) in out {
            prop_assert_eq!(pairwise, bruck);
        }
    }

    #[test]
    fn allgather_algorithms_agree(
        p in 1usize..17,
        n in 0usize..40,
        seed in any::<u32>()
    ) {
        let out = Universe::run(p, move |comm| {
            let mine: Vec<u32> = (0..n)
                .map(|i| seed ^ ((comm.rank() as u32) << 20) ^ i as u32)
                .collect();
            let mut results = Vec::new();
            // Forced RD falls back to the ring off powers of two, so
            // every (p, n) draw exercises both paths safely; Bruck runs
            // everywhere, power of two or not — the non-power-of-two
            // draws (p in {3, 5, 6, 7, ...}) are the coverage the ring
            // and RD cannot give it.
            for algo in [
                AllgatherAlgo::Ring,
                AllgatherAlgo::RecursiveDoubling,
                AllgatherAlgo::Bruck,
            ] {
                comm.set_tuning(CollTuning::default().allgather(algo));
                results.push(comm.allgather_vec(&mine).unwrap());
            }
            comm.set_tuning(CollTuning::default());
            results.push(comm.allgather_vec(&mine).unwrap());
            results
        });
        let expected: Vec<u32> = (0..p)
            .flat_map(|r| (0..n).map(move |i| seed ^ ((r as u32) << 20) ^ i as u32))
            .collect();
        for results in out {
            for got in results {
                prop_assert_eq!(&got, &expected);
            }
        }
    }

    #[test]
    fn bcast_algorithms_agree(
        p in 1usize..9,
        len in 0usize..600,
        root_pick in any::<u32>(),
        seed in any::<u8>()
    ) {
        let root = root_pick as usize % p;
        let out = Universe::run(p, move |comm| {
            let mut results = Vec::new();
            for algo in [BcastAlgo::Binomial, BcastAlgo::ScatterAllgather] {
                comm.set_tuning(CollTuning::default().bcast(algo));
                let mut buf: Vec<u8> = if comm.rank() == root {
                    (0..len).map(|i| seed.wrapping_add(i as u8)).collect()
                } else {
                    vec![0; len]
                };
                comm.bcast_into(&mut buf, root).unwrap();
                results.push(buf);
            }
            results
        });
        let expected: Vec<u8> = (0..len).map(|i| seed.wrapping_add(i as u8)).collect();
        for results in out {
            for got in results {
                prop_assert_eq!(&got, &expected);
            }
        }
    }

    #[test]
    fn reduce_algorithms_agree(
        blocks in prop::collection::vec(prop::collection::vec(any::<u64>(), 1..30), 1..9),
        root_pick in any::<u32>()
    ) {
        let p = blocks.len();
        let root = root_pick as usize % p;
        let width = blocks.iter().map(Vec::len).min().unwrap();
        let blocks = &blocks;
        let out = Universe::run(p, move |comm| {
            let mine = blocks[comm.rank()][..width].to_vec();
            let mut results = Vec::new();
            for algo in [ReduceAlgo::BinomialTree, ReduceAlgo::FlatGather] {
                comm.set_tuning(CollTuning::default().reduce(algo));
                let mut out = vec![0u64; width];
                comm.reduce_into(&mine, &mut out, |a: &u64, b: &u64| a.wrapping_add(*b), root)
                    .unwrap();
                results.push(out);
            }
            (comm.rank(), results)
        });
        let expected: Vec<u64> = (0..width)
            .map(|i| blocks.iter().fold(0u64, |acc, b| acc.wrapping_add(b[i])))
            .collect();
        for (rank, results) in out {
            if rank == root {
                for got in results {
                    prop_assert_eq!(&got, &expected);
                }
            }
        }
    }

    /// A driven model must change only the schedule, never the result:
    /// repeated collectives under the aggressive cadence cross the
    /// static, exploration, and warm-model regimes while every result
    /// stays identical to the direct computation — on every `p`,
    /// power of two or not.
    #[test]
    fn model_driven_auto_stays_result_correct(
        p in 1usize..17,
        n in 1usize..100,
        seed in any::<u32>()
    ) {
        let out = Universe::run(p, move |comm| {
            comm.set_tuning(fast_model());
            let mine: Vec<u32> = (0..n)
                .map(|i| seed ^ ((comm.rank() as u32) << 20) ^ i as u32)
                .collect();
            let mut gathers = Vec::new();
            let mut sums = Vec::new();
            for _ in 0..8 {
                gathers.push(comm.allgather_vec(&mine).unwrap());
                sums.push(
                    comm.allreduce_vec(&mine, |a: &u32, b: &u32| a.wrapping_add(*b))
                        .unwrap(),
                );
            }
            (gathers, sums, comm.tuning_stats())
        });
        let expected_gather: Vec<u32> = (0..p)
            .flat_map(|r| (0..n).map(move |i| seed ^ ((r as u32) << 20) ^ i as u32))
            .collect();
        let expected_sum: Vec<u32> = (0..n)
            .map(|i| {
                (0..p).fold(0u32, |acc, r| {
                    acc.wrapping_add(seed ^ ((r as u32) << 20) ^ i as u32)
                })
            })
            .collect();
        for (gathers, sums, stats) in out {
            for g in gathers {
                prop_assert_eq!(&g, &expected_gather);
            }
            for s in sums {
                prop_assert_eq!(&s, &expected_sum);
            }
            if p > 1 {
                // 8 allgathers + 8 allreduces, each a counted decision.
                prop_assert!(stats.decisions >= 16);
                prop_assert!(stats.publishes > 0);
            }
        }
    }
}

/// The binding's `tuning(...)` parameter overrides a single call —
/// results are identical across algorithms, and the communicator's own
/// policy is untouched afterwards.
#[test]
fn tuning_parameter_overrides_one_call() {
    Universe::run(5, |comm| {
        let comm = Communicator::new(comm);
        let mine = vec![comm.rank() as u64 + 1, 10];
        let defaulted: Vec<u64> = comm.allreduce((send_buf(&mine), op(ops::Sum))).unwrap();
        let forced: Vec<u64> = comm
            .allreduce((
                send_buf(&mine),
                op(ops::Sum),
                tuning(CollTuning::default().allreduce(AllreduceAlgo::Rabenseifner)),
            ))
            .unwrap();
        assert_eq!(defaulted, forced);
        assert_eq!(
            comm.tuning(),
            CollTuning::default(),
            "the per-call override must not stick"
        );
    });
}

/// The per-call override must reach the *non-blocking* engine
/// selection too: forcing the binomial tree changes the message
/// pattern of `iallreduce`, which the deterministic virtual clock
/// observes (results stay identical).
#[test]
fn tuning_parameter_reaches_nonblocking_engines() {
    use kamping_repro::mpi::{Config, CostModel};
    let vtime = |force_tree: bool| -> u64 {
        Universe::run_with(Config::new(8).cost(CostModel::cluster()), move |comm| {
            let comm = Communicator::new(comm);
            comm.barrier().unwrap();
            comm.raw().clock_reset();
            let mine = vec![comm.rank() as u64; 8192];
            let fut = if force_tree {
                comm.iallreduce((
                    send_buf(mine),
                    op(ops::Sum),
                    tuning(CollTuning::default().reduce(ReduceAlgo::BinomialTree)),
                ))
                .unwrap()
            } else {
                comm.iallreduce((send_buf(mine), op(ops::Sum))).unwrap()
            };
            let (total, _mine) = fut.wait().unwrap();
            assert_eq!(total[0], 28); // 0 + 1 + ... + 7
            assert_eq!(
                comm.tuning(),
                CollTuning::default(),
                "the per-call override must not stick"
            );
            comm.raw().clock_now_ns()
        })
        .into_iter()
        .map(|o| o.unwrap())
        .max()
        .unwrap()
    };
    assert_ne!(
        vtime(false),
        vtime(true),
        "forcing ReduceAlgo::BinomialTree through tuning(...) must change the \
         iallreduce engine (flat gather vs tree message patterns differ)"
    );
}

/// A persistent policy set through the binding applies to subsequent
/// calls on the communicator (and its algorithms stay result-correct).
#[test]
fn communicator_level_tuning_applies() {
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        comm.set_tuning(
            CollTuning::default()
                .alltoall(AlltoallAlgo::Bruck)
                .allreduce(AllreduceAlgo::Rabenseifner),
        );
        let send: Vec<u32> = (0..4).map(|d| comm.rank() as u32 * 10 + d).collect();
        let recv: Vec<u32> = comm.alltoall(send_buf(&send)).unwrap();
        let expected: Vec<u32> = (0..4).map(|j| j * 10 + comm.rank() as u32).collect();
        assert_eq!(recv, expected);
        let total: Vec<u64> = comm
            .allreduce((send_buf(&[comm.rank() as u64 + 1][..]), op(ops::Sum)))
            .unwrap();
        assert_eq!(total, vec![10]);
    });
}

/// `recv_count` on bcast unlocks size-based selection: with a large
/// payload and a forced scatter+allgather the result must still match,
/// through the full named-parameter path.
#[test]
fn sized_bcast_selects_large_message_algorithm() {
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let n = 100_000usize; // u64: 800 KB, above the vdG threshold
        let data: Vec<u64> = if comm.rank() == 2 {
            (0..n as u64).collect()
        } else {
            Vec::new()
        };
        let data: Vec<u64> = comm
            .bcast((send_recv_buf(data), root(2), recv_count(n)))
            .unwrap();
        assert_eq!(data.len(), n);
        assert_eq!(data[n - 1], n as u64 - 1);

        // Forced small-size vdG through the named parameter.
        let mut small = if comm.rank() == 0 {
            vec![7u8; 33]
        } else {
            vec![]
        };
        comm.bcast((
            send_recv_buf(&mut small),
            recv_count(33),
            tuning(CollTuning::default().bcast(BcastAlgo::ScatterAllgather)),
        ))
        .unwrap();
        assert_eq!(small, vec![7u8; 33]);
    });
}

/// Scan/exscan on the shared-`Bytes` datapath stay rank-ordered for
/// non-commutative operations (the fold keeps the upstream prefix as
/// the left operand).
#[test]
fn scan_datapath_preserves_rank_order() {
    Universe::run(5, |comm| {
        let op = kamping_repro::mpi::non_commutative(|a: &u64, b: &u64| a * 10 + b);
        let mut out = [0u64];
        comm.scan_into(&[comm.rank() as u64 + 1], &mut out, op)
            .unwrap();
        let expected = (1..=comm.rank() as u64 + 1).fold(0, |acc, d| acc * 10 + d);
        assert_eq!(out[0], expected);
    });
}

/// Oracle check that the default (auto) policy is used end-to-end by
/// an application-shaped call: a large allreduce through the binding.
#[test]
fn large_allreduce_auto_matches_sum() {
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let n = 40_000usize; // 320 KB: auto selects Rabenseifner
        let mine = vec![comm.rank() as u64; n];
        let total: Vec<u64> = comm.allreduce((send_buf(&mine), op(Sum))).unwrap();
        assert_eq!(total, vec![6u64; n]);
    });
}

/// Determinism contract of `Select::Force`: a warm model never
/// overrides a forced slot. Every forced call is counted as a forced
/// pick; the model- and exploration-pick counters stay flat.
#[test]
fn force_is_never_overridden_by_a_warm_model() {
    Universe::run(4, |comm| {
        let mine = vec![comm.rank() as u64; 256];
        let sum = |a: &u64, b: &u64| a.wrapping_add(*b);
        // Warm every allreduce class.
        comm.set_tuning(fast_model());
        for _ in 0..12 {
            comm.allreduce_vec(&mine, sum).unwrap();
        }
        let before = comm.tuning_stats();
        // Keep the model driving, but force the algorithm.
        comm.set_tuning(fast_model().allreduce(AllreduceAlgo::Rabenseifner));
        for _ in 0..6 {
            assert_eq!(
                comm.allreduce_vec(&mine, sum).unwrap(),
                (0..4u64).fold(vec![0u64; 256], |acc, r| acc
                    .iter()
                    .map(|v| v.wrapping_add(r))
                    .collect())
            );
        }
        let after = comm.tuning_stats();
        assert_eq!(after.forced_picks - before.forced_picks, 6);
        assert_eq!(after.model_picks, before.model_picks);
        assert_eq!(after.explore_picks, before.explore_picks);
    });
}

/// Persistent plans freeze their selection at `*_init` (counted as one
/// frozen pick) and the steady-state `start`/`wait` cycles never
/// re-enter the selection engine: the decision counter is pinned flat
/// across every cycle, even with the model driving.
#[test]
fn persistent_plans_freeze_selection_and_never_reselect() {
    Universe::run(4, |comm| {
        comm.set_tuning(fast_model());
        let root = 0;
        let mut req = if comm.rank() == root {
            comm.bcast_init(Some(&[0u64]), root).unwrap()
        } else {
            comm.bcast_init::<u64>(None, root).unwrap()
        };
        let init = comm.tuning_stats();
        assert_eq!(init.frozen_picks, 1);
        for cycle in 0..5u64 {
            if comm.rank() == root {
                req.set_data(&[cycle * 7]).unwrap();
            }
            req.start().unwrap();
            let (v, _) = req.wait().unwrap().into_vec::<u64>().unwrap();
            assert_eq!(v, vec![cycle * 7]);
        }
        let after = comm.tuning_stats();
        assert_eq!(
            after.decisions, init.decisions,
            "steady-state persistent cycles must not re-select"
        );
        assert_eq!(after.frozen_picks, 1);
        assert_eq!(after.observations, init.observations);
    });
}

/// `dup` inherits the parent's published snapshot (warm estimates carry
/// into the child); `reset_model` clears only the communicator it is
/// called on.
#[test]
fn dup_inherits_model_and_reset_restarts_warmup() {
    Universe::run(4, |comm| {
        comm.set_tuning(fast_model());
        let mine = vec![comm.rank() as u64; 64];
        for _ in 0..8 {
            comm.allreduce_vec(&mine, |a: &u64, b: &u64| a.wrapping_add(*b))
                .unwrap();
        }
        let parent = comm.model_snapshot();
        assert!(parent.epoch > 0, "aggressive cadence must have published");
        let dup = comm.dup().unwrap();
        assert_eq!(
            dup.model_snapshot(),
            parent,
            "derived communicators inherit the published estimates"
        );
        dup.reset_model();
        assert_eq!(dup.model_snapshot(), ModelSnapshot::default());
        assert_eq!(
            comm.model_snapshot(),
            parent,
            "reset is per-communicator: the parent keeps its estimates"
        );
    });
}
