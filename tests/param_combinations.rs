//! Parameter-combination matrix (§III-H of the paper: "All wrapped MPI
//! functionality has been extensively tested using a large number of
//! parameter combinations").
//!
//! Each test exercises one distinct combination of named parameters —
//! in/out roles, ordering, resize policies, ownership modes — and checks
//! the result against the ground truth.

use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::Universe;

// --- allgatherv ------------------------------------------------------------

#[test]
fn allgatherv_send_only() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let v = vec![comm.rank() as u32; comm.rank()];
        let all: Vec<u32> = comm.allgatherv(send_buf(&v)).unwrap();
        assert_eq!(all, vec![1, 2, 2]);
    });
}

#[test]
fn allgatherv_params_in_reversed_order() {
    // Named parameters are order-free (§III-A).
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let v = vec![comm.rank() as u32; comm.rank()];
        let (all, counts) = comm.allgatherv((recv_counts_out(), send_buf(&v))).unwrap();
        assert_eq!(all, vec![1, 2, 2]);
        assert_eq!(counts, vec![0, 1, 2]);
    });
}

#[test]
fn allgatherv_counts_in_displs_out() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        let v = vec![comm.rank() as u8; 2];
        let counts = vec![2usize, 2];
        let (all, displs) = comm
            .allgatherv((send_buf(&v), recv_counts(&counts), recv_displs_out()))
            .unwrap();
        assert_eq!(all, vec![0, 0, 1, 1]);
        assert_eq!(displs, vec![0, 2]);
    });
}

#[test]
fn allgatherv_custom_displacements_with_gaps() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        let v = vec![comm.rank() as u16 + 1];
        let counts = vec![1usize, 1];
        let displs = vec![1usize, 3];
        let mut out = vec![9u16; 4];
        comm.allgatherv((
            send_buf(&v),
            recv_counts(&counts),
            recv_displs(&displs),
            recv_buf(&mut out),
        ))
        .unwrap();
        assert_eq!(out, vec![9, 1, 9, 2]);
    });
}

#[test]
fn allgatherv_grow_only_keeps_excess() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        let v = vec![5u8];
        let mut out = vec![7u8; 10];
        comm.allgatherv((send_buf(&v), recv_buf(&mut out).grow_only()))
            .unwrap();
        assert_eq!(&out[..2], &[5, 5]);
        assert_eq!(out.len(), 10, "grow_only must not shrink");
    });
}

#[test]
fn allgatherv_no_resize_rejects_small_buffer() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        let v = vec![1u8, 2];
        let mut out = vec![0u8; 1]; // too small, default policy
        let err = comm
            .allgatherv((send_buf(&v), recv_buf(&mut out)))
            .unwrap_err();
        // Undersized no_resize buffers are a recoverable error, not a
        // panic (§III-C upgraded from KaMPIng's unchecked default).
        assert!(matches!(
            err,
            kamping_repro::mpi::MpiError::Truncated { .. }
        ));
    });
}

// --- resize policies across collectives (§III-C) ---------------------------
//
// Each v-collective × {grow_only, resize_to_fit, no_resize}, including the
// undersized-no_resize case, which must surface as a recoverable error
// (MpiError::Truncated), never a panic.

#[test]
fn gatherv_resize_policies_matrix() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let mine = vec![comm.rank() as u32; comm.rank() + 1]; // 6 total at root

        // grow_only: an oversized buffer keeps its excess.
        let mut grow = vec![77u32; 10];
        comm.gatherv((send_buf(&mine), recv_buf(&mut grow).grow_only()))
            .unwrap();
        if comm.rank() == 0 {
            assert_eq!(&grow[..6], &[0, 1, 1, 2, 2, 2]);
            assert_eq!(grow.len(), 10, "grow_only must not shrink");
        }

        // resize_to_fit: exact fit from any starting size.
        let mut fit = vec![0u32; 1];
        comm.gatherv((send_buf(&mine), recv_buf(&mut fit).resize_to_fit()))
            .unwrap();
        if comm.rank() == 0 {
            assert_eq!(fit, vec![0, 1, 1, 2, 2, 2]);
        } else {
            assert!(fit.is_empty(), "non-roots need no storage");
        }

        // no_resize with a large-enough buffer succeeds…
        let mut exact = vec![0u32; if comm.rank() == 0 { 6 } else { 0 }];
        comm.gatherv((send_buf(&mine), recv_buf(&mut exact)))
            .unwrap();

        // …and an undersized root buffer errors (only the root needs
        // storage; its failure is root-local and non-roots have already
        // completed their eager sends).
        let mut small = vec![0u32; if comm.rank() == 0 { 2 } else { 0 }];
        let res = comm.gatherv((send_buf(&mine), recv_buf(&mut small)));
        if comm.rank() == 0 {
            assert!(matches!(
                res.unwrap_err(),
                kamping_repro::mpi::MpiError::Truncated { .. }
            ));
        } else {
            res.unwrap();
        }
    });
}

#[test]
fn allgatherv_resize_policies_matrix() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let mine = vec![comm.rank() as u8; comm.rank() + 1]; // 6 total

        let mut grow = vec![9u8; 8];
        comm.allgatherv((send_buf(&mine), recv_buf(&mut grow).grow_only()))
            .unwrap();
        assert_eq!(&grow[..6], &[0, 1, 1, 2, 2, 2]);
        assert_eq!(grow.len(), 8);

        let mut fit = Vec::new();
        comm.allgatherv((send_buf(&mine), recv_buf(&mut fit).resize_to_fit()))
            .unwrap();
        assert_eq!(fit, vec![0, 1, 1, 2, 2, 2]);

        let mut exact = vec![0u8; 6];
        comm.allgatherv((send_buf(&mine), recv_buf(&mut exact)))
            .unwrap();
        assert_eq!(exact, fit);

        // Undersized no_resize: every rank errors symmetrically (the
        // needed size is known before any payload exchange).
        let mut small = vec![0u8; 3];
        let err = comm
            .allgatherv((send_buf(&mine), recv_buf(&mut small)))
            .unwrap_err();
        assert!(matches!(
            err,
            kamping_repro::mpi::MpiError::Truncated { .. }
        ));
    });
}

#[test]
fn alltoallv_resize_policies_matrix() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        let send = vec![comm.rank() as u16; 4];
        let counts = vec![2usize, 2];

        let mut grow = vec![8u16; 6];
        comm.alltoallv((
            send_buf(&send),
            send_counts(&counts),
            recv_buf(&mut grow).grow_only(),
        ))
        .unwrap();
        assert_eq!(&grow[..4], &[0, 0, 1, 1]);
        assert_eq!(grow.len(), 6);

        let mut fit = vec![0u16; 9];
        comm.alltoallv((
            send_buf(&send),
            send_counts(&counts),
            recv_buf(&mut fit).resize_to_fit(),
        ))
        .unwrap();
        assert_eq!(fit, vec![0, 0, 1, 1]);

        let mut exact = vec![0u16; 4];
        comm.alltoallv((send_buf(&send), send_counts(&counts), recv_buf(&mut exact)))
            .unwrap();
        assert_eq!(exact, fit);

        // Undersized no_resize: provide recv_counts so the failure is
        // detected before any payload exchange, symmetrically.
        let mut small = vec![0u16; 1];
        let err = comm
            .alltoallv((
                send_buf(&send),
                send_counts(&counts),
                recv_counts(&counts),
                recv_buf(&mut small),
            ))
            .unwrap_err();
        assert!(matches!(
            err,
            kamping_repro::mpi::MpiError::Truncated { .. }
        ));
    });
}

// --- gather / scatter roots ------------------------------------------------

#[test]
fn gather_root_param_any_position() {
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let a: Vec<u8> = comm
            .gather((root(3), send_buf(&[comm.rank() as u8])))
            .unwrap();
        let b: Vec<u8> = comm
            .gather((send_buf(&[comm.rank() as u8]), root(3)))
            .unwrap();
        assert_eq!(a, b);
        if comm.rank() == 3 {
            assert_eq!(a, vec![0, 1, 2, 3]);
        }
    });
}

#[test]
fn gatherv_with_recv_buf_and_both_outs() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let v = vec![comm.rank() as u64; comm.rank() + 1];
        let mut store = Vec::new();
        let (counts, displs) = comm
            .gatherv((
                send_buf(&v),
                recv_buf(&mut store).resize_to_fit(),
                recv_counts_out(),
                recv_displs_out(),
            ))
            .unwrap();
        if comm.rank() == 0 {
            assert_eq!(store, vec![0, 1, 1, 2, 2, 2]);
            assert_eq!(counts, vec![1, 2, 3]);
            assert_eq!(displs, vec![0, 1, 3]);
        } else {
            assert!(store.is_empty());
        }
    });
}

#[test]
fn scatterv_counts_and_explicit_displs() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        let send: Vec<u32> = if comm.rank() == 0 {
            vec![1, 2, 3, 4]
        } else {
            vec![]
        };
        let counts = vec![1usize, 2];
        let displs = vec![0usize, 2]; // skip element 1
        let mine: Vec<u32> = comm
            .scatterv((send_buf(&send), send_counts(&counts), send_displs(&displs)))
            .unwrap();
        if comm.rank() == 0 {
            assert_eq!(mine, vec![1]);
        } else {
            assert_eq!(mine, vec![3, 4]);
        }
    });
}

// --- alltoallv -------------------------------------------------------------

#[test]
fn alltoallv_owned_send_with_explicit_send_displs() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        // Send buffer has a junk prefix; displacements skip it.
        let send = vec![99u64, comm.rank() as u64, comm.rank() as u64 + 10];
        let counts = vec![1usize, 1];
        let displs = vec![1usize, 2];
        let got: Vec<u64> = comm
            .alltoallv((send_buf(send), send_counts(&counts), send_displs(&displs)))
            .unwrap();
        // Rank 0 receives each sender's displ-1 element (the sender's
        // rank); rank 1 each sender's displ-2 element (rank + 10).
        let offset = comm.rank() as u64 * 10;
        assert_eq!(got, vec![offset, offset + 1]);
    });
}

#[test]
fn alltoallv_recv_into_owned_moved_container() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        let send = vec![comm.rank() as u16; 2];
        let counts = vec![1usize, 1];
        let reused = Vec::with_capacity(32);
        let got: Vec<u16> = comm
            .alltoallv((
                send_buf(&send),
                send_counts(&counts),
                recv_buf(reused).resize_to_fit(),
            ))
            .unwrap();
        assert_eq!(got, vec![0, 1]);
        assert!(got.capacity() >= 32, "moved-in allocation is reused");
    });
}

// --- reductions ------------------------------------------------------------

#[test]
fn reduce_with_recv_buf_at_root() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let mut out = vec![0u64; 2];
        comm.reduce((
            send_buf(&[1u64, comm.rank() as u64][..]),
            op(ops::Sum),
            recv_buf(&mut out).grow_only(),
            root(1),
        ))
        .unwrap();
        if comm.rank() == 1 {
            assert_eq!(out, vec![3, 3]);
        }
    });
}

#[test]
fn allreduce_min_max_pair() {
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let mine = [comm.rank() as i64 - 1];
        let lo: Vec<i64> = comm.allreduce((send_buf(&mine[..]), op(ops::Min))).unwrap();
        let hi: Vec<i64> = comm.allreduce((send_buf(&mine[..]), op(ops::Max))).unwrap();
        assert_eq!((lo[0], hi[0]), (-1, 2));
    });
}

#[test]
fn scan_and_exscan_with_non_commutative_lambda() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let concat = ops::non_commutative(|a: &u64, b: &u64| a * 10 + b);
        let mine = [comm.rank() as u64 + 1];
        let inc: Vec<u64> = comm.scan((send_buf(&mine[..]), op(concat))).unwrap();
        let expected = [1u64, 12, 123][comm.rank()];
        assert_eq!(inc[0], expected);
    });
}

// --- p2p -------------------------------------------------------------------

#[test]
fn send_from_array_and_slice_shapes() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        if comm.rank() == 0 {
            comm.send((send_buf([1u32, 2]), destination(1), tag(1)))
                .unwrap();
            comm.send((send_buf(&[3u32, 4]), destination(1), tag(2)))
                .unwrap();
            let v = [5u32, 6];
            comm.send((send_buf(&v[..]), destination(1), tag(3)))
                .unwrap();
        } else {
            let a: Vec<u32> = comm.recv((source(0), tag(1))).unwrap();
            let b: Vec<u32> = comm.recv((source(0), tag(2))).unwrap();
            let c: Vec<u32> = comm.recv((source(0), tag(3))).unwrap();
            assert_eq!((a, b, c), (vec![1, 2], vec![3, 4], vec![5, 6]));
        }
    });
}

#[test]
fn recv_wildcards_and_filters() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        if comm.rank() == 0 {
            // Two messages from different sources; receive in tag order.
            let t9: Vec<u8> = comm.recv((any_source(), tag(9))).unwrap();
            let t8: Vec<u8> = comm.recv((any_source(), tag(8))).unwrap();
            assert_eq!(t9, vec![2]);
            assert_eq!(t8, vec![1]);
        } else if comm.rank() == 1 {
            comm.send((send_buf(&[1u8][..]), destination(0), tag(8)))
                .unwrap();
        } else {
            comm.send((send_buf(&[2u8][..]), destination(0), tag(9)))
                .unwrap();
        }
    });
}

#[test]
fn irecv_with_source_and_count() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        if comm.rank() == 0 {
            comm.send((send_buf(&vec![1u64; 8]), destination(1)))
                .unwrap();
        } else {
            let r = comm.irecv::<u64, _>((source(0), recv_count(8))).unwrap();
            assert_eq!(r.wait().unwrap(), vec![1; 8]);
        }
    });
}

#[test]
fn issend_owned_array_comes_back() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        if comm.rank() == 0 {
            let r = comm
                .issend((send_buf(vec![9u8; 3]), destination(1)))
                .unwrap();
            let v = r.wait().unwrap();
            assert_eq!(v, vec![9; 3]);
        } else {
            let v: Vec<u8> = comm.recv((source(0),)).unwrap();
            assert_eq!(v, vec![9; 3]);
        }
    });
}

// --- non-blocking collectives ----------------------------------------------

#[test]
fn iallgatherv_owned_send_buf_comes_back() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        // §III-E for collectives: the moved-in container is handed back
        // by wait(), alongside data that did not exist before completion.
        let mine = vec![comm.rank() as u32; comm.rank()];
        let fut = comm.iallgatherv(send_buf(mine)).unwrap();
        let (all, mine) = fut.wait().unwrap();
        assert_eq!(all, vec![1, 2, 2]);
        assert_eq!(mine, vec![comm.rank() as u32; comm.rank()]);
    });
}

#[test]
fn iallgatherv_borrowed_send_buf_stays_usable() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        let mine = vec![comm.rank() as u16 + 1];
        let fut = comm.iallgatherv(send_buf(&mine)).unwrap();
        let (all, ()) = fut.wait().unwrap();
        assert_eq!(all, vec![1, 2]);
        assert_eq!(mine, vec![comm.rank() as u16 + 1]);
    });
}

#[test]
fn iallgatherv_counts_without_extra_exchange() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let mine = vec![7u8; comm.rank() + 1];
        let before = comm.call_counts();
        let fut = comm.iallgatherv(send_buf(&mine)).unwrap();
        let (all, counts, ()) = fut.wait_with_counts().unwrap();
        let delta = comm.call_counts().since(&before);
        assert_eq!(all.len(), 6);
        assert_eq!(counts, vec![1, 2, 3]);
        // Exactly one operation: counts are discovered, never exchanged
        // (the blocking path issues an extra allgather here).
        assert_eq!(delta.total(), 1);
        assert_eq!(delta.get("iallgatherv"), 1);
    });
}

#[test]
fn ialltoallv_params_in_any_order() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        let send = vec![comm.rank() as u64; 2];
        let counts = vec![1usize, 1];
        let a = comm
            .ialltoallv((send_buf(&send), send_counts(&counts)))
            .unwrap();
        let b = comm
            .ialltoallv((send_counts(&counts), send_buf(&send)))
            .unwrap();
        let (va, ()) = a.wait().unwrap();
        let (vb, ()) = b.wait().unwrap();
        assert_eq!(va, vec![0, 1]);
        assert_eq!(va, vb);
    });
}

#[test]
fn ialltoallv_owned_send_with_explicit_displs() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        // Junk prefix at index 0, skipped via send_displs.
        let send = vec![77u64, comm.rank() as u64, comm.rank() as u64 + 10];
        let counts = vec![1usize, 1];
        let displs = vec![1usize, 2];
        let fut = comm
            .ialltoallv((send_buf(send), send_counts(&counts), send_displs(&displs)))
            .unwrap();
        let (got, sent_back) = fut.wait().unwrap();
        let offset = comm.rank() as u64 * 10;
        assert_eq!(got, vec![offset, offset + 1]);
        assert_eq!(sent_back.len(), 3, "moved-in buffer returned intact");
        assert_eq!(sent_back[0], 77);
    });
}

#[test]
fn ibcast_owned_move_through_any_root() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let data = if comm.rank() == 2 {
            vec![9u8, 8]
        } else {
            vec![]
        };
        let fut = comm.ibcast((send_recv_buf(data), root(2))).unwrap();
        let data = fut.wait().unwrap();
        assert_eq!(data, vec![9, 8]);
    });
}

#[test]
fn iallreduce_op_and_buf_any_order() {
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let fut = comm
            .iallreduce((op(ops::Max), send_buf(vec![comm.rank() as i64])))
            .unwrap();
        let (hi, _) = fut.wait().unwrap();
        assert_eq!(hi, vec![3]);
    });
}

#[test]
fn icollectives_test_polling_and_pool() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        // test()-driven completion.
        let mut fut = comm
            .iallreduce((send_buf(vec![2u64]), op(ops::Prod)))
            .unwrap();
        let (prod, _) = loop {
            match fut.test().unwrap() {
                Ok(done) => break done,
                Err(pending) => {
                    fut = pending;
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(prod, vec![4]);
        // Pool composition: collectives + p2p drained together.
        let mut pool = RequestPool::new();
        pool.submit_collective(comm.iallgatherv(send_buf(vec![comm.rank() as u8])).unwrap());
        pool.submit_bcast(
            comm.ibcast((send_recv_buf(if comm.rank() == 0 {
                vec![1u32]
            } else {
                vec![]
            }),))
                .unwrap(),
        );
        assert_eq!(pool.len(), 2);
        pool.wait_all().unwrap();
    });
}

// --- bcast / in-place ------------------------------------------------------

#[test]
fn bcast_owned_and_borrowed_roundtrip() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        // Borrowed form.
        let mut a = if comm.rank() == 0 {
            vec![1u32, 2]
        } else {
            vec![]
        };
        comm.bcast((send_recv_buf(&mut a),)).unwrap();
        assert_eq!(a, vec![1, 2]);
        // Owned (move-through) form.
        let b = if comm.rank() == 0 { vec![3u32] } else { vec![] };
        let b: Vec<u32> = comm.bcast((send_recv_buf(b),)).unwrap();
        assert_eq!(b, vec![3]);
    });
}

#[test]
fn in_place_allgather_owned_matches_borrowed() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let mut borrowed = vec![0u64; 3];
        borrowed[comm.rank()] = comm.rank() as u64 + 1;
        comm.allgather(send_recv_buf(&mut borrowed)).unwrap();

        let mut owned_in = vec![0u64; 3];
        owned_in[comm.rank()] = comm.rank() as u64 + 1;
        let owned: Vec<u64> = comm.allgather(send_recv_buf(owned_in)).unwrap();

        assert_eq!(borrowed, owned);
        assert_eq!(owned, vec![1, 2, 3]);
    });
}
