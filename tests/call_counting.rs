//! PMPI-style verification (§III-H of the paper): "We use MPI's profiling
//! interface to ensure that only the expected MPI calls are issued if
//! KaMPIng calls MPI internally to compute default values."
//!
//! Each test pins down the exact substrate-call footprint of a kamping
//! operation for one parameter combination.

use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::{CallCounts, Universe};

fn footprint(f: impl Fn(&Communicator) + Sync) -> CallCounts {
    let out = Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let before = comm.call_counts();
        f(&comm);
        comm.call_counts().since(&before)
    });
    // All ranks must issue the identical footprint for these collectives.
    for other in &out[1..] {
        assert_eq!(other, &out[0], "ranks disagree on call footprint");
    }
    out.into_iter().next().unwrap()
}

#[test]
fn allgatherv_with_all_defaults() {
    let d = footprint(|comm| {
        let mine = vec![comm.rank() as u64; comm.rank() + 1];
        let _: Vec<u64> = comm.allgatherv(send_buf(&mine)).unwrap();
    });
    assert_eq!(d.get("allgather"), 1, "count exchange");
    assert_eq!(d.get("allgatherv"), 1, "payload exchange");
    assert_eq!(d.total(), 2, "nothing else: {d}");
}

#[test]
fn allgatherv_fully_specified_is_single_call() {
    let d = footprint(|comm| {
        let mine = vec![7u8; 2];
        let counts = vec![2usize; comm.size()];
        let displs: Vec<usize> = (0..comm.size()).map(|r| r * 2).collect();
        let mut out = vec![0u8; 2 * comm.size()];
        comm.allgatherv((
            send_buf(&mine),
            recv_buf(&mut out),
            recv_counts(&counts),
            recv_displs(&displs),
        ))
        .unwrap();
    });
    assert_eq!(d.get("allgatherv"), 1);
    assert_eq!(
        d.total(),
        1,
        "fully specified call must not communicate extra: {d}"
    );
}

#[test]
fn alltoallv_defaults_add_exactly_one_alltoall() {
    let d = footprint(|comm| {
        let counts = vec![1usize; comm.size()];
        let data = vec![comm.rank() as u32; comm.size()];
        let _: Vec<u32> = comm
            .alltoallv((send_buf(&data), send_counts(&counts)))
            .unwrap();
    });
    assert_eq!(d.get("alltoall"), 1, "count transpose");
    assert_eq!(d.get("alltoallv"), 1);
    assert_eq!(d.total(), 2, "{d}");
}

#[test]
fn alltoallv_with_recv_side_given_is_single_call() {
    let d = footprint(|comm| {
        let counts = vec![1usize; comm.size()];
        let data = vec![comm.rank() as u32; comm.size()];
        let mut out = vec![0u32; comm.size()];
        comm.alltoallv((
            send_buf(&data),
            send_counts(&counts),
            recv_counts(&counts),
            recv_buf(&mut out),
        ))
        .unwrap();
    });
    assert_eq!(d.get("alltoallv"), 1);
    assert_eq!(d.get("alltoall"), 0);
    assert_eq!(d.total(), 1, "{d}");
}

#[test]
fn gatherv_defaults_add_exactly_one_gather() {
    let d = footprint(|comm| {
        let mine = vec![1u8; comm.rank()];
        let _: Vec<u8> = comm.gatherv(send_buf(&mine)).unwrap();
    });
    assert_eq!(d.get("gather"), 1, "count gather");
    assert_eq!(d.get("gatherv"), 1);
    assert_eq!(d.total(), 2, "{d}");
}

#[test]
fn simple_wrappers_are_one_to_one() {
    let d = footprint(|comm| {
        let mine = [comm.rank() as u64];
        let _: Vec<u64> = comm.allgather(send_buf(&mine)).unwrap();
        let _: Vec<u64> = comm.allreduce((send_buf(&mine[..]), op(ops::Sum))).unwrap();
        let mut b = vec![0u8; 1];
        comm.bcast((send_recv_buf(&mut b),)).unwrap();
        comm.barrier().unwrap();
        let _: Vec<u64> = comm.scan((send_buf(&mine[..]), op(ops::Sum))).unwrap();
    });
    assert_eq!(d.get("allgather"), 1);
    assert_eq!(d.get("allreduce"), 1);
    assert_eq!(d.get("bcast"), 1);
    assert_eq!(d.get("barrier"), 1);
    assert_eq!(d.get("scan"), 1);
    assert_eq!(d.total(), 5, "{d}");
}

#[test]
fn in_place_allgather_is_one_call() {
    let d = footprint(|comm| {
        let mut rc = vec![0usize; comm.size()];
        rc[comm.rank()] = 1;
        comm.allgather(send_recv_buf(&mut rc)).unwrap();
    });
    assert_eq!(d.get("allgather"), 1);
    assert_eq!(d.total(), 1, "{d}");
}

#[test]
fn sparse_alltoallv_issues_only_partner_sends() {
    let out = Universe::run(6, |comm| {
        let comm = Communicator::new(comm);
        let before = comm.call_counts();
        let mut msgs = std::collections::HashMap::new();
        msgs.insert((comm.rank() + 1) % comm.size(), vec![1u8]);
        msgs.insert((comm.rank() + 2) % comm.size(), vec![2u8]);
        comm.sparse_alltoallv(&msgs).unwrap();
        comm.call_counts().since(&before)
    });
    for d in out {
        assert_eq!(d.get("issend"), 2, "one synchronous send per partner");
        assert_eq!(d.get("ibarrier"), 1);
        assert_eq!(d.get("alltoall"), 0);
        assert_eq!(d.get("alltoallv"), 0);
    }
}

#[test]
fn grid_alltoall_uses_two_sub_exchanges() {
    let out = Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let grid = comm.make_grid().unwrap();
        let before = comm.call_counts();
        let counts = vec![1usize; comm.size()];
        let data: Vec<u8> = (0..comm.size() as u8).collect();
        let _ = grid.alltoallv(&data, &counts).unwrap();
        comm.call_counts().since(&before)
    });
    for d in out {
        // One alltoallv in the row communicator, one in the column
        // communicator; the count transposes ride along (alltoall).
        assert_eq!(d.get("alltoallv"), 2, "{d}");
    }
}

#[test]
fn send_recv_are_one_to_one() {
    let out = Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        let before = comm.call_counts();
        if comm.rank() == 0 {
            comm.send((send_buf(&[1u8][..]), destination(1))).unwrap();
        } else {
            let _: Vec<u8> = comm.recv((source(0),)).unwrap();
        }
        comm.call_counts().since(&before)
    });
    assert_eq!(out[0].get("send"), 1);
    assert_eq!(out[0].total(), 1);
    assert_eq!(out[1].get("recv"), 1);
    assert_eq!(out[1].total(), 1);
}
