//! ULFM integration scenarios (§V-B of the paper): failure detection in
//! blocking and non-blocking operations, revocation semantics, recovery
//! by shrinking, agreement, and continued operation of the survivors.

use kamping_repro::kamping::prelude::*;
use kamping_repro::kamping::MpiError;
use kamping_repro::mpi::{Config, RankOutcome, Universe};

fn recover(mut comm: Communicator) -> Communicator {
    if !comm.is_revoked() {
        comm.revoke();
    }
    comm = comm.shrink().unwrap();
    comm
}

#[test]
fn survivors_complete_a_full_pipeline_after_failure() {
    let out = Universe::run_with(Config::new(5), |comm| {
        let mut comm = Communicator::new(comm);
        if comm.rank() == 3 {
            comm.fail_now();
        }
        // Failure surfaces in some collective eventually.
        if comm
            .allreduce_single((send_buf(&[1u64]), op(ops::Sum)))
            .is_err()
        {
            comm = recover(comm);
        }
        // Survivors run a full sort + allgather pipeline.
        let mut data = vec![comm.rank() as u64 * 3 % 7, 5, 1];
        comm.sort(&mut data).unwrap();
        let lens: Vec<u64> = comm.allgatherv(send_buf(&[data.len() as u64])).unwrap();
        assert_eq!(lens.len(), comm.size());
        comm.size()
    });
    let sizes: Vec<usize> = out.into_iter().filter_map(|o| o.completed()).collect();
    assert_eq!(sizes, vec![4, 4, 4, 4]);
}

#[test]
fn failure_detected_in_p2p_wait() {
    let out = Universe::run_with(Config::new(2), |comm| {
        let comm = Communicator::new(comm);
        if comm.rank() == 1 {
            comm.fail_now();
        }
        let r = comm.recv::<u64, _>((source(1),));
        matches!(r, Err(MpiError::ProcessFailed { world_rank: 1 }))
    });
    assert_eq!(out[0], RankOutcome::Completed(true));
}

#[test]
fn failure_detected_in_nonblocking_test_loop() {
    let out = Universe::run_with(Config::new(2), |comm| {
        let comm = Communicator::new(comm);
        if comm.rank() == 1 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            comm.fail_now();
        }
        let mut req = comm.irecv::<u8, _>(source(1)).unwrap();
        loop {
            match req.test() {
                Ok(Ok(_)) => return false,
                Ok(Err(pending)) => req = pending,
                Err(e) => return Communicator::is_failure(&e),
            }
            std::thread::yield_now();
        }
    });
    assert_eq!(out[0], RankOutcome::Completed(true));
}

#[test]
fn revoked_communicator_stops_everything_but_shrink_works() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);
        let dup = comm.dup().unwrap();
        if dup.rank() == 2 {
            dup.revoke();
        }
        while !dup.is_revoked() {
            std::thread::yield_now();
        }
        // Normal traffic is refused...
        assert_eq!(dup.barrier().unwrap_err(), MpiError::Revoked);
        assert!(dup.allgatherv(send_buf(&[1u8])).is_err());
        // ...but shrink recovers a working communicator of all 3 (nobody
        // actually failed).
        let fresh = dup.shrink().unwrap();
        assert_eq!(fresh.size(), 3);
        fresh.barrier().unwrap();
        // The original world communicator was never revoked.
        comm.barrier().unwrap();
    });
}

#[test]
fn agreement_is_failure_aware_and_consistent() {
    let out = Universe::run_with(Config::new(4), |comm| {
        let comm = Communicator::new(comm);
        if comm.rank() == 0 {
            comm.fail_now();
        }
        // Everyone passes true except rank 2: AND over survivors = false.
        let flag = comm.rank() != 2;
        comm.agree(flag).unwrap()
    });
    let votes: Vec<bool> = out.into_iter().filter_map(|o| o.completed()).collect();
    assert_eq!(votes, vec![false, false, false]);
}

#[test]
fn cascading_failures_shrink_twice() {
    let out = Universe::run_with(Config::new(6), |comm| {
        let mut comm = Communicator::new(comm);
        if comm.rank() == 1 {
            comm.fail_now();
        }
        comm = comm.shrink().unwrap();
        assert_eq!(comm.size(), 5);
        if comm.rank() == 3 {
            comm.fail_now();
        }
        comm = comm.shrink().unwrap();
        assert_eq!(comm.size(), 4);
        comm.allreduce_single((send_buf(&[1u64]), op(ops::Sum)))
            .unwrap()
    });
    let sums: Vec<u64> = out.into_iter().filter_map(|o| o.completed()).collect();
    assert_eq!(sums, vec![4, 4, 4, 4]);
}

#[test]
fn plain_panic_is_reported_as_panic_not_failure() {
    let out = Universe::run_with(Config::new(2), |comm| {
        if comm.rank() == 1 {
            panic!("application bug");
        }
        // Rank 0 notices the dead peer rather than hanging.
        let r = comm.recv_vec::<u8>(1, 0);
        r.is_err()
    });
    assert_eq!(out[0], RankOutcome::Completed(true));
    assert!(matches!(out[1], RankOutcome::Panicked(ref m) if m.contains("application bug")));
}
