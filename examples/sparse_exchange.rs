//! The paper's §V-A: sparse (NBX) and grid all-to-all plugins on an
//! irregular communication pattern.
//!
//! Run with: `cargo run --example sparse_exchange`

use std::collections::HashMap;

use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::Universe;

fn main() {
    let p = 8;
    Universe::run(p, move |comm| {
        let comm = Communicator::new(comm);
        let rank = comm.rank();

        // A sparse pattern: each rank talks to its two ring neighbours.
        let mut msgs: HashMap<usize, Vec<u64>> = HashMap::new();
        msgs.insert((rank + 1) % p, vec![rank as u64]);
        msgs.insert((rank + p - 1) % p, vec![rank as u64 + 100]);

        // NBX sparse exchange: cost proportional to actual partners.
        let got = comm.sparse_alltoallv(&msgs).unwrap();
        assert_eq!(got.len(), 2);

        // Grid all-to-all: O(sqrt p) startups for dense patterns.
        let grid = comm.make_grid().unwrap();
        let counts = vec![1usize; p];
        let data: Vec<u64> = (0..p as u64).map(|d| rank as u64 * 1000 + d).collect();
        let from_all = grid.alltoallv_sparse(&data, &counts).unwrap();
        assert_eq!(from_all.len(), p);
        for (origin, block) in &from_all {
            assert_eq!(block, &vec![*origin as u64 * 1000 + rank as u64]);
        }

        if comm.is_root() {
            let (r, c) = grid.dims();
            println!("sparse exchange received from 2 neighbours; grid is {r}x{c}");
        }
    });
}
