//! The paper's Fig. 9/10: distributed BFS with selectable frontier
//! exchange (dense alltoallv, neighborhood topology, sparse NBX, 2D
//! grid).
//!
//! Run with: `cargo run --example bfs`

use kamping_repro::apps::bfs::{bfs_sequential, bfs_with_exchange, Exchange, UNDEF};
use kamping_repro::graphgen::rgg2d;
use kamping_repro::kamping::Communicator;
use kamping_repro::mpi::Universe;

fn main() {
    let p = 4;
    let n = 2_000;
    let radius = (16.0 / (std::f64::consts::PI * n as f64)).sqrt();
    let parts: Vec<_> = (0..p).map(|r| rgg2d(n, radius, 99, r, p)).collect();
    let reference = bfs_sequential(&parts, 0);

    for exchange in [
        Exchange::MpiDense,
        Exchange::MpiNeighbor,
        Exchange::Kamping,
        Exchange::KampingSparse,
        Exchange::KampingGrid,
    ] {
        let parts = &parts;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            bfs_with_exchange(&parts[comm.rank()], 0, &comm, exchange).unwrap()
        });
        let got: Vec<u64> = out.concat();
        assert_eq!(got, reference, "{exchange:?} diverged");
        let reached = got.iter().filter(|&&d| d != UNDEF).count();
        let depth = got.iter().filter(|&&d| d != UNDEF).max().unwrap();
        println!("{exchange:?}: reached {reached}/{n} vertices, depth {depth}");
    }
}
