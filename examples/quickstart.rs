//! Quickstart: the paper's Fig. 1 and Fig. 3 — one `allgatherv`, three
//! levels of control.
//!
//! Run with: `cargo run --example quickstart`

use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::Universe;

fn main() {
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let rank = comm.rank();

        // Every rank holds a vector of varying size.
        let v: Vec<u64> = vec![rank as u64; rank + 1];

        // (1) Fig. 1, concise: all defaults computed by the library.
        let v_global: Vec<u64> = comm.allgatherv(send_buf(&v)).unwrap();

        // (2) Fig. 1, full control: request computed parameters back and
        //     steer memory management with resize policies.
        let (v_global2, rcounts, rdispls) = comm
            .allgatherv((send_buf(&v), recv_counts_out(), recv_displs_out()))
            .unwrap();

        // (3) Fig. 3, version 1: spell everything out (gradual migration
        //     from existing MPI code).
        let mut rc = vec![0usize; comm.size()];
        rc[rank] = v.len();
        comm.allgather(send_recv_buf(&mut rc)).unwrap();
        let rd: Vec<usize> = rc
            .iter()
            .scan(0usize, |acc, &c| {
                let d = *acc;
                *acc += c;
                Some(d)
            })
            .collect();
        let mut v_glob3: Vec<u64> = Vec::new();
        comm.allgatherv((
            send_buf(&v),
            recv_buf(&mut v_glob3).resize_to_fit(),
            recv_counts(&rc),
            recv_displs(&rd),
        ))
        .unwrap();

        assert_eq!(v_global, v_global2);
        assert_eq!(v_global, v_glob3);
        assert_eq!(rcounts, rc);
        assert_eq!(rdispls, rd);

        if comm.is_root() {
            println!(
                "gathered {} elements across {} ranks",
                v_global.len(),
                comm.size()
            );
            println!("counts  = {rcounts:?}");
            println!("displs  = {rdispls:?}");
            println!("data    = {v_global:?}");
        }
    });
}
