//! The paper's §V-C / Fig. 13: a reduction whose result does not depend
//! on the number of ranks.
//!
//! Run with: `cargo run --example reproducible_reduce`

use kamping_repro::kamping::plugins::repro_reduce::ReproducibleReduce;
use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::Universe;

fn main() {
    // Values with wildly mixed magnitudes: float addition order matters.
    let values: Vec<f64> = (0..1_000)
        .map(|i| if i % 3 == 0 { 1e15 } else { -0.5e15 + i as f64 })
        .collect();

    let mut per_p = Vec::new();
    for p in [1usize, 2, 3, 4, 8] {
        let vals = &values;
        let out = Universe::run(p, move |comm| {
            let comm = Communicator::new(comm);
            let lo = comm.rank() * vals.len() / p;
            let hi = (comm.rank() + 1) * vals.len() / p;
            comm.reproducible_reduce(&vals[lo..hi], ops::Sum).unwrap()
        });
        per_p.push((p, out[0]));
    }
    println!("reproducible_reduce results:");
    for (p, v) in &per_p {
        println!("  p={p}: {v:+.17e}");
    }
    let first = per_p[0].1.to_bits();
    assert!(per_p.iter().all(|(_, v)| v.to_bits() == first));
    println!("bit-identical for every rank count OK");
}
