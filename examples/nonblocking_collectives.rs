//! Non-blocking collectives with ownership-safe futures (§III-E of the
//! paper, extended from point-to-point to collectives): a
//! compute/communicate overlap loop.
//!
//! Each iteration starts the exchange of the *current* chunk, computes
//! the *next* chunk while the collective is in flight, and only then
//! completes the exchange — the software-pipelining pattern non-blocking
//! collectives exist for. The send buffer is moved into the future and
//! handed back by `wait()`, so no in-flight buffer can be touched.
//!
//! Run with: `cargo run --example nonblocking_collectives`

use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::Universe;

const ROUNDS: usize = 4;
const CHUNK: usize = 1 << 14;

/// "Compute" one chunk: each rank contributes a slice derived from the
/// round number.
fn compute_chunk(rank: usize, round: usize) -> Vec<u64> {
    (0..CHUNK)
        .map(|i| (rank * 1_000_000 + round * 1_000 + i % 97) as u64)
        .collect()
}

fn main() {
    Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let p = comm.size();

        // Pipeline: exchange chunk r while computing chunk r + 1.
        let mut chunk = compute_chunk(comm.rank(), 0);
        let mut total = 0u64;
        for round in 0..ROUNDS {
            // The chunk is *moved* into the future — it is inaccessible
            // (and unmodifiable) while the collective is in flight.
            let fut = comm.iallgatherv(send_buf(chunk)).unwrap();

            // Overlapped local work: produce the next round's chunk.
            let next = if round + 1 < ROUNDS {
                compute_chunk(comm.rank(), round + 1)
            } else {
                Vec::new()
            };

            // Completion yields everyone's data and hands the moved-in
            // buffer back (it could be reused for the next round).
            let (all, _mine) = fut.wait().unwrap();
            assert_eq!(all.len(), p * CHUNK);
            total = total.wrapping_add(all.iter().sum::<u64>());

            chunk = next;
        }

        // A termination-style check overlapping a reduction with work,
        // as the BFS app does per level (see `kmp_apps::bfs`).
        // (mix the rank in: all ranks hold the same `total`, and a pure
        // xor of identical values would cancel to zero)
        let fut = comm
            .iallreduce((
                send_buf(vec![total.rotate_left(comm.rank() as u32)]),
                op(ops::BitXor),
            ))
            .unwrap();
        let local_digest = total.rotate_left(17); // work under the reduction
        let (global, _) = fut.wait().unwrap();
        std::hint::black_box(local_digest);

        if comm.is_root() {
            println!(
                "rank 0: pipelined {ROUNDS} rounds of {CHUNK}-element allgatherv, \
                 global xor digest = {:#x}",
                global[0]
            );
        }
    });
}
