//! The paper's Fig. 6: memory-safe non-blocking communication — the send
//! buffer is moved into the request and handed back on `wait()`; received
//! data is only accessible after completion.
//!
//! Run with: `cargo run --example nonblocking`

use kamping_repro::kamping::p2p::RequestPool;
use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::Universe;

fn main() {
    Universe::run(2, |comm| {
        let comm = Communicator::new(comm);
        if comm.rank() == 0 {
            // Fig. 6: the buffer is owned by the request while in flight.
            let v: Vec<i32> = (0..42).collect();
            let r1 = comm.isend((send_buf(v), destination(1))).unwrap();
            // `v` is inaccessible here — the compiler enforces §III-E.
            let v = r1.wait().unwrap(); // moved back to the caller
            assert_eq!(v.len(), 42);

            // Request pools: fire-and-collect.
            let mut pool = RequestPool::new();
            for _ in 0..10 {
                pool.submit_send(comm.isend((send_buf(vec![7u8]), destination(1))).unwrap());
            }
            pool.wait_all().unwrap();
            println!("rank 0: moved buffer returned after wait(), pool drained");
        } else {
            let r2 = comm.irecv::<i32, _>(recv_count(42)).unwrap();
            let data = r2.wait().unwrap(); // data only exists after completion
            assert_eq!(data, (0..42).collect::<Vec<_>>());
            for _ in 0..10 {
                let _: Vec<u8> = comm.recv((source(0),)).unwrap();
            }
            println!("rank 1: received {} values", data.len());
        }
    });
}
