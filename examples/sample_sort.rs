//! The paper's Fig. 7: distributed sample sort in kamping, plus the
//! STL-like sorter plugin (`comm.sort`).
//!
//! Run with: `cargo run --example sample_sort`

use kamping_repro::apps::sample_sort::sample_sort_kamping;
use kamping_repro::kamping::plugins::sorter::Sorter;
use kamping_repro::kamping::Communicator;
use kamping_repro::mpi::Universe;
use rand::prelude::*;

fn main() {
    let outputs = Universe::run(4, |comm| {
        let comm = Communicator::new(comm);
        let mut rng = StdRng::seed_from_u64(comm.rank() as u64);
        let mut data: Vec<u64> = (0..10_000)
            .map(|_| rng.random_range(0..1_000_000))
            .collect();

        // Fig. 7, explicit:
        sample_sort_kamping(&mut data, &comm).unwrap();
        assert!(data.is_sorted());

        // Or through the plugin (one line):
        let mut more: Vec<u64> = (0..5_000).map(|_| rng.random()).collect();
        comm.sort(&mut more).unwrap();
        assert!(more.is_sorted());

        (data.first().copied(), data.last().copied(), data.len())
    });
    println!("per-rank sorted runs (min, max, len):");
    for (r, (lo, hi, len)) in outputs.iter().enumerate() {
        println!("  rank {r}: {lo:?} ..= {hi:?}  ({len} elements)");
    }
    // Global order across rank boundaries:
    for w in outputs.windows(2) {
        assert!(w[0].1 <= w[1].0 || w[1].2 == 0);
    }
    println!("globally sorted OK");
}
