//! The paper's Fig. 12: surviving a process failure with the ULFM plugin
//! — catch the failure, revoke, shrink, continue on the survivors.
//!
//! Run with: `cargo run --example fault_tolerance`

use kamping_repro::kamping::prelude::*;
use kamping_repro::kamping::MpiError;
use kamping_repro::mpi::{Config, Universe};

fn main() {
    let outcomes = Universe::run_with(Config::new(4), |comm| {
        let mut comm = Communicator::new(comm);

        // Rank 2 "crashes" mid-computation.
        if comm.rank() == 2 {
            comm.fail_now();
        }

        // Fig. 12: a collective fails with a process-failure error; the
        // survivors revoke the communicator and shrink it.
        let total;
        match comm.allreduce_single((send_buf(&[1u64]), op(ops::Sum))) {
            Ok(v) => total = v,
            Err(e) => {
                assert!(Communicator::is_failure(&e) || e == MpiError::Revoked);
                if !comm.is_revoked() {
                    comm.revoke();
                }
                // Create a new communicator containing only survivors.
                comm = comm.shrink().unwrap();
                total = comm
                    .allreduce_single((send_buf(&[1u64]), op(ops::Sum)))
                    .unwrap();
            }
        }
        (comm.rank(), comm.size(), total)
    });

    for (i, o) in outcomes.into_iter().enumerate() {
        match o.completed() {
            Some((new_rank, new_size, total)) => println!(
                "world rank {i}: continued as rank {new_rank}/{new_size}, sum over survivors = {total}"
            ),
            None => println!("world rank {i}: failed (simulated crash)"),
        }
    }
}
