//! The paper's Fig. 5 and Fig. 11: explicit serialization of
//! heap-structured data, and the one-line serialized broadcast that
//! replaced RAxML-NG's hand-written layer.
//!
//! Run with: `cargo run --example serialization`

use std::collections::BTreeMap;

use kamping_repro::kamping::prelude::*;
use kamping_repro::mpi::Universe;

fn main() {
    Universe::run(3, |comm| {
        let comm = Communicator::new(comm);

        // Fig. 5: send a dictionary.
        if comm.rank() == 0 {
            let mut dict: BTreeMap<String, String> = BTreeMap::new();
            dict.insert("hello".into(), "world".into());
            dict.insert("kamping".into(), "serialization".into());
            for dest in 1..comm.size() {
                comm.send((send_buf(as_serialized(&dict)), destination(dest)))
                    .unwrap();
            }
        } else {
            let dict: BTreeMap<String, String> = comm
                .recv((recv_buf(as_deserializable()), source(0)))
                .unwrap();
            assert_eq!(dict["hello"], "world");
        }

        // Fig. 11: broadcast a serializable object in place.
        #[derive(serde::Serialize, serde::Deserialize, Debug, PartialEq, Default)]
        struct Model {
            taxa: Vec<String>,
            rates: Vec<f64>,
        }
        let mut model = if comm.is_root() {
            Model {
                taxa: vec!["A".into(), "B".into()],
                rates: vec![0.3, 0.7],
            }
        } else {
            Model::default()
        };
        comm.bcast_serialized::<Model, _>((send_recv_buf(as_serialized_inout(&mut model)),))
            .unwrap();
        assert_eq!(model.taxa.len(), 2);

        if comm.is_root() {
            println!(
                "dictionary sent to {} ranks, model broadcast OK",
                comm.size() - 1
            );
        }
    });
}
