//! The paper's §IV-A: distributed suffix array construction by prefix
//! doubling.
//!
//! Run with: `cargo run --example suffix_array`

use kamping_repro::apps::suffix::{blocks, suffix_array_kamping, suffix_array_sequential};
use kamping_repro::kamping::Communicator;
use kamping_repro::mpi::Universe;

fn main() {
    let text = b"the_quick_brown_fox_jumps_over_the_lazy_dog_and_the_quick_cat$".to_vec();
    let p = 4;
    let n = text.len();
    let ranges = blocks(n, p);
    let parts: Vec<Vec<u8>> = (0..p)
        .map(|r| text[ranges[r]..ranges[r + 1]].to_vec())
        .collect();

    let parts_ref = &parts;
    let out = Universe::run(p, move |comm| {
        let comm = Communicator::new(comm);
        suffix_array_kamping(&parts_ref[comm.rank()], n, &comm).unwrap()
    });
    let sa: Vec<u64> = out.concat();
    assert_eq!(sa, suffix_array_sequential(&text));

    println!("suffix array of a {n}-char text over {p} ranks:");
    for &i in sa.iter().take(8) {
        let suffix = &text[i as usize..];
        println!(
            "  {i:>3}: {}",
            String::from_utf8_lossy(&suffix[..suffix.len().min(24)])
        );
    }
    println!(
        "  ... ({} suffixes total, matches sequential reference)",
        sa.len()
    );
}
