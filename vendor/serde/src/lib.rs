//! Minimal stand-in for `serde`: the serialization/deserialization
//! data-model traits, implementations for the standard types the
//! workspace serializes, and re-exports of the derive macros.
//!
//! Only the API surface the workspace exercises is provided; the trait
//! *shapes* (method names, signatures, the visitor pattern) follow real
//! serde so the codec in `crates/serialize` reads identically to one
//! written against the real crate.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros live in the macro namespace; the names intentionally
// shadow the traits, exactly as real serde's `derive` feature does.
pub use serde_derive::{Deserialize, Serialize};
