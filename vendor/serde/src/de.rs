//! Deserialization half of the data model (visitor pattern).

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors produced by a [`Deserializer`].
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from a free-form message.
    fn custom<T: Display>(msg: T) -> Self;

    fn invalid_length(len: usize, expecting: &str) -> Self {
        Self::custom(format!("invalid length {len}, expected {expecting}"))
    }

    fn unknown_variant(index: u32, name: &str) -> Self {
        Self::custom(format!("unknown variant index {index} for enum {name}"))
    }
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A [`Deserialize`] without borrowed data.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point; `PhantomData<T>` is the
/// stateless seed used by the provided `next_element`-style methods.
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A serde data format (decoding side).
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

macro_rules! visit_default {
    ($($method:ident: $t:ty),* $(,)?) => {$(
        fn $method<E: Error>(self, _v: $t) -> Result<Self::Value, E> {
            Err(E::custom(format!(
                concat!("unexpected ", stringify!($method), ", expected {}"),
                Expecting(&self)
            )))
        }
    )*};
}

/// Walks the decoded data model, producing `Self::Value`.
pub trait Visitor<'de>: Sized {
    type Value;

    /// What this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    visit_default!(
        visit_bool: bool,
        visit_i8: i8,
        visit_i16: i16,
        visit_i32: i32,
        visit_i64: i64,
        visit_i128: i128,
        visit_u8: u8,
        visit_u16: u16,
        visit_u32: u32,
        visit_u64: u64,
        visit_u128: u128,
        visit_f32: f32,
        visit_f64: f64,
        visit_char: char,
    );

    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(E::custom(format!(
            "unexpected string, expected {}",
            Expecting(&self)
        )))
    }

    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom(format!(
            "unexpected bytes, expected {}",
            Expecting(&self)
        )))
    }

    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(format!(
            "unexpected none, expected {}",
            Expecting(&self)
        )))
    }

    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(D::Error::custom(format!(
            "unexpected some, expected {}",
            Expecting(&self)
        )))
    }

    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(format!(
            "unexpected unit, expected {}",
            Expecting(&self)
        )))
    }

    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(D::Error::custom(format!(
            "unexpected newtype struct, expected {}",
            Expecting(&self)
        )))
    }

    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom(format!(
            "unexpected sequence, expected {}",
            Expecting(&self)
        )))
    }

    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom(format!(
            "unexpected map, expected {}",
            Expecting(&self)
        )))
    }

    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom(format!(
            "unexpected enum, expected {}",
            Expecting(&self)
        )))
    }
}

/// Displays a visitor's `expecting` message.
struct Expecting<'a, V>(&'a V);

impl<'de, V: Visitor<'de>> Display for Expecting<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expecting(f)
    }
}

/// Element-wise access to a decoded sequence.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-wise access to a decoded map.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to a decoded enum: first the variant selector, then the data.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the data of one enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a primitive into a deserializer over itself (used for
/// enum variant indices).
pub trait IntoDeserializer<'de, E: Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Deserializer over a single `u32` (the enum variant index).
pub struct U32Deserializer<E> {
    value: u32,
    _marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer {
            value: self,
            _marker: PhantomData,
        }
    }
}

macro_rules! u32_forward {
    ($($method:ident),* $(,)?) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    )*};
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    u32_forward!(
        deserialize_any,
        deserialize_bool,
        deserialize_i8,
        deserialize_i16,
        deserialize_i32,
        deserialize_i64,
        deserialize_i128,
        deserialize_u8,
        deserialize_u16,
        deserialize_u32,
        deserialize_u64,
        deserialize_u128,
        deserialize_f32,
        deserialize_f64,
        deserialize_char,
        deserialize_str,
        deserialize_string,
        deserialize_bytes,
        deserialize_byte_buf,
        deserialize_option,
        deserialize_unit,
        deserialize_seq,
        deserialize_map,
        deserialize_identifier,
        deserialize_ignored_any,
    );

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations for std types
// ---------------------------------------------------------------------------

macro_rules! primitive_deserialize {
    ($($t:ty => $de_method:ident / $visit_method:ident),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimVisitor;
                impl<'de> Visitor<'de> for PrimVisitor {
                    type Value = $t;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str(stringify!($t))
                    }
                    fn $visit_method<E: Error>(self, v: $t) -> Result<$t, E> {
                        Ok(v)
                    }
                }
                deserializer.$de_method(PrimVisitor)
            }
        }
    )*};
}

primitive_deserialize!(
    bool => deserialize_bool / visit_bool,
    i8 => deserialize_i8 / visit_i8,
    i16 => deserialize_i16 / visit_i16,
    i32 => deserialize_i32 / visit_i32,
    i64 => deserialize_i64 / visit_i64,
    i128 => deserialize_i128 / visit_i128,
    u8 => deserialize_u8 / visit_u8,
    u16 => deserialize_u16 / visit_u16,
    u32 => deserialize_u32 / visit_u32,
    u64 => deserialize_u64 / visit_u64,
    u128 => deserialize_u128 / visit_u128,
    f32 => deserialize_f32 / visit_f32,
    f64 => deserialize_f64 / visit_f64,
    char => deserialize_char / visit_char,
);

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| D::Error::custom(format!("usize overflow: {v}")))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| D::Error::custom(format!("isize overflow: {v}")))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for MapVisitor<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_hasher(H::default());
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

macro_rules! tuple_deserialize {
    ($(($len:expr => $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "a tuple of {} elements", $len)
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        Ok(($(
                            match seq.next_element::<$t>()? {
                                Some(v) => v,
                                None => return Err(A::Error::invalid_length(
                                    $n, "a longer tuple")),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )*};
}

tuple_deserialize!(
    (1 => 0 T0)
    (2 => 0 T0, 1 T1)
    (3 => 0 T0, 1 T1, 2 T2)
    (4 => 0 T0, 1 T1, 2 T2, 3 T3)
    (5 => 0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    (6 => 0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
    (7 => 0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6)
    (8 => 0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6, 7 T7)
    (9 => 0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6, 7 T7, 8 T8)
    (10 => 0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6, 7 T7, 8 T8, 9 T9)
    (11 => 0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6, 7 T7, 8 T8, 9 T9, 10 T10)
    (12 => 0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6, 7 T7, 8 T8, 9 T9, 10 T10, 11 T11)
);
