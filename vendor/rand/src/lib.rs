//! Minimal stand-in for `rand` 0.9: a xoshiro256**-based [`StdRng`], the
//! [`Rng`] extension trait with `random` / `random_range`, and
//! [`SeedableRng::seed_from_u64`]. Deterministic and dependency-free;
//! statistical quality is adequate for test-data generation, which is all
//! the workspace uses it for.

/// Core RNG interface: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Element types drawable uniformly from a range (the single generic
/// impl below keeps literal-type inference working, as real rand does).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` exclusive iff `inclusive` is
    /// false).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "random_range: empty range");
                let v = (u128::sample(rng) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        assert!(lo < hi, "random_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32, _inclusive: bool) -> f32 {
        assert!(lo < hi, "random_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard RNG: xoshiro256** seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 stream to fill the state, as the reference
        // implementation recommends.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Everything the workspace imports: `use rand::prelude::*`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-12..12i32);
            assert!((-12..12).contains(&w));
            let c = rng.random_range(b'a'..=b'd');
            assert!((b'a'..=b'd').contains(&c));
            let f = rng.random_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn random_values_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<u64> = (0..10).map(|_| rng.random()).collect();
        let mut dedup = xs.clone();
        dedup.dedup();
        assert_eq!(xs, dedup, "consecutive duplicates are wildly unlikely");
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }
}
