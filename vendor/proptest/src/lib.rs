//! Minimal stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use, with *deterministic* pseudo-random generation (the case
//! index seeds the RNG, so failures are reproducible by construction).
//! No shrinking: a failing case panics with the generated inputs visible
//! through the assertion message.

use std::rc::Rc;

use rand::prelude::*;

pub mod strategy {
    use super::*;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a second-stage strategy from each generated value
        /// (dependent generation: e.g. a size, then data of that size).
        fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds a recursive strategy: `self` generates leaves and
        /// `f(inner)` wraps one recursion level, up to `depth` levels.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                let rec = f(cur).boxed();
                // Lean towards the base so expected sizes stay bounded.
                cur = Union {
                    choices: vec![base.clone(), base.clone(), rec],
                }
                .boxed();
            }
            cur
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        pub choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !choices.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.choices.len());
            self.choices[i].generate(rng)
        }
    }

    // Numeric range strategies.
    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// Simplified regex string strategy: supports the `.{lo,hi}` shape
    /// the workspace uses (a printable-ASCII string of bounded length);
    /// any other pattern falls back to short printable strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 8));
            let len = rng.random_range(lo..=hi);
            (0..len)
                .map(|_| rng.random_range(b' '..=b'~') as char)
                .collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix('.')?;
        let body = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    // Tuples of strategies generate tuples of values.
    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (0 S0)
        (0 S0, 1 S1)
        (0 S0, 1 S1, 2 S2)
        (0 S0, 1 S1, 2 S2, 3 S3)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
        (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
    );
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical “any value” strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

    impl Arbitrary for f32 {
        /// Arbitrary bit patterns (includes NaN and infinities, as real
        /// proptest's edge cases do).
        fn arbitrary(rng: &mut StdRng) -> f32 {
            f32::from_bits(rng.random())
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            f64::from_bits(rng.random())
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut StdRng) -> String {
            let len = rng.random_range(0..12usize);
            (0..len)
                .map(|_| rng.random_range(b' '..=b'~') as char)
                .collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut StdRng) -> Option<T> {
            if rng.random() {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut StdRng) -> Vec<T> {
            let len = rng.random_range(0..8usize);
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    macro_rules! arb_tuple {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        )*};
    }

    arb_tuple!(
        (T0)(T0, T1)(T0, T1, T2)(T0, T1, T2, T3)(T0, T1, T2, T3, T4)(T0, T1, T2, T3, T4, T5)(
            T0, T1, T2, T3, T4, T5, T6
        )(T0, T1, T2, T3, T4, T5, T6, T7)(T0, T1, T2, T3, T4, T5, T6, T7, T8)(
            T0, T1, T2, T3, T4, T5, T6, T7, T8, T9
        )
    );
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for vectors with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s (size may fall short on key collisions).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: std::ops::Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: std::ops::Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            let mut out = std::collections::BTreeMap::new();
            for _ in 0..len {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::*;

    /// An index into a collection of as-yet-unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index for a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Index {
            Index(rng.random())
        }
    }
}

pub mod test_runner {
    use super::*;

    /// Per-test configuration (functional-update friendly: all public).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for API compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
        /// Accepted for API compatibility; unused.
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
                fork: false,
            }
        }
    }

    /// Deterministic RNG for one test case: seeded from the test's name
    /// and the case index, so every run generates the same inputs.
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// `use proptest::prelude::*;` — everything the tests reference.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module tree (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each function runs `config.cases` times with
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Uniform choice among alternative strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts within a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(any::<u32>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn strings_match_length_bounds(s in ".{1,4}") {
            prop_assert!((1..=4).contains(&s.chars().count()));
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u32..5).prop_map(|x| x as u64),
            Just(99u64),
        ]) {
            prop_assert!(v < 5 || v == 99);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::case_rng("recursive", 0);
        for _ in 0..50 {
            let t = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 5);
        }
    }
}
