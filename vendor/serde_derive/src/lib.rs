//! Minimal stand-in for `serde_derive`.
//!
//! Supports exactly what the workspace derives on: non-generic structs
//! (named-field, tuple/newtype, unit) and enums whose variants are unit,
//! newtype, tuple, or struct shaped. No `#[serde(...)]` attributes. The
//! generated code targets the sibling `serde` shim's data model and is
//! wire-compatible with it (struct fields in declaration order, enum
//! variants by `u32` index).
//!
//! Implemented without `syn`/`quote`: the input item is parsed by walking
//! the raw token stream, and the impl is emitted as a formatted string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct; field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this many fields (1 ⇒ newtype).
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    /// Enum; per variant: name + shape.
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            i += 1;
            k
        }
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected type name, found {other:?}")),
    };

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive shim does not support generic type `{name}`"
        ));
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            None => Shape::UnitStruct,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => return Err(format!("unexpected struct body: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        }
    };

    Ok(Item { name, shape })
}

/// Skips `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list on commas at angle-bracket depth zero.
/// Groups are single tokens, so only `<`/`>` need explicit tracking.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for part in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        match part.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => continue, // trailing comma
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let mut variants = Vec::new();
    for part in split_top_level_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            None => continue, // trailing comma
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match part.get(i) {
            None => VariantShape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => VariantShape::Newtype,
                    n => VariantShape::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "explicit discriminants unsupported (variant {name})"
                ))
            }
            other => return Err(format!("unexpected variant body: {other:?}")),
        };
        variants.push((name, shape));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!("__s.serialize_unit_struct({name:?})"),
        Shape::TupleStruct(1) => {
            format!("__s.serialize_newtype_struct({name:?}, &self.0)")
        }
        Shape::TupleStruct(n) => {
            let mut b = format!(
                "{{ let mut __t = serde::ser::Serializer::serialize_tuple_struct(__s, {name:?}, {n})?;\n"
            );
            for i in 0..*n {
                b.push_str(&format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __t, &self.{i})?;\n"
                ));
            }
            b.push_str("serde::ser::SerializeTupleStruct::end(__t) }");
            b
        }
        Shape::Struct(fields) => {
            let n = fields.len();
            let mut b = format!(
                "{{ let mut __t = serde::ser::Serializer::serialize_struct(__s, {name:?}, {n})?;\n"
            );
            for f in fields {
                b.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __t, {f:?}, &self.{f})?;\n"
                ));
            }
            b.push_str("serde::ser::SerializeStruct::end(__t) }");
            b
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (idx, (vname, vshape)) in variants.iter().enumerate() {
                let idx = idx as u32;
                match vshape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __s.serialize_unit_variant({name:?}, {idx}u32, {vname:?}),\n"
                    )),
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => __s.serialize_newtype_variant({name:?}, {idx}u32, {vname:?}, __f0),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{ let mut __t = serde::ser::Serializer::serialize_tuple_variant(__s, {name:?}, {idx}u32, {vname:?}, {n})?;\n",
                            pats.join(", ")
                        );
                        for p in &pats {
                            arm.push_str(&format!(
                                "serde::ser::SerializeTupleVariant::serialize_field(&mut __t, {p})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeTupleVariant::end(__t) },\n");
                        arms.push_str(&arm);
                    }
                    VariantShape::Struct(fields) => {
                        let n = fields.len();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{ let mut __t = serde::ser::Serializer::serialize_struct_variant(__s, {name:?}, {idx}u32, {vname:?}, {n})?;\n",
                            fields.join(", ")
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "serde::ser::SerializeStructVariant::serialize_field(&mut __t, {f:?}, {f})?;\n"
                            ));
                        }
                        arm.push_str("serde::ser::SerializeStructVariant::end(__t) },\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: serde::ser::Serializer>(&self, __s: __S)\n\
                 -> core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Emits a sequence-reading visitor whose `visit_seq` builds
/// `constructor(field0, field1, ...)` or a braced literal.
fn seq_visitor(value_ty: &str, expecting: &str, n: usize, build: &str) -> String {
    let mut reads = String::new();
    for i in 0..n {
        reads.push_str(&format!(
            "let __f{i} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 Some(v) => v,\n\
                 None => return Err(<__A::Error as serde::de::Error>::invalid_length({i}, {expecting:?})),\n\
             }};\n"
        ));
    }
    format!(
        "{{\n\
         struct __SeqVisitor;\n\
         impl<'de> serde::de::Visitor<'de> for __SeqVisitor {{\n\
             type Value = {value_ty};\n\
             fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
                 __f.write_str({expecting:?})\n\
             }}\n\
             fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                 -> core::result::Result<Self::Value, __A::Error> {{\n\
                 {reads}\n\
                 Ok({build})\n\
             }}\n\
         }}\n\
         __SeqVisitor\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!(
            "{{\n\
             struct __UnitVisitor;\n\
             impl<'de> serde::de::Visitor<'de> for __UnitVisitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
                     __f.write_str({name:?})\n\
                 }}\n\
                 fn visit_unit<__E: serde::de::Error>(self) -> core::result::Result<{name}, __E> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}\n\
             serde::de::Deserializer::deserialize_unit_struct(__d, {name:?}, __UnitVisitor)\n\
             }}"
        ),
        Shape::TupleStruct(1) => format!(
            "{{\n\
             struct __NewtypeVisitor;\n\
             impl<'de> serde::de::Visitor<'de> for __NewtypeVisitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
                     __f.write_str({name:?})\n\
                 }}\n\
                 fn visit_newtype_struct<__D: serde::de::Deserializer<'de>>(self, __d: __D)\n\
                     -> core::result::Result<{name}, __D::Error> {{\n\
                     Ok({name}(serde::de::Deserialize::deserialize(__d)?))\n\
                 }}\n\
             }}\n\
             serde::de::Deserializer::deserialize_newtype_struct(__d, {name:?}, __NewtypeVisitor)\n\
             }}"
        ),
        Shape::TupleStruct(n) => {
            let args: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let visitor = seq_visitor(
                name,
                &format!("tuple struct {name}"),
                *n,
                &format!("{name}({})", args.join(", ")),
            );
            format!(
                "serde::de::Deserializer::deserialize_tuple_struct(__d, {name:?}, {n}, {visitor})"
            )
        }
        Shape::Struct(fields) => {
            let n = fields.len();
            let build = format!(
                "{name} {{ {} }}",
                fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| format!("{f}: __f{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let visitor = seq_visitor(name, &format!("struct {name}"), n, &build);
            let field_names =
                fields.iter().map(|f| format!("{f:?}")).collect::<Vec<_>>().join(", ");
            format!(
                "serde::de::Deserializer::deserialize_struct(__d, {name:?}, &[{field_names}], {visitor})"
            )
        }
        Shape::Enum(variants) => {
            let variant_names =
                variants.iter().map(|(v, _)| format!("{v:?}")).collect::<Vec<_>>().join(", ");
            let mut arms = String::new();
            for (idx, (vname, vshape)) in variants.iter().enumerate() {
                let idx = idx as u32;
                let arm_body = match vshape {
                    VariantShape::Unit => format!(
                        "{{ serde::de::VariantAccess::unit_variant(__var)?; Ok({name}::{vname}) }}"
                    ),
                    VariantShape::Newtype => format!(
                        "Ok({name}::{vname}(serde::de::VariantAccess::newtype_variant(__var)?))"
                    ),
                    VariantShape::Tuple(n) => {
                        let args: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let visitor = seq_visitor(
                            name,
                            &format!("tuple variant {name}::{vname}"),
                            *n,
                            &format!("{name}::{vname}({})", args.join(", ")),
                        );
                        format!("serde::de::VariantAccess::tuple_variant(__var, {n}, {visitor})")
                    }
                    VariantShape::Struct(fields) => {
                        let n = fields.len();
                        let build = format!(
                            "{name}::{vname} {{ {} }}",
                            fields
                                .iter()
                                .enumerate()
                                .map(|(i, f)| format!("{f}: __f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        let visitor = seq_visitor(
                            name,
                            &format!("struct variant {name}::{vname}"),
                            n,
                            &build,
                        );
                        let field_names = fields
                            .iter()
                            .map(|f| format!("{f:?}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "serde::de::VariantAccess::struct_variant(__var, &[{field_names}], {visitor})"
                        )
                    }
                };
                arms.push_str(&format!("{idx}u32 => {arm_body},\n"));
            }
            format!(
                "{{\n\
                 struct __EnumVisitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __EnumVisitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut core::fmt::Formatter) -> core::fmt::Result {{\n\
                         __f.write_str(\"enum {name}\")\n\
                     }}\n\
                     fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                         -> core::result::Result<{name}, __A::Error> {{\n\
                         let (__idx, __var): (u32, __A::Variant) =\n\
                             serde::de::EnumAccess::variant(__data)?;\n\
                         match __idx {{\n\
                             {arms}\n\
                             __other => Err(<__A::Error as serde::de::Error>::unknown_variant(__other, {name:?})),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 serde::de::Deserializer::deserialize_enum(__d, {name:?}, &[{variant_names}], __EnumVisitor)\n\
                 }}"
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::de::Deserializer<'de>>(__d: __D)\n\
                 -> core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
