//! Minimal stand-in for `criterion`. It executes each benchmark a fixed
//! (configurable) number of times with a small warm-up, and prints the
//! mean wall time per iteration. No statistics beyond that — enough for
//! the workspace's relative-overhead comparisons, with the same API shape
//! (`criterion_group!` / `criterion_main!` / `bench_function` /
//! `iter` / `iter_custom`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _c: self,
            group: name.to_string(),
            sample_size,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one("", name, self.default_sample_size, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&self.group, name, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up / calibration pass.
    f(&mut b);
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 3,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let per_iter = if total_iters > 0 {
        total / total_iters as u32
    } else {
        Duration::ZERO
    };
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!("bench: {label:<48} {per_iter:>12?}/iter ({samples} samples)");
}

/// Handed to each benchmark closure; runs the measured body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` repetitions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += t.elapsed();
    }

    /// Hands the iteration count to `f`, which returns the measured time
    /// (for benchmarks that must set up outside the timed region).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed += f(self.iters);
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
