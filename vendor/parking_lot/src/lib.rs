//! Minimal stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Differences from std that this shim reproduces from the real crate:
//! `lock()` returns the guard directly (no poisoning — a panicked holder
//! does not poison the lock; the substrate relies on this because rank
//! panics are contained per rank), and `Condvar::wait*` take `&mut
//! MutexGuard`.

use std::sync;
use std::time::Duration;

/// Mutual exclusion without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Result of a timed wait: reports whether the timeout elapsed.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res)
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_condvar() {
        let m = Arc::new(Mutex::new(false));
        let c = Arc::new(Condvar::new());
        let (m2, c2) = (m.clone(), c.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                c2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(0u32);
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(1));
        assert!(r.timed_out());
        *g += 1;
        assert_eq!(*g, 1);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
