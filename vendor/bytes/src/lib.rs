//! Minimal stand-in for the `bytes` crate: an immutable, cheaply
//! cloneable, reference-counted byte buffer. Only the surface the
//! workspace uses is provided.
//!
//! Unlike the original shim (which always copied into a fresh
//! `Arc<[u8]>`), this version supports the zero-copy datapath:
//!
//! - [`Bytes::from`]`(Vec<u8>)` adopts the vector **without copying** the
//!   payload (only the `Vec` header moves into the refcount allocation);
//! - [`Bytes::slice`] produces sub-views that share the same allocation
//!   (a refcount bump, no memcpy) — collectives use this to carve
//!   per-peer blocks out of one packed buffer;
//! - [`Bytes::from_owner`] adopts any [`ByteOwner`] (e.g. a typed
//!   `Vec<T>` of plain values), so typed send buffers can move into the
//!   transport without being re-serialized;
//! - [`Bytes::try_into_vec`] recovers the owned vector without copying
//!   when the buffer is unique and un-sliced (the zero-copy receive path
//!   for byte-shaped targets).

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Backing storage that a [`Bytes`] can adopt without copying.
///
/// Implementors expose their payload as a stable byte slice: the bytes
/// must not move or change for as long as the owner is alive (holding it
/// behind `Arc` and never mutating satisfies this trivially for `Vec`-like
/// containers).
pub trait ByteOwner: Send + Sync + 'static {
    /// The owned payload viewed as bytes.
    fn as_bytes(&self) -> &[u8];
}

impl ByteOwner for Vec<u8> {
    fn as_bytes(&self) -> &[u8] {
        self
    }
}

#[derive(Clone)]
enum Repr {
    /// An adopted `Vec<u8>`: recoverable without copy via
    /// [`Bytes::try_into_vec`] when unique and un-sliced.
    Vec(Arc<Vec<u8>>),
    /// Any other adopted owner (typically a typed `Vec<T>`).
    Owner(Arc<dyn ByteOwner>),
}

impl Repr {
    #[inline]
    fn full(&self) -> &[u8] {
        match self {
            Repr::Vec(v) => v,
            Repr::Owner(o) => o.as_bytes(),
        }
    }
}

/// A cheaply cloneable contiguous slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            repr: Repr::Vec(Arc::new(Vec::new())),
            off: 0,
            len: 0,
        }
    }

    /// Copies the slice into a new buffer (the one intentionally copying
    /// constructor).
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Adopts shared backing storage without copying. The returned buffer
    /// views the owner's full payload; callers typically keep a typed
    /// `Arc` clone of the owner to reclaim it later.
    pub fn from_owner(owner: Arc<dyn ByteOwner>) -> Self {
        let len = owner.as_bytes().len();
        Bytes {
            repr: Repr::Owner(owner),
            off: 0,
            len,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view sharing the same allocation (refcount bump, no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            repr: self.repr.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Recovers the backing `Vec<u8>` without copying, if this buffer is
    /// the unique, un-sliced view of an adopted vector. Otherwise hands
    /// the buffer back unchanged so the caller can fall back to a copy.
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        match self.repr {
            Repr::Vec(arc) if self.off == 0 && self.len == arc.len() => {
                match Arc::try_unwrap(arc) {
                    Ok(v) => Ok(v),
                    Err(arc) => Err(Bytes {
                        repr: Repr::Vec(arc),
                        off: self.off,
                        len: self.len,
                    }),
                }
            }
            repr => Err(Bytes {
                repr,
                off: self.off,
                len: self.len,
            }),
        }
    }

    /// True if no other `Bytes` shares this allocation (diagnostic; used
    /// by copy-accounting tests).
    pub fn is_unique(&self) -> bool {
        match &self.repr {
            Repr::Vec(v) => Arc::strong_count(v) == 1,
            Repr::Owner(o) => Arc::strong_count(o) == 1,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.repr.full()[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Adopts the vector without copying the payload.
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            repr: Repr::Vec(Arc::new(v)),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn from_vec_adopts_without_copy() {
        let v = vec![7u8; 16];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), ptr, "payload must not move");
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn try_into_vec_recovers_unique_buffer() {
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        let back = b.try_into_vec().expect("unique and un-sliced");
        assert_eq!(back.as_ptr(), ptr, "zero-copy recovery");
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn try_into_vec_refuses_shared_or_sliced() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        let b = b.try_into_vec().expect_err("shared buffer");
        drop(c);
        let s = b.slice(1..3);
        assert_eq!(&*s, &[2, 3]);
        assert!(s.try_into_vec().is_err(), "sliced view");
    }

    #[test]
    fn slices_share_and_nest() {
        let b = Bytes::from((0u8..10).collect::<Vec<_>>());
        let s = b.slice(2..8);
        assert_eq!(&*s, &[2, 3, 4, 5, 6, 7]);
        let s2 = s.slice(1..=2);
        assert_eq!(&*s2, &[3, 4]);
        assert_eq!(s2.as_ptr(), unsafe { b.as_ptr().add(3) });
        assert!(!b.is_unique());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![0u8; 4]);
        let _ = b.slice(2..6);
    }

    #[test]
    fn from_owner_views_payload() {
        let owner: Arc<Vec<u8>> = Arc::new(vec![9u8; 8]);
        let keep = Arc::clone(&owner);
        let b = Bytes::from_owner(owner);
        assert_eq!(&*b, &[9u8; 8]);
        assert_eq!(b.as_ptr(), keep.as_slice().as_ptr());
    }
}
