//! Minimal stand-in for the `bytes` crate: an immutable, cheaply
//! cloneable, reference-counted byte buffer. Only the surface the
//! workspace uses is provided.

use std::sync::Arc;

/// A cheaply cloneable contiguous slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies the slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.data.len() > 32 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
